"""Table 1: LNA modeling error and cost — S-OMP vs C-BMF.

Regenerates the paper's Table 1: S-OMP fitted at the large training budget
(paper: 1120 samples) against C-BMF at the small one (paper: 480), with
the cost rows built from the paper-calibrated per-sample simulation cost
and the measured fitting time. Asserts the table's two claims:

* >2× overall cost reduction (driven by the 2.33× sample reduction);
* no accuracy surrendered — C-BMF's errors stay comparable on all three
  metrics despite the smaller budget.
"""

from benchmarks.conftest import run_once
from repro.evaluation.report import format_comparison_table
from repro.paper import METRIC_LABELS, PAPER_TABLE1, run_cost_table


def test_table1(benchmark, scale, lna_data):
    results = run_once(benchmark, run_cost_table, "lna", scale, seed=2016)
    somp, cbmf = results["somp"], results["cbmf"]
    print("\n" + format_comparison_table(
        f"Table 1 — LNA (scale: {scale.name}; paper ratios in brackets)",
        [somp, cbmf],
        METRIC_LABELS,
    ))
    paper_ratio = (
        PAPER_TABLE1["somp"]["overall_hours"]
        / PAPER_TABLE1["cbmf"]["overall_hours"]
    )
    measured_ratio = somp.cost.total_hours / cbmf.cost.total_hours
    print(
        f"overall cost reduction: measured {measured_ratio:.2f}x "
        f"[paper {paper_ratio:.2f}x]"
    )

    # Claim 1: >2× overall cost reduction.
    assert measured_ratio > 2.0
    # Claim 2: accuracy not surrendered. At reduced scales the comparison
    # is noisier than the paper's 32-state runs, so allow up to 2×; at
    # paper scale tighten toward parity.
    tolerance = 1.35 if scale.name == "paper" else 2.0
    for metric in somp.errors:
        assert cbmf.errors[metric] < tolerance * somp.errors[metric]
    # Simulation dominates the cost, as the paper observes.
    assert somp.cost.simulation_seconds > somp.cost.fitting_seconds
