"""Ablation: what does the magnitude correlation actually buy?

The paper's argument decomposes into two steps over sparse regression:

* share the *template* across states   → S-OMP [19];
* also fuse the coefficient *magnitudes* → C-BMF (this paper).

This ablation isolates the second step by comparing, at one low training
budget, C-BMF against the identical machinery with the cross-state
correlation forced diagonal (``UncorrelatedBMF``, the [18]-style prior)
and against S-OMP and per-state OMP. The expected ordering at low budget:

    cbmf ≤ bmf ≤ somp ≤ omp   (each step of sharing helps)

with the cbmf-vs-bmf gap being the paper's specific contribution.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.basis.polynomial import LinearBasis
from repro.evaluation.experiment import ModelingExperiment


def run_ablation(lna_data, scale):
    pool, test = lna_data
    budget = max(scale.table_cbmf_per_state - 3, 6)
    train = pool.head(budget)
    experiment = ModelingExperiment(
        train, test, LinearBasis(pool.n_variables)
    )
    return {
        method: experiment.run(method, metrics=("nf_db", "gain_db"), seed=7)
        for method in ("cbmf", "bmf", "somp", "omp")
    }


def test_ablation_magnitude_correlation(benchmark, lna_data, scale):
    results = run_once(benchmark, run_ablation, lna_data, scale)
    print(f"\nablation (LNA, {results['cbmf'].n_train_total} samples):")
    for method in ("cbmf", "bmf", "somp", "omp"):
        errors = ", ".join(
            f"{metric}={error:.3f}%"
            for metric, error in results[method].errors.items()
        )
        print(f"  {method:5s}: {errors}")

    metrics = ("nf_db", "gain_db")

    def mean_error(method):
        return float(
            np.mean([results[method].errors[m] for m in metrics])
        )

    # Ordering on average over the metrics (single-metric comparisons at
    # this scale carry sampling noise; the paper averages over much more
    # data): each level of sharing helps.
    assert mean_error("cbmf") < mean_error("somp") * 1.05
    assert mean_error("cbmf") < mean_error("omp")
    assert mean_error("somp") < mean_error("omp")
    # Adding magnitude correlation must not hurt the Bayesian pipeline.
    assert mean_error("cbmf") <= mean_error("bmf") * 1.10


def test_ablation_correlation_helps_somewhere(benchmark, lna_data, scale):
    """The magnitude correlation gives a strict win on at least one
    metric — otherwise the paper's addition would be vacuous here."""
    results = run_once(benchmark, run_ablation, lna_data, scale)
    improvements = [
        results["bmf"].errors[m] - results["cbmf"].errors[m]
        for m in ("nf_db", "gain_db")
    ]
    assert max(improvements) > 0.0
