"""Statistical confirmation: C-BMF vs S-OMP over repeated realizations.

The paper's figures are single dataset realizations. This benchmark reruns
the low-budget LNA comparison under several independent Monte Carlo seeds
and checks that C-BMF's advantage is systematic, not a draw of the dice:
it must win the NF comparison in a clear majority of repetitions and on
the mean.
"""

from benchmarks.conftest import run_once
from repro.circuits.lna import TunableLNA
from repro.evaluation.repetition import repeat_experiment


def run_repeats(scale):
    circuit = TunableLNA(n_states=scale.n_states, n_variables=None)
    return repeat_experiment(
        circuit,
        methods=("somp", "cbmf"),
        n_train_per_state=12,
        n_test_per_state=20,
        n_repetitions=5,
        base_seed=500,
        metrics=("nf_db",),
    )


def test_cbmf_advantage_is_systematic(benchmark, scale):
    result = run_once(benchmark, run_repeats, scale)
    print("\n" + result.format())
    wins = result.wins("cbmf", "somp", "nf_db")
    print(f"cbmf wins {wins}/{result.n_repetitions} repetitions")

    assert result.mean("cbmf", "nf_db") < result.mean("somp", "nf_db")
    assert wins >= result.n_repetitions - 1
