"""Ablation: the structure of the cross-state correlation matrix R.

DESIGN.md calls out two design choices around R:

* eq. 32 parameterizes the *initial* R as AR(1) with a single decay r0 —
  "a good approximation, even though it is not highly accurate";
* the EM step (eq. 30) then learns a free-form R.

This benchmark quantifies both: it sweeps fixed-AR(1) C-BMF over r0 (EM
forbidden from updating R) against the full learned-R C-BMF, on the LNA
gain metric at a low budget. Expected shape: some correlation is better
than none (r0 = 0), and learning R does at least as well as the best
hand-picked r0.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.evaluation.error import modeling_error_percent

R0_GRID = (0.0, 0.5, 0.9, 0.99)


def run_r_ablation(lna_data, scale):
    pool, test = lna_data
    budget = max(scale.table_cbmf_per_state - 3, 6)
    train = pool.head(budget)
    basis = LinearBasis(pool.n_variables)
    train_designs = basis.expand_states(train.inputs())
    test_designs = basis.expand_states(test.inputs())
    targets = train.targets("gain_db")
    truth = test.targets("gain_db")

    def score(model):
        predictions = [
            model.predict(design, k)
            for k, design in enumerate(test_designs)
        ]
        return modeling_error_percent(predictions, truth)

    errors = {}
    for r0 in R0_GRID:
        model = CBMF(
            init_config=InitConfig(r0_grid=(r0,)),
            em_config=EmConfig(update_r=False),
            seed=7,
        ).fit(train_designs, targets)
        errors[f"fixed r0={r0}"] = score(model)
    learned = CBMF(seed=7).fit(train_designs, targets)
    errors["learned R"] = score(learned)
    return errors


def test_r_structure(benchmark, lna_data, scale):
    errors = run_once(benchmark, run_r_ablation, lna_data, scale)
    print(f"\nR-structure ablation (LNA gain):")
    for name, error in errors.items():
        print(f"  {name:14s}: {error:.3f} %")

    fixed = {k: v for k, v in errors.items() if k.startswith("fixed")}
    best_fixed = min(fixed.values())
    none = errors["fixed r0=0.0"]
    # Correlation helps: the best correlated fixed-R beats R = I.
    assert best_fixed <= none
    # Learning R is competitive with the best hand-picked decay (within
    # noise) — the EM refinement is not load-bearing but must not hurt.
    assert errors["learned R"] <= 1.25 * best_fixed
