"""Active-vs-random acquisition A/B on linearized circuit surrogates.

The claim under test: on a substrate where the linear basis is exact and
the truth sparse (the regime C-BMF itself assumes), variance-driven
acquisition reaches the random baseline's final holdout RMSE with a
fraction of the simulation budget.

Protocol (frozen — the numbers in EXPERIMENTS.md use exactly this):
K=4 states, 4 init samples/state, batches of 8 across states, 16 rounds
(budget 16 → 136 samples), 192 candidates/state/round, exploration
fraction 0.25, 8 paired seeds per strategy. Curves are the seed-mean
holdout RMSE per budget; the target is the random baseline's mean final
(best-so-far) RMSE, and the crossing is the first budget where the
variance strategy's mean best-so-far curve reaches that target. Every
run is deterministic given its seed, so the measured ratio is exact.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.active import ActiveFitConfig, ActiveFitLoop, StoppingRule
from repro.circuits.lna import TunableLNA
from repro.circuits.mixer import TunableMixer

SEEDS = tuple(range(8))
MAX_ROUNDS = 16
INIT_PER_STATE = 4
BATCH = 8
#: Acceptance bar: variance must match random's final RMSE within
#: 0.7x of random's budget (measured: 0.667 on the LNA surrogate).
TARGET_RATIO = 0.7


def make_oracle(circuit_cls, metric):
    from repro.active.oracle import linearized_surrogate

    return linearized_surrogate(
        circuit_cls(n_states=4, n_variables=None), metric
    )


def run_strategy(oracle, strategy, seed):
    config = ActiveFitConfig(
        metric=oracle.metric,
        strategy=strategy,
        init_per_state=INIT_PER_STATE,
        batch_per_round=BATCH,
        n_candidates=192,
        holdout_per_state=80,
        stopping=StoppingRule(max_rounds=MAX_ROUNDS),
        seed=seed,
    )
    return ActiveFitLoop(oracle, config).run().history


def run_ab(circuit_cls, metric, seeds):
    oracle = make_oracle(circuit_cls, metric)
    variance = [run_strategy(oracle, "variance", s) for s in seeds]
    random = [run_strategy(oracle, "random", s) for s in seeds]
    return variance, random


def mean_curve(histories):
    """(budgets, seed-mean RMSE per budget) across paired runs."""
    budgets = np.array(
        [r.n_samples_total for r in histories[0].rounds], dtype=int
    )
    errors = np.array(
        [[r.holdout_rmse for r in h.rounds] for h in histories]
    )
    return budgets, errors.mean(axis=0)


def crossing_budget(budgets, curve, target):
    """First budget whose best-so-far mean RMSE reaches ``target``."""
    best = np.minimum.accumulate(curve)
    hit = np.nonzero(best <= target)[0]
    return int(budgets[hit[0]]) if hit.size else None


def report(name, budgets, var_curve, rand_curve, target, crossing):
    print(f"\n{name}: active (variance) vs random — seed-mean curves")
    print(f"{'budget':>8}{'variance':>12}{'random':>12}")
    for budget, v, r in zip(budgets, var_curve, rand_curve):
        print(f"{budget:>8}{v:>12.5f}{r:>12.5f}")
    final = int(budgets[-1])
    print(f"random final (target) RMSE: {target:.5f} at {final} samples")
    if crossing is None:
        print("variance never reached the target")
    else:
        print(
            f"variance reached it at {crossing} samples "
            f"({crossing / final:.3f}x of random's budget)"
        )


def test_lna_variance_beats_random_at_matched_error(benchmark):
    """Headline A/B: <= 0.7x the simulations at random's final RMSE."""
    variance, random = run_once(
        benchmark, run_ab, TunableLNA, "gain_db", SEEDS
    )
    budgets, var_curve = mean_curve(variance)
    _, rand_curve = mean_curve(random)
    target = float(np.minimum.accumulate(rand_curve)[-1])
    crossing = crossing_budget(budgets, var_curve, target)
    report("LNA surrogate", budgets, var_curve, rand_curve, target,
           crossing)

    per_seed = []
    for var_history, rand_history in zip(variance, random):
        seed_target = min(r.holdout_rmse for r in rand_history.rounds)
        reached = var_history.samples_to_reach(seed_target)
        per_seed.append(
            None if reached is None
            else reached / rand_history.total_samples
        )
    print(f"per-seed ratios: {per_seed}")

    assert crossing is not None
    assert crossing / int(budgets[-1]) <= TARGET_RATIO
    # the advantage is not a one-seed artifact
    assert all(r is not None for r in per_seed)


def test_mixer_variance_no_worse_than_random(benchmark):
    """Same A/B on the mixer surrogate (4 seeds, recorded in
    EXPERIMENTS.md); the bar here is only 'matches random's final RMSE
    within its budget'."""
    variance, random = run_once(
        benchmark, run_ab, TunableMixer, "gain_db", SEEDS[:4]
    )
    budgets, var_curve = mean_curve(variance)
    _, rand_curve = mean_curve(random)
    target = float(np.minimum.accumulate(rand_curve)[-1])
    crossing = crossing_budget(budgets, var_curve, target)
    report("mixer surrogate", budgets, var_curve, rand_curve, target,
           crossing)
    assert crossing is not None
    assert crossing <= int(budgets[-1])
