"""Serving-path throughput: single-request vs micro-batched.

The serving subsystem's claim is that coalescing requests into one
``basis.expand + coef`` matmul per (model, state) group beats answering
them one by one. This benchmark fits a small model set, pushes it to a
registry, then serves the same 10k mixed-state request stream through

* the degenerate single-request configuration (batch size 1, no
  coalescing window), and
* the bulk micro-batched path,

asserting bit-equal answers and a >= 5x batched speedup (best-of-N
timing — the suite may share a noisy box). EXPERIMENTS.md records the
measured numbers.
"""

import contextlib
import gc
import time

import numpy as np
import pytest

from repro.modelset import PerformanceModelSet
from repro.serving import (
    BatchConfig,
    CacheConfig,
    ModelRegistry,
    ModelService,
)

N_REQUESTS = 10_000
N_POOL = 2_000
# Single-CPU CI boxes make one-shot timings bimodal (scheduler noise
# can double a run); both paths take the min over several passes.
TRIALS = 5


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """Registry with a pushed 4-state LNA model set + request stream."""
    from repro.circuits.lna import TunableLNA
    from repro.simulate.montecarlo import MonteCarloEngine

    lna = TunableLNA(n_states=4, n_variables=None)
    data = MonteCarloEngine(lna, seed=2016).run(18)
    train, _ = data.split(12)
    models = PerformanceModelSet.fit_dataset(train, method="somp", seed=0)
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.push("lna", models)

    rng = np.random.default_rng(2016)
    pool = rng.standard_normal((N_POOL, lna.n_variables))
    x = pool[rng.integers(0, N_POOL, N_REQUESTS)]
    states = rng.integers(0, models.n_states, N_REQUESTS)
    return registry, models, x, states


def _single_service(registry):
    return ModelService(
        registry,
        batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
        cache=CacheConfig(capacity=16_384),
    )


def _batched_service(registry):
    return ModelService(registry, cache=CacheConfig(capacity=16_384))


@contextlib.contextmanager
def _gc_paused():
    """Suppress collector pauses inside the timed region (both paths)."""
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


def _time_single(registry, x, states):
    service = _single_service(registry)
    service.load("lna@latest")
    with _gc_paused():
        started = time.perf_counter()
        for i in range(len(states)):
            service.predict("lna", x[i], states[i])
        return time.perf_counter() - started


def _time_batched(registry, x, states):
    service = _batched_service(registry)
    service.load("lna@latest")
    with _gc_paused():
        started = time.perf_counter()
        results = service.predict_many("lna", x, states)
        return time.perf_counter() - started, service, results


def test_batched_throughput_beats_single(benchmark, serving_setup):
    """Micro-batched serving is >= 5x single-request on 10k requests."""
    registry, models, x, states = serving_setup
    _time_single(registry, x[:500], states[:500])  # warm numpy/BLAS
    _time_batched(registry, x, states)

    def measure():
        t_single = min(
            _time_single(registry, x, states) for _ in range(TRIALS)
        )
        best = [_time_batched(registry, x, states) for _ in range(TRIALS)]
        t_batched, service, results = min(best, key=lambda item: item[0])
        return t_single, t_batched, service, results

    t_single, t_batched, service, results = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = t_single / t_batched
    snapshot = service.metrics.snapshot()
    print(
        f"\nserving throughput — {N_REQUESTS} requests, "
        f"{N_POOL} unique points, K={models.n_states}\n"
        f"  single-request : {t_single:.3f}s "
        f"({N_REQUESTS / t_single:,.0f} req/s)\n"
        f"  micro-batched  : {t_batched:.3f}s "
        f"({N_REQUESTS / t_batched:,.0f} req/s)\n"
        f"  speedup        : {speedup:.1f}x\n"
        f"  cache hit rate : {snapshot['cache_hit_rate']:.1%}, "
        f"batches: {snapshot['batches']}"
    )
    assert speedup >= 5.0, (
        f"micro-batching speedup {speedup:.1f}x below the 5x floor "
        f"(single {t_single:.3f}s, batched {t_batched:.3f}s)"
    )
    assert snapshot["cache_hit_rate"] > 0.0

    # Answers equal the direct frozen-model predictions.
    frozen = models.freeze()
    check = np.random.default_rng(0).integers(0, N_REQUESTS, 50)
    for i in check:
        design = models.basis.expand(x[i][None, :])
        for metric, model in frozen.items():
            assert results[i].values[metric] == pytest.approx(
                float(model.predict(design, int(states[i]))[0]), abs=1e-12
            )


def test_streaming_coalescing_correct(serving_setup):
    """Concurrent streaming requests coalesce and stay correct."""
    import threading

    registry, models, x, states = serving_setup
    service = ModelService(
        registry,
        batch=BatchConfig(max_batch_size=32, flush_interval=0.002),
        cache=CacheConfig(capacity=0),
    )
    service.load("lna@latest")
    n = 400
    answers = [None] * n

    def worker(lo, hi):
        for i in range(lo, hi):
            answers[i] = service.predict("lna", x[i], states[i])

    threads = [
        threading.Thread(target=worker, args=(lo, lo + 100))
        for lo in range(0, n, 100)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    frozen = models.freeze()
    for i in range(0, n, 37):
        design = models.basis.expand(x[i][None, :])
        for metric, model in frozen.items():
            assert answers[i].values[metric] == pytest.approx(
                float(model.predict(design, int(states[i]))[0]), abs=1e-12
            )
    assert service.metrics.snapshot()["max_batch_size"] > 1
