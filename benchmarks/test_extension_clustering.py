"""Extension (paper Section 5): state clustering before fusion.

The conclusion notes that mutually-different states violate C-BMF's
unified-correlation assumption and calls for clustering similar states
first. This benchmark builds a two-family tunable system (disjoint
sensitivity templates per family, correlated magnitudes within a family),
then measures plain C-BMF against ClusteredCBMF.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.cbmf import CBMF
from repro.core.clustering import ClusteredCBMF, cluster_states
from repro.evaluation.error import modeling_error_percent


def build_problem(seed=2016, n_per_family=5, n_basis=150, n_train=14):
    rng = np.random.default_rng(seed)
    n_states = 2 * n_per_family
    truth = np.zeros((n_states, n_basis))
    ar1 = 0.9 ** np.abs(
        np.subtract.outer(np.arange(n_per_family), np.arange(n_per_family))
    )
    chol = np.linalg.cholesky(ar1)
    for family in range(2):
        support = rng.choice(np.arange(1, n_basis), 5, replace=False)
        rows = slice(family * n_per_family, (family + 1) * n_per_family)
        for m in support:
            truth[rows, m] = chol @ rng.standard_normal(n_per_family) * 2.0
    truth[:, 0] = 5.0

    def sample(n):
        designs, targets = [], []
        for k in range(n_states):
            design = rng.standard_normal((n, n_basis))
            design[:, 0] = 1.0
            designs.append(design)
            targets.append(
                design @ truth[k] + 0.05 * rng.standard_normal(n)
            )
        return designs, targets

    return sample(n_train), sample(300)


def run_extension():
    (train_d, train_t), (test_d, test_t) = build_problem()

    def score(model):
        predictions = [model.predict(d, k) for k, d in enumerate(test_d)]
        return modeling_error_percent(predictions, test_t)

    labels = cluster_states(train_d, train_t, 2)
    plain = CBMF(seed=0).fit(train_d, train_t)
    clustered = ClusteredCBMF(n_clusters=2, seed=0).fit(train_d, train_t)
    return {
        "labels": labels,
        "plain": score(plain),
        "clustered": score(clustered),
    }


def test_extension_clustering(benchmark):
    result = run_once(benchmark, run_extension)
    print(f"\nstate-clustering extension:")
    print(f"  inferred clusters: {result['labels'].tolist()}")
    print(f"  plain C-BMF:     {result['plain']:.3f} %")
    print(f"  clustered C-BMF: {result['clustered']:.3f} %")

    # The clustering recovers two equal families ...
    labels = result["labels"]
    assert set(labels.tolist()) == {0, 1}
    assert np.sum(labels == labels[0]) == 5
    # ... and fusing per cluster dominates the unified model.
    assert result["clustered"] < result["plain"]
