"""Table 2: mixer modeling error and cost — S-OMP vs C-BMF.

The mixer's per-sample simulation cost is ~6× the LNA's (paper: 17.2 h vs
2.72 h for the same 1120 samples), which is exactly why sample-efficient
modeling matters more here; the benchmark asserts the same two claims as
Table 1.
"""

from benchmarks.conftest import run_once
from repro.evaluation.report import format_comparison_table
from repro.paper import METRIC_LABELS, PAPER_TABLE2, run_cost_table


def test_table2(benchmark, scale, mixer_data):
    results = run_once(benchmark, run_cost_table, "mixer", scale, seed=2016)
    somp, cbmf = results["somp"], results["cbmf"]
    print("\n" + format_comparison_table(
        f"Table 2 — mixer (scale: {scale.name})",
        [somp, cbmf],
        METRIC_LABELS,
    ))
    paper_ratio = (
        PAPER_TABLE2["somp"]["overall_hours"]
        / PAPER_TABLE2["cbmf"]["overall_hours"]
    )
    measured_ratio = somp.cost.total_hours / cbmf.cost.total_hours
    print(
        f"overall cost reduction: measured {measured_ratio:.2f}x "
        f"[paper {paper_ratio:.2f}x]"
    )

    assert measured_ratio > 2.0
    tolerance = 1.35 if scale.name == "paper" else 2.0
    for metric in somp.errors:
        assert cbmf.errors[metric] < tolerance * somp.errors[metric]
    assert somp.cost.simulation_seconds > somp.cost.fitting_seconds
