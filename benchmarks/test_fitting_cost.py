"""Fitting-cost microbenchmarks (the 'Fitting cost (Sec.)' table rows).

The paper reports S-OMP fitting in ~1.3 s and C-BMF in ~316-407 s at full
scale — C-BMF deliberately trades fitting compute (cheap) for simulation
samples (expensive). These benchmarks measure the fitting stages on the
active scale so regressions in the numerical core show up as timing
changes; the assertions only guard correctness of the outputs.
"""

import numpy as np

from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.posterior import compute_posterior
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.evaluation.methods import make_estimator


def test_posterior_solve(benchmark, lna_data, scale):
    """One dual-space MAP solve (the EM inner loop's dominant cost)."""
    pool, _ = lna_data
    train = pool.head(scale.table_cbmf_per_state)
    basis = LinearBasis(pool.n_variables)
    designs = basis.expand_states(train.inputs())
    targets = train.targets("gain_db")
    prior = CorrelatedPrior(
        lambdas=np.full(basis.n_basis, 0.5),
        correlation=ar1_correlation(len(designs), 0.8),
    )

    result = benchmark(
        compute_posterior, designs, targets, prior, 0.01, want_blocks=True
    )
    assert result.mean.shape == (basis.n_basis, len(designs))
    assert np.isfinite(result.nll)


def test_cbmf_fit(benchmark, lna_data, scale):
    """Full C-BMF fit (init + EM) on one metric."""
    pool, _ = lna_data
    train = pool.head(scale.table_cbmf_per_state)
    basis = LinearBasis(pool.n_variables)
    designs = basis.expand_states(train.inputs())
    targets = train.targets("gain_db")

    def fit():
        return CBMF(seed=0).fit(designs, targets)

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.coef_.shape == (len(designs), basis.n_basis)


def test_somp_fit(benchmark, lna_data, scale):
    """Full S-OMP fit (CV + final scan) on one metric."""
    pool, _ = lna_data
    train = pool.head(scale.table_somp_per_state)
    basis = LinearBasis(pool.n_variables)
    designs = basis.expand_states(train.inputs())
    targets = train.targets("gain_db")

    def fit():
        return make_estimator("somp", seed=0).fit(designs, targets)

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model.coef_.shape == (len(designs), basis.n_basis)


def test_simulation_throughput(benchmark, scale):
    """Samples/second of the synthetic 'simulator' (one LNA state).

    For the cost tables the simulation time is *modeled* at the paper's
    SPICE rate; this measures how fast the substrate actually is.
    """
    from repro.circuits.lna import TunableLNA

    lna = TunableLNA(n_states=scale.n_states,
                     n_variables=scale.n_variables_lna)
    x = np.random.default_rng(0).standard_normal(lna.n_variables)
    state = lna.states[0]

    values = benchmark(lna.evaluate_x, x, state)
    assert set(values) == set(lna.metric_names)
