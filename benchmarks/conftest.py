"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures. Scale defaults to
``small`` so `pytest benchmarks/ --benchmark-only` finishes in minutes;
set ``REPRO_SCALE=medium`` (or ``paper`` for the full 32-state, 1264/1303-
variable reproduction) to run closer to the paper. Simulated datasets are
cached under ``.cache/datasets`` and reused across benchmarks.

Every benchmark prints its paper-style table — run with ``-s`` to see them;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from repro.paper import load_or_simulate, resolve_scale


@pytest.fixture(scope="session")
def scale():
    """Active experiment scale (REPRO_SCALE env or 'small')."""
    return resolve_scale()


@pytest.fixture(scope="session")
def lna_data(scale):
    """(pool, test) datasets for the LNA at the active scale."""
    return load_or_simulate("lna", scale, seed=2016)


@pytest.fixture(scope="session")
def mixer_data(scale):
    """(pool, test) datasets for the mixer at the active scale."""
    return load_or_simulate("mixer", scale, seed=2016)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an expensive harness exactly once (no warmup rounds)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
