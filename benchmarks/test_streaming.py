"""Streaming-path benchmark: per-batch absorb vs full refit.

The streaming subsystem's claim is that the O(n²·b) block-Cholesky
extension makes online ingest cheap: absorbing one batch into the live
posterior must be at least 10× faster than refitting the whole model
from scratch on the same rows (the issue's acceptance floor; measured
headroom is 2–3 orders of magnitude). ``python -m repro bench`` emits
the same numbers as ``BENCH_streaming.json`` and CI gates them against
the committed baseline.
"""

from repro.bench import bench_streaming

SPEEDUP_FLOOR = 10.0


def test_absorb_beats_full_refit(benchmark):
    """Median per-batch absorb is >= 10x faster than a full warm refit
    on everything absorbed so far, at the medium workload scale."""
    report = benchmark.pedantic(
        bench_streaming, args=("medium",), kwargs={"repeats": 3},
        rounds=1, iterations=1,
    )
    timings = report["timings_seconds"]
    speedup = report["details"]["absorb_vs_refit_speedup"]
    print(
        f"\nstreaming — {report['config']['n_batches']} batches x "
        f"{report['config']['batch_size']} rows, "
        f"K={report['config']['n_states']}, "
        f"{report['details']['rows_after_stream']} rows after stream\n"
        f"  absorb_batch : {timings['absorb_batch'] * 1e3:.3f}ms\n"
        f"  full_refit   : {timings['full_refit']:.3f}s\n"
        f"  speedup      : {speedup:.0f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental absorb speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor (absorb "
        f"{timings['absorb_batch'] * 1e3:.3f}ms, refit "
        f"{timings['full_refit']:.3f}s)"
    )
