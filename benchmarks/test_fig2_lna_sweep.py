"""Figure 2(b)-(d): LNA modeling error vs. training samples.

Regenerates the three panels of the paper's Figure 2 — NF, VG and IIP3
error as a function of the number of training samples, for S-OMP and
C-BMF — and asserts the two observations the paper draws from them:

1. both methods improve as samples increase;
2. C-BMF sits at or below S-OMP across the budget grid.

Each panel is benchmarked end to end (all fits across the budget grid for
its metric). Run with ``-s`` to see the regenerated series.
"""

import pytest

from benchmarks.conftest import run_once
from repro.basis.polynomial import LinearBasis
from repro.evaluation.plotting import sweep_chart
from repro.evaluation.report import format_sweep_table
from repro.evaluation.sweep import sample_count_sweep
from repro.paper import METRIC_LABELS
from repro.simulate.cost import LNA_COST_MODEL

PANELS = {"nf_db": "fig2b", "gain_db": "fig2c", "iip3_dbm": "fig2d"}


def run_panel(lna_data, scale, metric):
    pool, test = lna_data
    return sample_count_sweep(
        pool,
        test,
        LinearBasis(pool.n_variables),
        methods=("somp", "cbmf"),
        n_per_state_grid=scale.sweep_grid,
        cost_model=LNA_COST_MODEL,
        seed=2016,
        metrics=(metric,),
    )


@pytest.mark.parametrize("metric", list(PANELS))
def test_fig2_panel(benchmark, lna_data, scale, metric):
    """One figure panel: regenerate the series, check the paper's shape."""
    sweep = run_once(benchmark, run_panel, lna_data, scale, metric)
    print("\n" + format_sweep_table(
        f"Figure 2 ({PANELS[metric]}) — tunable LNA",
        sweep,
        metric,
        METRIC_LABELS[metric],
    ))
    print(sweep_chart(sweep, metric, METRIC_LABELS[metric]))

    somp = sweep.errors("somp", metric)
    cbmf = sweep.errors("cbmf", metric)
    # Observation 1: error decreases with more samples (endpoints).
    assert somp[-1] < somp[0]
    assert cbmf[-1] < cbmf[0]
    # Observation 2: C-BMF at or below S-OMP on (almost) every budget.
    wins = sum(c <= s * 1.10 for c, s in zip(cbmf, somp))
    assert wins >= len(somp) - 1


def test_fig2_sample_reduction(benchmark, lna_data, scale):
    """C-BMF reaches S-OMP's final NF accuracy (within a 15 %
    relative tolerance — single-run noise) with ≤ 60 % of the samples; at
    the paper's full scale the reduction reaches the >2× headline."""
    sweep = run_once(benchmark, run_panel, lna_data, scale, "nf_db")
    target = sweep.errors("somp", "nf_db")[-1]
    budget = sweep.samples_to_reach("cbmf", "nf_db", target * 1.15)
    assert budget is not None
    assert budget <= 0.6 * sweep.n_total_grid()[-1]
