"""Figure 3(b)-(d): mixer modeling error vs. training samples.

Same structure as the Figure 2 benchmarks, for the tunable down-conversion
mixer: NF, VG and I1dBCP panels, S-OMP vs C-BMF.
"""

import pytest

from benchmarks.conftest import run_once
from repro.basis.polynomial import LinearBasis
from repro.evaluation.plotting import sweep_chart
from repro.evaluation.report import format_sweep_table
from repro.evaluation.sweep import sample_count_sweep
from repro.paper import METRIC_LABELS
from repro.simulate.cost import MIXER_COST_MODEL

PANELS = {"nf_db": "fig3b", "gain_db": "fig3c", "i1db_dbm": "fig3d"}


def run_panel(mixer_data, scale, metric):
    pool, test = mixer_data
    return sample_count_sweep(
        pool,
        test,
        LinearBasis(pool.n_variables),
        methods=("somp", "cbmf"),
        n_per_state_grid=scale.sweep_grid,
        cost_model=MIXER_COST_MODEL,
        seed=2016,
        metrics=(metric,),
    )


@pytest.mark.parametrize("metric", list(PANELS))
def test_fig3_panel(benchmark, mixer_data, scale, metric):
    """One figure panel: regenerate the series, check the paper's shape."""
    sweep = run_once(benchmark, run_panel, mixer_data, scale, metric)
    print("\n" + format_sweep_table(
        f"Figure 3 ({PANELS[metric]}) — tunable mixer",
        sweep,
        metric,
        METRIC_LABELS[metric],
    ))
    print(sweep_chart(sweep, metric, METRIC_LABELS[metric]))

    somp = sweep.errors("somp", metric)
    cbmf = sweep.errors("cbmf", metric)
    assert somp[-1] < somp[0]
    assert cbmf[-1] < cbmf[0]
    wins = sum(c <= s * 1.10 for c, s in zip(cbmf, somp))
    assert wins >= len(somp) - 1


def test_fig3_sample_reduction(benchmark, mixer_data, scale):
    """C-BMF needs substantially fewer samples than S-OMP for the mixer
    too (paper: 'substantially less training samples ... same accuracy')."""
    sweep = run_once(benchmark, run_panel, mixer_data, scale, "gain_db")
    target = sweep.errors("somp", "gain_db")[-1]
    budget = sweep.samples_to_reach("cbmf", "gain_db", target * 1.15)
    assert budget is not None
    assert budget <= 0.6 * sweep.n_total_grid()[-1]
