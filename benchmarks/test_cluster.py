"""Cluster benchmark: multi-shard throughput and shared-store memory.

The cluster's two claims are gated here. **Memory**: N shard workers
memmap one exported store, so their *summed* proportional charge (PSS)
stays near 1× the store size instead of N× — asserted on every machine,
kernel permitting. **Throughput**: shards are separate processes, so at
4 shards on >= 4 cores the same threaded request stream must run at
least 2× faster than the single-process ``ModelService`` — skipped on
smaller machines, where process transport costs with no parallel
payoff (EXPERIMENTS.md records the 1-core measurement honestly).
``python -m repro bench`` emits the same numbers as
``BENCH_cluster.json`` and CI gates them against the committed baseline.
"""

import os

import pytest

from repro.bench import bench_cluster

PSS_SHARE_CEILING = 2.0
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def small_report():
    """One small-scale run shared by the schema/memory/speedup checks."""
    return bench_cluster("small", repeats=3)


def test_report_schema(small_report):
    """The report carries the fields CI's regression gate compares."""
    assert small_report["kind"] == "cluster"
    timings = small_report["timings_seconds"]
    assert timings["single_process"] > 0
    assert timings["cluster"] > 0
    details = small_report["details"]
    assert details["rows_total"] == (
        small_report["config"]["n_shards"]
        * small_report["config"]["n_requests"]
        * small_report["config"]["rows_per_request"]
    )
    assert details["single_rows_per_second"] > 0
    assert details["cluster_rows_per_second"] > 0
    assert details["store_bytes"] > 0


def test_shards_share_store_pages(small_report):
    """N shards mapping one store are charged ~1× its size in total,
    not N× — the shared-memory store actually shares."""
    details = small_report["details"]
    ratio = details["pss_share_ratio"]
    if ratio is None:
        pytest.skip("per-mapping PSS unsupported on this kernel")
    n_shards = small_report["config"]["n_shards"]
    print(
        f"\ncluster memory — store {details['store_bytes'] / 1e6:.1f}MB, "
        f"1 shard {details['pss_bytes_1_shard'] / 1e6:.1f}MB, "
        f"{n_shards} shards {details['pss_bytes_n_shards'] / 1e6:.1f}MB "
        f"summed (ratio {ratio:.2f}x)"
    )
    assert ratio < PSS_SHARE_CEILING, (
        f"{n_shards} shards together charged {ratio:.2f}x the "
        f"single-shard store PSS; shared pages should keep this "
        f"well under {PSS_SHARE_CEILING}x"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="cluster speedup needs >= 4 cores",
)
def test_four_shards_double_throughput():
    """At 4 shards on >= 4 cores the cluster serves the stream >= 2×
    faster than one process (the issue's acceptance floor)."""
    report = bench_cluster("medium", repeats=3)
    details = report["details"]
    speedup = details["cluster_vs_single_speedup"]
    print(
        f"\ncluster throughput — single "
        f"{details['single_rows_per_second']:,.0f} rows/s, cluster "
        f"{details['cluster_rows_per_second']:,.0f} rows/s "
        f"({speedup:.2f}x on {details['cpu_count']} cores)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cluster speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x "
        f"floor on {details['cpu_count']} cores"
    )
