"""Shim for legacy editable installs (environments without the wheel pkg).

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
