"""Correlation-shared yield reports on a swept-frequency fleet.

The paper's economic argument is that once a C-BMF model is fitted,
million-sample yield analysis is nearly free. This demo adds the
refinement the yields package ships: the learned K x K inter-state
correlation R is reused a *second* time to shrink each state's
Monte-Carlo yield estimate toward the correlation-weighted fleet
estimate. At a fixed small budget per state, the shrunk estimator
tracks a large-sample ground truth more closely than the independent
per-state fractions do.

1. simulate a 48-point swept LNA (every frequency point is a "state"),
2. fit C-BMF per metric (the balanced sweep takes the Kronecker path),
3. define ground truth with a 20k-sample Monte-Carlo pass per state,
4. re-estimate at a 300-sample budget, independently vs shrunk,
5. print the fleet report and the RMSE improvement.

Run:  python examples/yield_demo.py
"""

import tempfile

import numpy as np

from repro.applications import Specification
from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.modelset import PerformanceModelSet
from repro.paper import simulate_sweep
from repro.yields import (
    compute_yield_report,
    format_yield_report,
    sample_state_estimates,
)

N_POINTS = 48
BUDGET = 300
TRUTH_SAMPLES = 20_000
SEED = 2016


def main() -> None:
    with tempfile.TemporaryDirectory() as cache:
        train = simulate_sweep(
            n_points=N_POINTS, n_samples_per_state=10, seed=SEED,
            cache_dir=cache,
        )
    print(f"simulated swept LNA: K={train.n_states} frequency states, "
          f"{train.n_variables} process variables")

    basis = LinearBasis(train.n_variables)
    designs = basis.expand_states(train.inputs())
    fitted = {}
    for metric in train.metric_names:
        model = CBMF(
            init_config=InitConfig(
                r0_grid=(0.95,), sigma0_grid=(0.15,), n_basis_grid=(20,),
                n_folds=2,
            ),
            em_config=EmConfig(max_iterations=8),
            seed=SEED,
        ).fit(designs, train.targets(metric))
        print(f"fitted {metric}: solver={model.predictor.solver}")
        fitted[metric] = model
    models = PerformanceModelSet(fitted, basis)
    frozen = models.freeze()

    specs = [
        Specification.parse("s21_db>=16.5"),
        Specification.parse("nf_db<=1.55"),
    ]
    print("specs:", ", ".join(
        f"{s.metric} {'<=' if s.kind == 'max' else '>='} {s.bound:g}"
        for s in specs
    ))

    # Ground truth: the fitted posterior sampled to death.
    truth = sample_state_estimates(
        frozen, basis, specs, n_samples=TRUTH_SAMPLES, seed=SEED + 1
    ).yields

    # The budgeted pass: same draws feed both estimators.
    estimates = sample_state_estimates(
        frozen, basis, specs, n_samples=BUDGET, seed=SEED + 2
    )
    report = compute_yield_report(
        frozen, basis, specs, estimates=estimates
    )
    print()
    print(format_yield_report(report))

    rmse_raw = float(np.sqrt(np.mean((report.yield_raw - truth) ** 2)))
    rmse_shrunk = float(
        np.sqrt(np.mean((report.yield_shrunk - truth) ** 2))
    )
    print()
    print(f"yield RMSE vs {TRUTH_SAMPLES}-sample ground truth "
          f"at a {BUDGET}-sample budget:")
    print(f"  independent per-state fractions : {rmse_raw:.5f}")
    print(f"  correlation-shared shrinkage    : {rmse_shrunk:.5f} "
          f"({rmse_raw / rmse_shrunk:.2f}x tighter)")
    print(f"  between-state variance tau^2    : {report.tau2:.2e}")


if __name__ == "__main__":
    main()
