"""State clustering for mutually-different states (paper Section 5).

The paper's conclusion: the unified correlation model breaks down when
states are *mutually different* — e.g. a knob that switches the signal path
rather than nudging a bias. This example builds such a circuit-like
scenario (two state families with disjoint sensitivity templates), shows
plain C-BMF degrade, and recovers the accuracy with ClusteredCBMF.

Run:  python examples/state_clustering.py
"""

import numpy as np

from repro import CBMF, ClusteredCBMF, modeling_error_percent
from repro.core.clustering import cluster_states


def make_two_family_system(seed=0, n_per_family=5, n_basis=120):
    """Synthetic tunable system whose knob switches between two topologies.

    States 0..4 share one sparse template, states 5..9 a disjoint one —
    within each family the coefficient magnitudes stay correlated (AR(1)),
    across families they share nothing.
    """
    rng = np.random.default_rng(seed)
    n_states = 2 * n_per_family
    truth = np.zeros((n_states, n_basis))
    ar1 = 0.9 ** np.abs(
        np.subtract.outer(np.arange(n_per_family), np.arange(n_per_family))
    )
    chol = np.linalg.cholesky(ar1)
    for family, support in enumerate(
        (rng.choice(np.arange(1, n_basis), 5, replace=False),
         rng.choice(np.arange(1, n_basis), 5, replace=False))
    ):
        rows = slice(family * n_per_family, (family + 1) * n_per_family)
        for m in support:
            truth[rows, m] = chol @ rng.standard_normal(n_per_family) * 2.0
    truth[:, 0] = 5.0  # shared intercept

    def sample(n):
        designs, targets = [], []
        for k in range(n_states):
            design = rng.standard_normal((n, n_basis))
            design[:, 0] = 1.0
            designs.append(design)
            targets.append(
                design @ truth[k] + 0.05 * rng.standard_normal(n)
            )
        return designs, targets

    return sample, truth


def main() -> None:
    sample, _ = make_two_family_system()
    train_designs, train_targets = sample(12)
    test_designs, test_targets = sample(300)

    def error(model):
        predictions = [
            model.predict(d, k) for k, d in enumerate(test_designs)
        ]
        return modeling_error_percent(predictions, test_targets)

    labels = cluster_states(train_designs, train_targets, 2)
    print("inferred state clusters:", labels.tolist())

    plain = CBMF(seed=0).fit(train_designs, train_targets)
    clustered = ClusteredCBMF(n_clusters=2, seed=0).fit(
        train_designs, train_targets
    )
    print(f"plain C-BMF   (unified correlation): {error(plain):7.3f} %")
    print(f"Clustered C-BMF (per-family fusion): {error(clustered):7.3f} %")
    print("\nas the paper's conclusion predicts, clustering mutually-"
          "different states before fusing restores the accuracy.")


if __name__ == "__main__":
    main()
