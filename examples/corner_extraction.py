"""Design-specific worst-case corner extraction on a tunable mixer.

Fits C-BMF models for the mixer, then extracts the 3-sigma worst-case
corner of each metric per knob state — the corner a designer would re-simulate
and design against. Shows that worst-case NF corners of *adjacent* states
point in nearly the same process direction (the correlation C-BMF exploits)
while the metric value still shifts with the knob.

Run:  python examples/corner_extraction.py
"""

import numpy as np

from repro import CBMF, LinearBasis, MonteCarloEngine, TunableMixer
from repro.applications import extract_worst_case_corner


def main() -> None:
    mixer = TunableMixer(n_states=6, n_variables=None)
    data = MonteCarloEngine(mixer, seed=11).run(30)
    basis = LinearBasis(mixer.n_variables)
    designs = basis.expand_states(data.inputs())

    print("fitting C-BMF models ...")
    models = {
        metric: CBMF(seed=0).fit(designs, data.targets(metric))
        for metric in mixer.metric_names
    }

    print("\n3-sigma worst-case corners (metric value at the corner):")
    header = f"{'state':>5}" + "".join(
        f"{m:>14}" for m in mixer.metric_names
    )
    print(header)
    corners = {}
    for state in range(mixer.n_states):
        row = [f"{state:>5}"]
        for metric in mixer.metric_names:
            # Worst case: max for NF (upper-bounded), min for gain/I1dB.
            direction = "max" if metric == "nf_db" else "min"
            corner = extract_worst_case_corner(
                models[metric], basis, state, sigma_budget=3.0,
                direction=direction,
            )
            corners[(metric, state)] = corner
            row.append(f"{corner.value:>13.2f} ")
        print("".join(row))

    print("\ncorner-direction alignment across states (NF):")
    reference = corners[("nf_db", 0)].x
    for state in range(mixer.n_states):
        x = corners[("nf_db", state)].x
        cosine = float(
            x @ reference
            / max(np.linalg.norm(x) * np.linalg.norm(reference), 1e-12)
        )
        print(f"  state {state}: cos(corner_0, corner_{state}) = {cosine:+.3f}")
    print("\n(high alignment between neighbouring states is exactly the "
          "cross-state correlation the C-BMF prior encodes)")


if __name__ == "__main__":
    main()
