"""Active-learning demo: fit a tunable LNA with uncertainty-aware sampling.

Runs the closed acquisition loop — fit C-BMF, score a candidate pool with
the posterior-predictive variance, simulate only the winners, refit warm —
on the tunable LNA's noise figure, pushes the converged model (with its
acquisition provenance in the manifest) to a versioned registry, and
serves one prediction from the pushed artifact.

Run:  python examples/active_learning_demo.py
"""

import json
import tempfile

import numpy as np

from repro import TunableLNA
from repro.active import (
    ActiveFitConfig,
    ActiveFitLoop,
    CircuitOracle,
    StoppingRule,
    push_result,
)
from repro.evaluation.report import format_active_history
from repro.serving import ModelRegistry
from repro.simulate.cost import LNA_COST_MODEL


def main() -> None:
    # 1. The 'simulator': a small tunable LNA, fitting its noise figure.
    lna = TunableLNA(n_states=4, n_variables=None)
    oracle = CircuitOracle(lna, "nf_db")
    print(f"circuit: {lna.name}, K={lna.n_states} states, "
          f"{lna.n_variables} variables, metric nf_db")

    # 2. The loop: variance-scored batches, warm refits, plateau stop.
    config = ActiveFitConfig(
        metric="nf_db",
        strategy="variance",
        init_per_state=4,
        batch_per_round=8,
        n_candidates=48,
        holdout_per_state=25,
        stopping=StoppingRule(max_rounds=5, max_samples=60),
        seed=2016,
    )
    loop = ActiveFitLoop(oracle, config)
    result = loop.run()
    print()
    print(format_active_history(result.history))
    print(f"\nspent {result.ledger.total} simulations "
          f"(per state: {list(result.ledger.per_state)}); "
          f"final holdout RMSE {result.holdout_rmse:.4f} dB")

    with tempfile.TemporaryDirectory() as root:
        # 3. Push: the manifest records *how* the model was obtained.
        registry = ModelRegistry(root)
        entry = push_result(
            registry, "lna-active", result, loop.basis,
            cost_model=LNA_COST_MODEL,
        )
        print(f"\npushed {entry.key}")
        print("manifest acquisition metadata:")
        print(json.dumps(entry.manifest["acquisition"], indent=2,
                         sort_keys=True))

        # 4. Serve: load the artifact back and answer one query.
        served = registry.load(entry.key)
        x = np.zeros(lna.n_variables)  # the typical corner
        answer = served.predict_point(x, state=0)
        truth = oracle.observe(x[None, :], 0)[0]
        print(f"\nserved prediction at the typical corner, state 0: "
              f"{answer['nf_db']:.3f} dB (simulator says {truth:.3f} dB)")


if __name__ == "__main__":
    main()
