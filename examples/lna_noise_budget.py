"""Designer diagnostics on the LNA substrate: noise budget, match, AC sweep.

The synthetic circuits are real small-signal networks, not black boxes —
this example uses the analysis layer directly: per-source noise budget at
two knob settings, the input match across states, and the gain's frequency
response, the plots a designer checks before trusting any statistical
modeling on top.

Run:  python examples/lna_noise_budget.py
"""

import numpy as np

from repro import TunableLNA


def main() -> None:
    lna = TunableLNA(n_states=8, n_variables=None)

    for index in (0, 7):
        state = lna.states[index]
        print(f"--- state {index} "
              f"(bias {1e3 * lna.bias_current(state):.2f} mA) ---")
        print(lna.noise_budget(state))
        print()

    print("input match vs knob state (2.4 GHz):")
    for state in lna.states:
        z_in = lna.input_impedance(state)
        rl = lna.input_return_loss_db(state)
        print(
            f"  state {state.index}: Zin = {z_in.real:6.1f} "
            f"{z_in.imag:+7.1f}j Ω,  RL = {rl:5.2f} dB"
        )

    # AC sweep of the driven small-signal circuit around the band.
    state = lna.states[4]
    sample = lna.process_model.realize(np.zeros(lna.n_variables))
    bias = lna.bias_current(state, sample)
    ss1 = lna.m1.small_signal(bias, sample)
    ss2 = lna.m2.small_signal(bias, sample)
    circuit = lna._build_circuit(sample, ss1, ss2, with_source=True)
    freqs = np.linspace(1.8e9, 3.0e9, 13)
    response = circuit.frequency_response(freqs, "out")
    print("\ngain vs frequency (state 4):")
    for f, v in zip(freqs, response):
        gain_db = 20 * np.log10(abs(v))
        bar = "#" * max(int(gain_db), 0)
        print(f"  {f / 1e9:4.2f} GHz: {gain_db:6.2f} dB  {bar}")


if __name__ == "__main__":
    main()
