"""Cluster demo: shard fleet serving a canaried streaming model.

Seeds a C-BMF fit, starts a two-shard `ClusterService` (asyncio gateway
in this process, two worker processes memmapping one shared-memory
export of the registry), then streams fresh measurement batches through
a `StreamingService` whose `on_push` hook canaries every published
version through the cluster: 30% of the traffic after each push goes to
the freshly streamed version while the rest stays on stable, each side
reporting its own per-version latency and error counters. When the
stream ends the last canary is promoted to stable — a full cutover that
never stopped serving.

Run:  python examples/cluster_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.active import SyntheticOracle
from repro.cluster import ClusterConfig, ClusterService
from repro.core.cbmf import CBMF
from repro.serving import ModelRegistry
from repro.streaming import (
    OnlineCBMF,
    OracleStream,
    StreamingConfig,
    StreamingService,
)

N_STATES = 3
N_VARIABLES = 6
METRIC = "gain"


def main() -> None:
    # 1. Seed fit on a small correlated multi-state ground truth.
    coef = np.zeros((N_STATES, N_VARIABLES + 1))
    coef[:, 0] = 2.0
    coef[:, 2] = np.linspace(1.0, 1.4, N_STATES)
    coef[:, 5] = -0.8
    oracle = SyntheticOracle(coef, noise_std=0.05, metric=METRIC)
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal((15, N_VARIABLES)) for _ in range(N_STATES)
    ]
    targets = [oracle.observe(x, k) for k, x in enumerate(inputs)]
    fitted = CBMF(seed=1).fit(oracle.basis.expand_states(inputs), targets)
    online = OnlineCBMF.from_cbmf(fitted, basis=oracle.basis, metric=METRIC)

    probe = rng.standard_normal((8, N_VARIABLES))
    states = rng.integers(0, N_STATES, 8)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        registry.push("live", online.modelset())  # -> live@v1

        config = ClusterConfig(n_shards=2)
        with ClusterService(registry, ["live@v1"], config) as cluster:
            print("cluster serving live@v1 on 2 shards")

            # 2. Canary every streamed push through the cluster.
            def canary_push(entry):
                cluster.set_canary("live", entry.key, 0.3)
                for _ in range(10):  # traffic split 70/30 across versions
                    cluster.predict_many("live", probe, states)
                print(f"  pushed {entry.key}: canarying at 30%")

            service = StreamingService(
                online,
                registry,
                StreamingConfig(
                    name="live", push_every=2, on_push=canary_push
                ),
            )
            report = service.run(
                OracleStream(oracle, n_batches=6, batch_size=8, seed=17)
            )
            print(f"absorbed {report.absorbed} batches, "
                  f"{service.metrics.snapshot()['pushes']} pushes")

            # 3. Per-version traffic: stable vs canary, separately.
            print("\nper-version traffic:")
            for key, lane in cluster.metrics.snapshot()["versions"].items():
                print(f"  {key:<10} requests={lane['requests']:<4} "
                      f"p50={lane['p50_latency_ms']:.2f}ms")

            # 4. Full cutover: the surviving canary becomes stable.
            stable = cluster.promote("live")
            result = cluster.predict("live", probe[0], 0)
            print(f"\npromoted {stable} to stable; "
                  f"now serving version {result.version}")
            route = cluster.describe_routes()["live"]
            assert route["stable"] == stable and route["canary"] is None

            print()
            print(cluster.report())


if __name__ == "__main__":
    main()
