"""Serving demo: registry push, micro-batched serving, hot swap.

Fits a small tunable-LNA model set, pushes two versions of it to a
versioned on-disk registry, serves a burst of mixed-state requests
through the micro-batching `ModelService`, and hot-swaps to the second
version under load. Prints the registry listing and the service's
telemetry snapshot along the way.

Run:  python examples/serving_demo.py
"""

import tempfile

import numpy as np

from repro import MonteCarloEngine, TunableLNA
from repro.modelset import PerformanceModelSet
from repro.serving import (
    BatchConfig,
    CacheConfig,
    ModelRegistry,
    ModelService,
)


def main() -> None:
    # 1. Fit: a small tunable LNA, one model per metric.
    lna = TunableLNA(n_states=4, n_variables=None)
    data = MonteCarloEngine(lna, seed=2016).run(18)
    train, test = data.split(12)
    models = PerformanceModelSet.fit_dataset(train, method="cbmf", seed=0)
    print(f"fitted {len(models.metric_names)} metrics on "
          f"{lna.n_states} states x {lna.n_variables} variables")

    with tempfile.TemporaryDirectory() as root:
        # 2. Push: versions are immutable; a re-push makes v2.
        registry = ModelRegistry(root)
        registry.push("lna", models)
        retrained = PerformanceModelSet.fit_dataset(
            train, method="somp", seed=1
        )
        registry.push("lna", retrained)
        print("\nregistry contents:")
        for entry in registry.list_entries():
            print(f"  {entry.key:10s} {entry.kind:9s} "
                  f"metrics={','.join(entry.metrics)}")

        # 3. Serve: micro-batched with an LRU result cache.
        service = ModelService(
            registry,
            batch=BatchConfig(max_batch_size=64, flush_interval=0.002),
            cache=CacheConfig(capacity=4096),
        )
        service.load("lna@v1")

        rng = np.random.default_rng(7)
        pool = rng.standard_normal((200, lna.n_variables))
        x = pool[rng.integers(0, 200, 2000)]
        states = rng.integers(0, lna.n_states, 2000)
        results = service.predict_many("lna", x, states)
        print(f"\nserved {len(results)} requests from lna@v1")
        sample = results[0]
        print("  first answer:", {
            metric: round(value, 4) for metric, value in sample.values.items()
        })

        # The served answers are the frozen models' answers.
        direct = models.predict_point(x[0], int(states[0]))
        worst = max(
            abs(sample.values[metric] - direct[metric]) for metric in direct
        )
        print(f"  max |served - direct| on request 0: {worst:.2e}")

        # 4. Hot swap: atomic under load, cache invalidated.
        service.swap("lna@v2")
        swapped = service.predict("lna", x[0], int(states[0]))
        print(f"\nhot-swapped to version {swapped.version} "
              f"(answers now from the retrained S-OMP set)")

        # 5. Telemetry.
        snapshot = service.metrics.snapshot()
        print("\nservice telemetry:")
        print(f"  requests        {snapshot['requests']}")
        print(f"  cache hit rate  {snapshot['cache_hit_rate']:.1%}")
        print(f"  batches         {snapshot['batches']} "
              f"(mean size {snapshot['mean_batch_size']:.1f})")
        print(f"  hot swaps       {snapshot['hot_swaps']}")


if __name__ == "__main__":
    main()
