"""Quickstart: model a tunable LNA with C-BMF in ~30 lines.

Simulates a small tunable LNA (8 knob states), fits one C-BMF performance
model per metric from 15 samples per state, and reports the held-out
modeling error next to the S-OMP baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    CBMF,
    LinearBasis,
    MonteCarloEngine,
    SOMP,
    TunableLNA,
    modeling_error_percent,
)


def main() -> None:
    # 1. A tunable circuit: 8 bias-DAC states, natural variable count.
    lna = TunableLNA(n_states=8, n_variables=None)
    print(f"circuit: {lna.name}, {lna.n_states} states, "
          f"{lna.n_variables} process variables")

    # 2. 'Simulate': 15 training + 30 testing samples per state.
    data = MonteCarloEngine(lna, seed=2016).run(45)
    train, test = data.split(15)

    # 3. Basis-expand once (linear basis, as in the paper).
    basis = LinearBasis(lna.n_variables)
    train_designs = basis.expand_states(train.inputs())
    test_designs = basis.expand_states(test.inputs())

    # 4. Fit and score per metric.
    for metric in lna.metric_names:
        targets = train.targets(metric)
        truth = test.targets(metric)

        cbmf = CBMF(seed=0).fit(train_designs, targets)
        somp = SOMP(seed=0).fit(train_designs, targets)

        def error(model):
            predictions = [
                model.predict(design, k)
                for k, design in enumerate(test_designs)
            ]
            return modeling_error_percent(predictions, truth)

        print(
            f"{metric:10s}  C-BMF: {error(cbmf):6.3f} %   "
            f"S-OMP: {error(somp):6.3f} %   "
            f"(C-BMF active bases: {cbmf.report_.n_active})"
        )
        last_model = cbmf

    # 5. Which devices drive the last metric? (sensitivity ranking)
    from repro.applications import format_ranking, rank_sensitivities

    print("\ntop IIP3 sensitivities (state 0, one-sigma dBm):")
    ranking = rank_sensitivities(
        last_model,
        basis,
        state=0,
        variable_names=lna.process_model.variable_names,
        top=5,
    )
    print(format_ranking(ranking, unit="dB"))


if __name__ == "__main__":
    main()
