"""Regenerate every table and figure of the paper's evaluation (Section 4).

Runs the LNA (Table 1, Figure 2b-d) and mixer (Table 2, Figure 3b-d)
experiments and prints the paper-style comparisons. Scale is selected via
the REPRO_SCALE environment variable or --scale:

    python examples/reproduce_paper.py --scale small    # minutes
    python examples/reproduce_paper.py --scale medium   # ~10 min
    python examples/reproduce_paper.py --scale paper    # full reproduction

Figures are emitted as text tables (error % per training budget); the paper
plots exactly these series.
"""

import argparse
import time

from repro.evaluation.report import (
    format_comparison_table,
    format_sweep_table,
)
from repro.paper import (
    METRIC_LABELS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    resolve_scale,
    run_cost_table,
    run_figure_sweep,
)

FIGURES = {
    "lna": ("Figure 2(b)-(d) — tunable LNA", "Table 1", PAPER_TABLE1),
    "mixer": ("Figure 3(b)-(d) — tunable mixer", "Table 2", PAPER_TABLE2),
}


def reproduce_circuit(circuit: str, scale, seed: int) -> None:
    figure_title, table_title, paper_numbers = FIGURES[circuit]

    started = time.perf_counter()
    sweep = run_figure_sweep(circuit, scale, seed=seed)
    for metric in sweep.metric_names:
        print(format_sweep_table(
            figure_title, sweep, metric, METRIC_LABELS.get(metric)
        ))
        print()

    results = run_cost_table(circuit, scale, seed=seed)
    print(format_comparison_table(
        f"{table_title} — {circuit.upper()} (scale: {scale.name})",
        [results["somp"], results["cbmf"]],
        METRIC_LABELS,
    ))
    print()

    somp, cbmf = results["somp"], results["cbmf"]
    ratio = somp.cost.total_hours / cbmf.cost.total_hours
    paper_ratio = (
        paper_numbers["somp"]["overall_hours"]
        / paper_numbers["cbmf"]["overall_hours"]
    )
    print(
        f"cost reduction: {ratio:.2f}x measured "
        f"(paper: {paper_ratio:.2f}x); "
        f"wall clock {time.perf_counter() - started:.0f}s"
    )
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default=None, choices=("small", "medium", "paper"),
        help="experiment size (default: REPRO_SCALE env or 'small')",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--circuit", default="both", choices=("lna", "mixer", "both")
    )
    args = parser.parse_args()
    scale = resolve_scale(args.scale)

    circuits = ("lna", "mixer") if args.circuit == "both" else (args.circuit,)
    for circuit in circuits:
        reproduce_circuit(circuit, scale, args.seed)


if __name__ == "__main__":
    main()
