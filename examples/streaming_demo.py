"""Streaming demo: online absorbs, drift-triggered refit, hot serving.

Seeds a C-BMF fit on a synthetic multi-state oracle, then streams fresh
measurement batches through the `StreamingService`: each healthy batch
is absorbed into the live posterior with an O(n²·b) Cholesky extension
(no refit), every absorb publishes a new registry version and hot-swaps
the serving plane, and mid-stream the oracle's regime shifts — the
drift monitor catches it and schedules a warm-started refit on a
forgetting window, re-anchoring the served model to the new regime.
The stream is recorded to an .npz and replayed to show deterministic
post-mortem reproduction.

Run:  python examples/streaming_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.active import SyntheticOracle
from repro.core.cbmf import CBMF
from repro.serving import ModelRegistry, ModelService
from repro.streaming import (
    DriftConfig,
    OnlineCBMF,
    OracleStream,
    ReplayStream,
    ShiftedOracle,
    StreamingConfig,
    StreamingService,
    record_stream,
)

N_STATES = 3
N_VARIABLES = 6
METRIC = "gain"


def main() -> None:
    # 1. Seed fit: a small correlated multi-state ground truth.
    coef = np.zeros((N_STATES, N_VARIABLES + 1))
    coef[:, 0] = 2.0
    coef[:, 2] = np.linspace(1.0, 1.4, N_STATES)
    coef[:, 5] = -0.8
    oracle = SyntheticOracle(coef, noise_std=0.05, metric=METRIC)
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal((15, N_VARIABLES)) for _ in range(N_STATES)
    ]
    targets = [oracle.observe(x, k) for k, x in enumerate(inputs)]
    fitted = CBMF(seed=1).fit(oracle.basis.expand_states(inputs), targets)
    online = OnlineCBMF.from_cbmf(fitted, basis=oracle.basis, metric=METRIC)
    print(f"seeded online C-BMF: {online.n_rows} rows, "
          f"K={online.n_states} states")

    # 2. A drifting stream: the regime steps by +3.0 halfway through.
    drifting = ShiftedOracle(oracle, shift=3.0, after_calls=6)
    batches = list(
        OracleStream(drifting, n_batches=12, batch_size=8, seed=17)
    )

    with tempfile.TemporaryDirectory() as tmp:
        recording = Path(tmp) / "stream.npz"
        record_stream(batches, recording)
        print(f"recorded {len(batches)} batches for replay")

        # 3. Stream: absorb -> drift-check -> push -> hot-swap.
        registry = ModelRegistry(Path(tmp) / "registry")
        serving = ModelService(registry)
        service = StreamingService(
            online,
            registry,
            StreamingConfig(
                name="live",
                drift=DriftConfig(threshold=3.0, warmup_batches=1),
                refit_window=4,
            ),
            serving=serving,
        )
        report = service.run(ReplayStream(recording))
        print(f"\nabsorbed {report.absorbed} batches, "
              f"drift refits: {report.refits}")
        for record in report.records:
            if record.drifted:
                print(f"  drift flagged at batch {record.index} "
                      f"(smoothed mean-z² = {record.drift_smoothed:.1f})")

        # 4. The served model tracks the *new* regime.
        served = serving.served_model("live")
        probe = rng.standard_normal(N_VARIABLES)
        answer = serving.predict("live", probe, 0).values[METRIC]
        truth = float(drifting.truth(probe[None, :], 0)[0])
        print(f"\nserving live@v{served.version} after the stream")
        print(f"  post-drift truth at a probe point: {truth:.3f}")
        print(f"  served prediction:                 {answer:.3f}")
        print(f"  |error| = {abs(answer - truth):.3f} "
              f"(the pre-drift model was off by ~3.0)")

        # 5. Telemetry.
        snapshot = service.metrics.snapshot()
        print("\nstreaming telemetry:")
        print(f"  batches absorbed  {snapshot['batches_absorbed']}")
        print(f"  registry pushes   {snapshot['pushes']}")
        print(f"  hot swaps         {snapshot['swaps']} "
              f"({snapshot['swap_failures']} failed)")
        print(f"  absorb p50        {snapshot['p50_absorb_ms']:.3f} ms")
        print(f"  refit seconds     {snapshot['refit_seconds']:.2f}")


if __name__ == "__main__":
    main()
