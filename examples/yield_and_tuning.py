"""Yield estimation and post-silicon tuning from fitted models.

This is the downstream workflow the paper motivates: once per-state
performance models exist, a designer can (cheaply, on the model)

1. estimate the parametric yield of every knob state against the specs,
2. quantify how much *tunability* buys: the yield when each die selects
   its own best state after manufacturing,
3. validate the model-based yield against direct circuit Monte Carlo.

Run:  python examples/yield_and_tuning.py
"""

from repro import CBMF, LinearBasis, MonteCarloEngine, TunableLNA
from repro.applications import (
    Specification,
    TuningPolicy,
    YieldEstimator,
    monte_carlo_yield,
)


def main() -> None:
    lna = TunableLNA(n_states=8, n_variables=None)
    data = MonteCarloEngine(lna, seed=7).run(30)
    basis = LinearBasis(lna.n_variables)
    designs = basis.expand_states(data.inputs())

    print("fitting one C-BMF model per metric ...")
    models = {
        metric: CBMF(seed=0).fit(designs, data.targets(metric))
        for metric in lna.metric_names
    }

    # Specs chosen a bit inside the nominal spread so yield is interesting.
    # The gain *window* (a realistic AGC-range requirement) is what makes
    # tunability pay: a fast-corner die overshoots the window at high bias
    # and selects a lower state, a slow die does the opposite.
    specs = [
        Specification("nf_db", 1.25, "max"),
        Specification("gain_db", 25.2, "min"),
        Specification("gain_db", 26.8, "max"),
        Specification("iip3_dbm", -3.0, "min"),
    ]
    print("specs:", ", ".join(
        f"{s.metric} {'<=' if s.kind == 'max' else '>='} {s.bound:g}"
        for s in specs
    ))

    estimator = YieldEstimator(models, basis)
    yields = estimator.state_yields(specs, n_samples=50_000, seed=1)
    print("\nper-state yield (model-based, 50k MC):")
    for state, value in enumerate(yields):
        bar = "#" * int(40 * value)
        print(f"  state {state:2d}: {value:6.1%}  {bar}")

    policy = TuningPolicy(models, basis, specs)
    summary = policy.summarize(n_samples=50_000, seed=2)
    print(f"\nbest fixed state: {summary.best_fixed_state} "
          f"with {summary.best_fixed_yield:.1%} yield")
    print(f"tuned yield (each die picks its state): {summary.tuned_yield:.1%}")
    print(f"tuning gain: +{summary.tuning_gain:.1%}")

    # Validate the model against the 'simulator' on one state.
    state = summary.best_fixed_state
    direct = monte_carlo_yield(lna, state, specs, n_samples=400, seed=3)
    print(f"\nvalidation, state {state}: model {yields[state]:.1%} "
          f"vs direct circuit MC {direct:.1%} (400 simulations)")


if __name__ == "__main__":
    main()
