"""Budget-aware VCO modeling with uncertainty-driven adaptive sampling.

The paper fixes the simulation budget up front (480 vs. 1120 samples).
With C-BMF's posterior, the budget can instead be *discovered*: simulate in
batches, query the model's own predictive uncertainty on fresh (free,
unsimulated) probe points, and stop at the accuracy target. This example
models a tunable LC VCO's oscillation frequency to a 0.25 % target and
reports how many simulations that actually took, plus the calibration of
the error bars against held-out truth.

Run:  python examples/adaptive_vco.py
"""

import numpy as np

from repro import LinearBasis, MonteCarloEngine, TunableVCO
from repro.applications import AdaptiveSampler
from repro.evaluation.error import modeling_error_percent


def main() -> None:
    vco = TunableVCO(n_states=8)
    print(f"circuit: {vco.name}, {vco.n_states} bands, "
          f"{vco.n_variables} process variables")

    sampler = AdaptiveSampler(
        vco,
        metric="freq_ghz",
        target_percent=0.25,
        initial_per_state=8,
        batch_per_state=4,
        max_rounds=6,
        seed=3,
    )
    result = sampler.run()

    print("\nround   samples   predicted error")
    for i, round_ in enumerate(result.rounds):
        print(
            f"{i + 1:>5}   {round_.n_samples_total:>7}   "
            f"{round_.predicted_error_percent:>10.3f} %"
        )
    verdict = "converged" if result.converged else "budget exhausted"
    print(f"→ {verdict} at {result.n_samples_total} simulations")

    # Validate against fresh simulations the sampler never saw.
    test = MonteCarloEngine(vco, seed=999).run(40)
    basis = LinearBasis(vco.n_variables)
    predictions, stds, truths = [], [], []
    for k in range(vco.n_states):
        design = basis.expand(test.states[k].x)
        predictions.append(result.model.predict(design, k))
        stds.append(result.model.predict_std(design, k, include_noise=True))
        truths.append(test.states[k].y["freq_ghz"])
    measured = modeling_error_percent(predictions, truths)
    print(f"\nmeasured held-out error: {measured:.3f} % "
          f"(target was {sampler.target_percent} %)")

    residuals = np.concatenate(
        [np.abs(p - t) for p, t in zip(predictions, truths)]
    )
    sigma = np.concatenate(stds)
    coverage = float(np.mean(residuals <= sigma))
    print(f"error-bar calibration: {coverage:.0%} of held-out points "
          f"within 1 predictive sigma (ideal ≈ 68%)")


if __name__ == "__main__":
    main()
