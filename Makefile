# Convenience targets for the C-BMF reproduction.

PYTHON ?= python

.PHONY: install test bench paper medium examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

medium:
	REPRO_SCALE=medium $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .cache .pytest_cache build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
