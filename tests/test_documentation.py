"""Documentation quality gates.

Walks the installed package and asserts every public module, class,
function and method carries a docstring — keeping deliverable (e) honest
as the codebase grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_METHOD_NAMES = {
    # dataclass/namedtuple machinery and dunders other than __init__
    "__repr__",
    "__eq__",
    "__hash__",
    "__str__",
}


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


def owned_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


ALL_MODULES = list(iter_public_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_public_items_have_docstrings(module):
    missing = []
    for name, member in owned_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_") or attr_name in IGNORED_METHOD_NAMES:
                    continue
                if not (
                    inspect.isfunction(attr)
                    or isinstance(attr, (property, classmethod, staticmethod))
                ):
                    continue
                target = attr
                if isinstance(attr, (classmethod, staticmethod)):
                    target = attr.__func__
                elif isinstance(attr, property):
                    target = attr.fget
                if target is None:
                    continue
                doc = inspect.getdoc(target)
                if not (doc and doc.strip()):
                    missing.append(
                        f"{module.__name__}.{name}.{attr_name}"
                    )
    assert not missing, "missing docstrings:\n  " + "\n  ".join(missing)


def test_every_module_under_src_is_importable():
    """No orphan modules with syntax errors hiding in the tree."""
    count = sum(1 for _ in iter_public_modules())
    assert count >= 30  # the package is genuinely large
