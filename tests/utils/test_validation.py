"""Tests for the input-validation helpers."""

import numpy as np
import pytest

from repro.utils import validation


class TestCheckVector:
    def test_accepts_list(self):
        out = validation.check_vector([1.0, 2.0], "v")
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            validation.check_vector(np.zeros((2, 2)), "v")

    def test_enforces_length(self):
        with pytest.raises(ValueError, match="length 3"):
            validation.check_vector([1.0, 2.0], "v", length=3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            validation.check_vector([1.0, np.nan], "v")

    def test_names_offending_argument(self):
        with pytest.raises(ValueError, match="myvec"):
            validation.check_vector(np.zeros((1, 1)), "myvec")


class TestCheckMatrix:
    def test_accepts_2d(self):
        out = validation.check_matrix([[1.0, 2.0]], "m")
        assert out.shape == (1, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            validation.check_matrix([1.0, 2.0], "m")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            validation.check_matrix(np.zeros((0, 3)), "m")

    def test_allow_empty(self):
        out = validation.check_matrix(
            np.zeros((0, 3)), "m", allow_empty=True
        )
        assert out.shape == (0, 3)

    def test_shape_rows(self):
        with pytest.raises(ValueError, match="2 rows"):
            validation.check_matrix(np.ones((3, 2)), "m", shape=(2, None))

    def test_shape_cols(self):
        with pytest.raises(ValueError, match="4 columns"):
            validation.check_matrix(np.ones((3, 2)), "m", shape=(None, 4))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            validation.check_matrix([[np.inf]], "m")


class TestCheckSquare:
    def test_accepts_square(self):
        assert validation.check_square(np.eye(3), "m").shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            validation.check_square(np.ones((2, 3)), "m")

    def test_enforces_size(self):
        with pytest.raises(ValueError, match="4x4"):
            validation.check_square(np.eye(3), "m", size=4)


class TestScalars:
    def test_check_positive(self):
        assert validation.check_positive(2, "x") == 2.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            validation.check_positive(0.0, "x")

    def test_check_positive_nonstrict_allows_zero(self):
        assert validation.check_positive(0.0, "x", strict=False) == 0.0

    def test_check_positive_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            validation.check_positive(float("nan"), "x")

    def test_check_in_range(self):
        assert validation.check_in_range(0.5, "x", 0.0, 1.0) == 0.5

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            validation.check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        assert validation.check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            validation.check_probability(1.5, "p")

    def test_check_integer(self):
        assert validation.check_integer(3, "n") == 3

    def test_check_integer_rejects_bool(self):
        with pytest.raises(TypeError):
            validation.check_integer(True, "n")

    def test_check_integer_rejects_float(self):
        with pytest.raises(TypeError):
            validation.check_integer(3.0, "n")

    def test_check_integer_minimum(self):
        with pytest.raises(ValueError, match=">= 2"):
            validation.check_integer(1, "n", minimum=2)

    def test_check_same_length(self):
        validation.check_same_length("a", [1], "b", [2])
        with pytest.raises(ValueError, match="same length"):
            validation.check_same_length("a", [1], "b", [1, 2])
