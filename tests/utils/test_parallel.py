"""Tests for the deterministic process-pool map."""

import os

import numpy as np
import pytest

from repro.utils.parallel import derive_seeds, parallel_map, resolve_workers


# Cells must be module-level to pickle under the spawn start method.
def _square(x):
    return x * x


def _scale(x, payload):
    return x * payload["factor"]


def _draw(seed_seq, payload):
    rng = np.random.default_rng(seed_seq)
    return float(rng.standard_normal())


class TestResolveWorkers:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert resolve_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_clamped_to_items(self):
        assert resolve_workers(8, n_items=3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestDeriveSeeds:
    def test_count(self):
        assert len(derive_seeds(0, 5)) == 5

    def test_reproducible(self):
        a = [s.generate_state(2).tolist() for s in derive_seeds(7, 4)]
        b = [s.generate_state(2).tolist() for s in derive_seeds(7, 4)]
        assert a == b

    def test_accepts_generator(self):
        gen = np.random.default_rng(3)
        seeds = derive_seeds(gen, 2)
        assert len(seeds) == 2

    def test_children_differ(self):
        states = [
            tuple(s.generate_state(2).tolist()) for s in derive_seeds(0, 6)
        ]
        assert len(set(states)) == 6

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_with_shared(self):
        out = parallel_map(_scale, [1, 2], shared={"factor": 10})
        assert out == [10, 20]

    def test_parallel_matches_serial(self):
        serial = parallel_map(_square, list(range(8)), max_workers=1)
        pooled = parallel_map(_square, list(range(8)), max_workers=4)
        assert serial == pooled

    def test_parallel_shared_matches_serial(self):
        items = list(range(6))
        serial = parallel_map(
            _scale, items, shared={"factor": 3}, max_workers=1
        )
        pooled = parallel_map(
            _scale, items, shared={"factor": 3}, max_workers=3
        )
        assert serial == pooled

    def test_seeded_cells_bit_identical(self):
        seeds = derive_seeds(11, 6)
        serial = parallel_map(_draw, seeds, shared={}, max_workers=1)
        pooled = parallel_map(_draw, seeds, shared={}, max_workers=3)
        assert serial == pooled

    def test_env_activates_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert parallel_map(_square, [2, 3]) == [4, 9]
