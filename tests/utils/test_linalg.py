"""Unit and property tests for the PSD linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import linalg


def random_psd(rng: np.random.Generator, size: int) -> np.ndarray:
    root = rng.standard_normal((size, size + 2))
    return root @ root.T / size


# ---------------------------------------------------------------------------
# cholesky / solves
# ---------------------------------------------------------------------------
class TestCholesky:
    def test_factor_reconstructs_matrix(self):
        rng = np.random.default_rng(0)
        matrix = random_psd(rng, 5)
        factor = linalg.cholesky_factor(matrix)
        assert np.allclose(factor @ factor.T, matrix, atol=1e-10)

    def test_factor_is_lower_triangular(self):
        matrix = random_psd(np.random.default_rng(1), 4)
        factor = linalg.cholesky_factor(matrix)
        assert np.allclose(factor, np.tril(factor))

    def test_semi_definite_gets_jitter(self):
        # Rank-1 PSD matrix: plain Cholesky fails, jitter ladder succeeds.
        v = np.array([1.0, 2.0, 3.0])
        matrix = np.outer(v, v)
        factor = linalg.cholesky_factor(matrix)
        assert np.allclose(factor @ factor.T, matrix, atol=1e-6)

    def test_indefinite_matrix_raises(self):
        matrix = np.diag([1.0, -1.0])
        with pytest.raises(np.linalg.LinAlgError):
            linalg.cholesky_factor(matrix)

    def test_indefinite_raises_numerical_error(self):
        """Ladder exhaustion raises the taxonomy type, not a bare
        LinAlgError — and the old ``except np.linalg.LinAlgError``
        handlers still catch it (tested above)."""
        from repro.errors import NumericalError, ReproError

        with pytest.raises(NumericalError, match="not positive definite"):
            linalg.cholesky_factor(np.diag([1.0, -1.0]))
        with pytest.raises(ReproError):
            linalg.cholesky_factor(np.diag([1.0, -1.0]))

    def test_jitter_scales_with_diagonal(self):
        """The ladder is relative: a rank-1 matrix is repaired at any
        magnitude, which an absolute jitter could not do."""
        v = np.array([1.0, 2.0, 3.0])
        for scale in (1e-6, 1.0, 1e8):
            matrix = scale * np.outer(v, v)
            factor = linalg.cholesky_factor(matrix)
            assert np.allclose(
                factor @ factor.T, matrix, rtol=1e-5, atol=1e-8 * scale
            )

    def test_inv_from_cholesky_matches_inv_psd(self):
        matrix = random_psd(np.random.default_rng(12), 5)
        factor = linalg.cholesky_factor(matrix)
        assert np.allclose(
            linalg.inv_from_cholesky(factor.copy()),
            linalg.inv_psd(matrix),
            atol=1e-10,
        )

    def test_solve_psd_matches_numpy(self):
        rng = np.random.default_rng(2)
        matrix = random_psd(rng, 6)
        rhs = rng.standard_normal(6)
        assert np.allclose(
            linalg.solve_psd(matrix, rhs), np.linalg.solve(matrix, rhs)
        )

    def test_solve_psd_matrix_rhs(self):
        rng = np.random.default_rng(3)
        matrix = random_psd(rng, 5)
        rhs = rng.standard_normal((5, 3))
        assert np.allclose(
            linalg.solve_psd(matrix, rhs), np.linalg.solve(matrix, rhs)
        )

    def test_inv_psd(self):
        matrix = random_psd(np.random.default_rng(4), 5)
        assert np.allclose(
            linalg.inv_psd(matrix) @ matrix, np.eye(5), atol=1e-9
        )

    def test_log_det_psd(self):
        matrix = random_psd(np.random.default_rng(5), 6)
        sign, expected = np.linalg.slogdet(matrix)
        assert sign > 0
        assert linalg.log_det_psd(matrix) == pytest.approx(expected)


# ---------------------------------------------------------------------------
# PSD checks / projection
# ---------------------------------------------------------------------------
class TestPsd:
    def test_is_psd_true(self):
        assert linalg.is_psd(random_psd(np.random.default_rng(6), 4))

    def test_is_psd_false(self):
        assert not linalg.is_psd(np.diag([1.0, -0.5]))

    def test_nearest_psd_identity_on_psd(self):
        matrix = random_psd(np.random.default_rng(7), 4)
        assert np.allclose(linalg.nearest_psd(matrix), matrix, atol=1e-10)

    def test_nearest_psd_clips_negative_eigenvalues(self):
        matrix = np.diag([2.0, -1.0])
        projected = linalg.nearest_psd(matrix)
        assert linalg.is_psd(projected)
        assert projected[0, 0] == pytest.approx(2.0)
        assert projected[1, 1] == pytest.approx(0.0)

    def test_nearest_psd_floor(self):
        matrix = np.diag([2.0, 1e-12])
        projected = linalg.nearest_psd(matrix, floor=0.5)
        assert np.linalg.eigvalsh(projected).min() >= 0.5 - 1e-12

    def test_symmetrize(self):
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        sym = linalg.symmetrize(matrix)
        assert np.allclose(sym, sym.T)
        assert sym[0, 1] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# woodbury / quadratic form
# ---------------------------------------------------------------------------
class TestWoodbury:
    def test_matches_direct_inverse(self):
        rng = np.random.default_rng(8)
        n, p = 12, 4
        design = rng.standard_normal((n, p))
        prior = random_psd(rng, p)
        prior_chol = np.linalg.cholesky(prior)
        rhs = rng.standard_normal(n)
        noise = 0.3
        direct = np.linalg.solve(
            noise * np.eye(n) + design @ prior @ design.T, rhs
        )
        via = linalg.woodbury_inverse_apply(noise, design, prior_chol, rhs)
        assert np.allclose(via, direct, atol=1e-10)

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError, match="noise_var"):
            linalg.woodbury_inverse_apply(
                0.0, np.eye(2), np.eye(2), np.ones(2)
            )

    def test_quadratic_form(self):
        rng = np.random.default_rng(9)
        matrix = random_psd(rng, 5)
        vector = rng.standard_normal(5)
        expected = vector @ np.linalg.solve(matrix, vector)
        assert linalg.quadratic_form(matrix, vector) == pytest.approx(expected)


class TestSplitBlocks:
    def test_splits_diagonal_blocks(self):
        matrix = np.arange(36.0).reshape(6, 6)
        blocks = linalg.split_blocks(matrix, 2)
        assert len(blocks) == 3
        assert np.allclose(blocks[1], matrix[2:4, 2:4])

    def test_rejects_mismatched_block(self):
        with pytest.raises(ValueError, match="multiple"):
            linalg.split_blocks(np.eye(5), 2)


# ---------------------------------------------------------------------------
# hypothesis properties
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(1, 8))
def test_property_solve_roundtrip(seed, size):
    """A x = b then x reconstructs b for random PSD A."""
    rng = np.random.default_rng(seed)
    matrix = random_psd(rng, size) + 0.1 * np.eye(size)
    rhs = rng.standard_normal(size)
    solution = linalg.solve_psd(matrix, rhs)
    assert np.allclose(matrix @ solution, rhs, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(2, 8))
def test_property_nearest_psd_is_psd_and_idempotent(seed, size):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((size, size))
    projected = linalg.nearest_psd(matrix)
    assert linalg.is_psd(projected, tol=1e-8)
    again = linalg.nearest_psd(projected)
    assert np.allclose(projected, again, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_logdet_additive_under_scaling(seed):
    """log det(cA) = n log c + log det A."""
    rng = np.random.default_rng(seed)
    matrix = random_psd(rng, 4) + 0.5 * np.eye(4)
    scale = 2.5
    assert linalg.log_det_psd(scale * matrix) == pytest.approx(
        4 * np.log(scale) + linalg.log_det_psd(matrix), rel=1e-9
    )
