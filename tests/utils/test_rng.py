"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = as_generator(42).standard_normal(4)
        b = as_generator(42).standard_normal(4)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed"):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        children = spawn_generators(7, 3)
        draws = [g.standard_normal(8) for g in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_same_seed(self):
        a = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        b = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        for x, y in zip(a, b):
            assert np.allclose(x, y)

    def test_prefix_stability(self):
        """The first children do not depend on how many are spawned."""
        two = [g.standard_normal(4) for g in spawn_generators(11, 2)]
        five = [g.standard_normal(4) for g in spawn_generators(11, 5)]
        assert np.allclose(two[0], five[0])
        assert np.allclose(two[1], five[1])
