"""Unit tests for correlation-shared shrinkage (the K×K GLS core)."""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.yields.shrinkage import (
    binomial_moments,
    correlation_shrink,
    independent_intervals,
)


def ar1(n, rho):
    idx = np.arange(n)
    return rho ** np.abs(idx[:, None] - idx[None, :])


class TestBinomialMoments:
    def test_raw_fraction(self):
        raw, _ = binomial_moments(np.array([0.0, 5.0, 10.0]), 10)
        assert raw.tolist() == [0.0, 0.5, 1.0]

    def test_variance_strictly_positive_at_edges(self):
        _, var = binomial_moments(np.array([0.0, 10.0]), 10)
        assert np.all(var > 0.0)

    def test_variance_shrinks_with_budget(self):
        _, small = binomial_moments(np.array([5.0]), 10)
        _, large = binomial_moments(np.array([500.0]), 1000)
        assert large[0] < small[0]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_samples"):
            binomial_moments(np.array([0.0]), 0)
        with pytest.raises(ValueError, match="lie in"):
            binomial_moments(np.array([11.0]), 10)
        with pytest.raises(ValueError, match="lie in"):
            binomial_moments(np.array([-1.0]), 10)


class TestIndependentIntervals:
    def test_shrunk_equals_raw(self):
        raw = np.array([0.2, 0.5, 0.9])
        result = independent_intervals(raw, np.full(3, 0.01))
        assert np.array_equal(result.shrunk, raw)
        assert np.isnan(result.tau2)

    def test_interval_centred_on_raw(self):
        raw = np.array([0.5])
        result = independent_intervals(raw, np.array([0.04]), confidence=0.95)
        assert result.ci_lower[0] == pytest.approx(0.5 - 1.96 * 0.2, abs=1e-3)
        assert result.ci_upper[0] == pytest.approx(0.5 + 1.96 * 0.2, abs=1e-3)

    def test_clip(self):
        result = independent_intervals(
            np.array([0.01, 0.99]), np.full(2, 0.04), clip=(0.0, 1.0)
        )
        assert np.all(result.ci_lower >= 0.0)
        assert np.all(result.ci_upper <= 1.0)

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError, match="non-negative"):
            independent_intervals(np.zeros(2), np.array([0.1, -0.1]))

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            independent_intervals(np.zeros(2), np.ones(2), confidence=1.5)


class TestCorrelationShrink:
    def test_shapes_and_interval_ordering(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(0.5, 0.1, 20)
        result = correlation_shrink(raw, np.full(20, 0.01), ar1(20, 0.9))
        for arr in (result.shrunk, result.ci_lower, result.ci_upper,
                    result.posterior_variance):
            assert arr.shape == (20,)
        assert np.all(result.ci_lower <= result.shrunk + 1e-12)
        assert np.all(result.shrunk <= result.ci_upper + 1e-12)
        assert np.all(np.isfinite(result.shrunk))

    def test_pulls_noisy_outlier_toward_neighbours(self):
        """A state whose raw estimate sits far from its highly-correlated
        neighbours moves toward them; the others barely move."""
        raw = np.array([0.5, 0.5, 0.9, 0.5, 0.5])
        result = correlation_shrink(
            raw, np.full(5, 0.02), ar1(5, 0.95)
        )
        assert result.shrunk[2] < raw[2]
        assert result.shrunk[2] > raw.mean()

    def test_tight_budget_barely_moves(self):
        """Tiny sampling variance ⇒ the data dominates the prior."""
        raw = np.array([0.2, 0.8, 0.4, 0.6])
        result = correlation_shrink(raw, np.full(4, 1e-8), ar1(4, 0.9))
        assert np.allclose(result.shrunk, raw, atol=1e-3)

    def test_pure_noise_pools_completely(self):
        """When the raw spread is explained by sampling noise alone the
        method-of-moments τ̂² floors at 0 and every state collapses onto
        the fleet mean."""
        raw = np.array([0.5, 0.5, 0.5, 0.5])
        result = correlation_shrink(raw, np.full(4, 0.05), ar1(4, 0.9))
        assert np.allclose(result.shrunk, result.fleet_mean, atol=1e-6)

    def test_identity_correlation_degenerate_denominator(self):
        """R̃ = 11ᵀ makes the centred trace vanish — the guard must take
        the τ²=0 branch instead of dividing by ~0."""
        correlation = np.ones((4, 4))
        result = correlation_shrink(
            np.array([0.1, 0.9, 0.3, 0.7]), np.full(4, 0.01), correlation
        )
        assert result.tau2 == 0.0
        assert np.all(np.isfinite(result.shrunk))

    def test_clip_bounds_everything(self):
        raw = np.array([0.01, 0.02, 0.99, 0.98])
        result = correlation_shrink(
            raw, np.full(4, 0.03), ar1(4, 0.5), clip=(0.0, 1.0)
        )
        for arr in (result.shrunk, result.ci_lower, result.ci_upper):
            assert np.all((0.0 <= arr) & (arr <= 1.0))

    def test_posterior_variance_below_prior_scale(self):
        """Conditioning on data cannot inflate the prior variance."""
        rng = np.random.default_rng(3)
        raw = rng.normal(0.5, 0.2, 30)
        result = correlation_shrink(raw, np.full(30, 0.01), ar1(30, 0.8))
        prior_scale = result.tau2 + 1.0 / np.sum(
            1.0 / (result.tau2 + result.raw_variance)
        )
        assert np.all(result.posterior_variance <= prior_scale + 1e-9)

    def test_rejects_nonpositive_variances(self):
        with pytest.raises(ValueError, match="strictly positive"):
            correlation_shrink(np.zeros(3), np.zeros(3), ar1(3, 0.5))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            correlation_shrink(np.zeros(3), np.ones(3), ar1(4, 0.5))

    def test_indefinite_correlation_raises_numerical_error(self):
        """An indefinite matrix (eigenvalue −0.8) with real between-state
        spread exhausts the jitter ladder loudly instead of silently
        producing a bogus posterior."""
        bad = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        with pytest.raises(NumericalError, match="positive definite"):
            correlation_shrink(
                np.array([0.0, 1.0, 0.0]), np.full(3, 1e-6), bad
            )

    def test_asymmetric_correlation_symmetrised(self):
        correlation = ar1(5, 0.8)
        correlation[0, 4] += 0.05  # slight asymmetry, as a real fit has
        raw = np.linspace(0.2, 0.8, 5)
        result = correlation_shrink(raw, np.full(5, 0.01), correlation)
        assert np.all(np.isfinite(result.shrunk))
