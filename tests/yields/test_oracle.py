"""Statistical-oracle tests: shrinkage vs synthetic populations.

The oracle is exact by construction — Gaussian per-state truths drawn
from the very model family the shrinkage assumes (and a binomial yield
variant that only *approximately* matches it). Acceptance: at equal
sampling budget the correlation-shared estimator beats the independent
one in paired, seeded replicates, and its confidence intervals hit
nominal coverage within binomial tolerance.
"""

import numpy as np
import pytest

from repro.applications.yield_estimation import Specification
from repro.basis.polynomial import LinearBasis
from repro.core.frozen import FrozenModel
from repro.yields import (
    binomial_moments,
    compute_yield_report,
    correlation_shrink,
)


def ar1(n, rho):
    idx = np.arange(n)
    return rho ** np.abs(idx[:, None] - idx[None, :])


def draw_population(rng, correlation, mu, tau):
    """One fleet truth y ~ N(μ·1, τ²·R) via the Cholesky factor."""
    chol = np.linalg.cholesky(
        correlation + 1e-12 * np.eye(correlation.shape[0])
    )
    return mu + tau * (chol @ rng.standard_normal(correlation.shape[0]))


class TestGaussianOracle:
    """Truths drawn from the assumed model: the cleanest win condition."""

    @pytest.mark.parametrize("rho", [0.5, 0.9, 0.99])
    def test_shrunk_beats_independent_rmse_paired(self, rho):
        """Paired over seeded replicates: same truth, same noisy draws
        for both estimators — the only difference is the sharing."""
        n_states, n_reps = 30, 80
        correlation = ar1(n_states, rho)
        noise_sd = 0.08
        variances = np.full(n_states, noise_sd**2)
        rng = np.random.default_rng(20160607)
        sq_err_raw = sq_err_shrunk = 0.0
        wins = 0
        for _ in range(n_reps):
            truth = draw_population(rng, correlation, mu=0.5, tau=0.1)
            raw = truth + noise_sd * rng.standard_normal(n_states)
            result = correlation_shrink(raw, variances, correlation)
            err_raw = float(np.sum((raw - truth) ** 2))
            err_shrunk = float(np.sum((result.shrunk - truth) ** 2))
            sq_err_raw += err_raw
            sq_err_shrunk += err_shrunk
            wins += int(err_shrunk < err_raw)
        assert sq_err_shrunk < sq_err_raw
        assert wins >= n_reps // 2

    @pytest.mark.parametrize("rho", [0.5, 0.9, 0.99])
    def test_ci_coverage_within_binomial_tolerance(self, rho):
        """95% nominal → empirical coverage must stay above the 3σ
        binomial lower bound; the deliberate τ̂² inflation makes the
        intervals conservative, so no upper bound is enforced."""
        n_states, n_reps, confidence = 30, 60, 0.95
        correlation = ar1(n_states, rho)
        noise_sd = 0.06
        variances = np.full(n_states, noise_sd**2)
        rng = np.random.default_rng(42)
        covered = total = 0
        for _ in range(n_reps):
            truth = draw_population(rng, correlation, mu=0.5, tau=0.08)
            raw = truth + noise_sd * rng.standard_normal(n_states)
            result = correlation_shrink(
                raw, variances, correlation, confidence=confidence
            )
            covered += int(np.sum(
                (result.ci_lower <= truth) & (truth <= result.ci_upper)
            ))
            total += n_states
        three_sigma = 3.0 * np.sqrt(confidence * (1 - confidence) / total)
        assert covered / total >= confidence - three_sigma

    def test_independent_intervals_also_cover(self):
        """The fallback path has exact normal-theory coverage — the
        oracle validates both reporting modes."""
        from repro.yields import independent_intervals

        n_states, n_reps = 40, 60
        noise_sd = 0.05
        variances = np.full(n_states, noise_sd**2)
        rng = np.random.default_rng(7)
        covered = total = 0
        for _ in range(n_reps):
            truth = rng.normal(0.5, 0.1, n_states)
            raw = truth + noise_sd * rng.standard_normal(n_states)
            result = independent_intervals(raw, variances)
            covered += int(np.sum(
                (result.ci_lower <= truth) & (truth <= result.ci_upper)
            ))
            total += n_states
        three_sigma = 3.0 * np.sqrt(0.95 * 0.05 / total)
        assert abs(covered / total - 0.95) <= three_sigma


class TestBinomialYieldOracle:
    """Yield variant: binomial pass counts over correlated true yields —
    the moments only approximately match the Gaussian model, which is
    exactly the regime the service runs in."""

    def test_shrunk_beats_independent_yield_rmse(self):
        from scipy.stats import norm

        n_states, n_reps, budget = 40, 50, 150
        correlation = ar1(n_states, 0.93)
        rng = np.random.default_rng(99)
        sq_err_raw = sq_err_shrunk = 0.0
        for _ in range(n_reps):
            latent = draw_population(rng, correlation, mu=0.3, tau=0.35)
            true_yield = norm.cdf(latent)
            successes = rng.binomial(budget, true_yield).astype(float)
            raw, variances = binomial_moments(successes, budget)
            result = correlation_shrink(
                raw, variances, correlation, clip=(0.0, 1.0)
            )
            sq_err_raw += float(np.sum((raw - true_yield) ** 2))
            sq_err_shrunk += float(
                np.sum((result.shrunk - true_yield) ** 2)
            )
        assert sq_err_shrunk < sq_err_raw

    def test_yield_ci_coverage(self):
        from scipy.stats import norm

        n_states, n_reps, budget = 40, 40, 150
        correlation = ar1(n_states, 0.93)
        rng = np.random.default_rng(123)
        covered = total = 0
        for _ in range(n_reps):
            latent = draw_population(rng, correlation, mu=0.3, tau=0.35)
            true_yield = norm.cdf(latent)
            successes = rng.binomial(budget, true_yield).astype(float)
            raw, variances = binomial_moments(successes, budget)
            result = correlation_shrink(
                raw, variances, correlation, clip=(0.0, 1.0)
            )
            covered += int(np.sum(
                (result.ci_lower <= true_yield)
                & (true_yield <= result.ci_upper)
            ))
            total += n_states
        three_sigma = 3.0 * np.sqrt(0.95 * 0.05 / total)
        # The Gaussian model is misspecified for binomial tails, so allow
        # one extra σ of slack below nominal.
        assert covered / total >= 0.95 - three_sigma - 0.017


class TestFittedModelShapes:
    """The oracle must hold on real model artifacts, not just vectors:
    random K/M shapes, pruned (zero) columns, and a genuinely
    Kronecker-fitted C-BMF model."""

    @pytest.mark.parametrize("n_states,n_variables", [(3, 6), (17, 2),
                                                      (41, 9)])
    def test_random_shapes_with_pruned_columns(self, n_states, n_variables):
        rng = np.random.default_rng(n_states)
        basis = LinearBasis(n_variables)
        coef = np.zeros((n_states, basis.n_basis))
        coef[:, 0] = rng.normal(1.0, 0.1, n_states)
        keep = rng.choice(
            np.arange(1, basis.n_basis),
            size=max(1, n_variables // 2),
            replace=False,
        )
        coef[:, keep] = rng.normal(0.0, 0.5, (n_states, keep.size))
        models = {
            "m": FrozenModel(
                coef=coef, metric="m", correlation=ar1(n_states, 0.9)
            )
        }
        report = compute_yield_report(
            models, basis, [Specification("m", 1.0, "min")], n_samples=150
        )
        assert report.correlation_shared
        assert report.yield_shrunk.shape == (n_states,)
        assert np.all(report.yield_ci_lower <= report.yield_ci_upper)
        assert np.all(np.isfinite(report.yield_shrunk))

    def test_kronecker_fitted_model(self, tmp_path):
        """A state-balanced shared-sample sweep fit takes the Kronecker
        solver; its frozen artifact must feed the oracle end-to-end with
        the learned correlation attached."""
        from repro.core.cbmf import CBMF
        from repro.core.em import EmConfig
        from repro.core.somp_init import InitConfig
        from repro.modelset import PerformanceModelSet
        from repro.paper import simulate_sweep

        train = simulate_sweep(
            n_points=24, n_samples_per_state=8, seed=11,
            cache_dir=tmp_path,
        )
        basis = LinearBasis(train.n_variables)
        designs = basis.expand_states(train.inputs())
        model = CBMF(
            init_config=InitConfig(
                r0_grid=(0.9,), sigma0_grid=(0.15,), n_basis_grid=(10,),
                n_folds=2,
            ),
            em_config=EmConfig(max_iterations=5),
            seed=11,
        ).fit(designs, train.targets("s21_db"))
        assert model.predictor.solver == "kron"
        frozen = PerformanceModelSet(
            {"s21_db": model}, basis
        ).freeze()
        assert frozen["s21_db"].correlation_ is not None
        report = compute_yield_report(
            frozen,
            basis,
            [Specification("s21_db", 15.0, "min")],
            n_samples=200,
        )
        assert report.correlation_shared
        assert report.n_states == 24
        assert np.isfinite(report.tau2)
        assert np.all(
            (0.0 <= report.yield_shrunk) & (report.yield_shrunk <= 1.0)
        )
