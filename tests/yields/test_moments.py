"""Unit tests for the per-state sampling half of the yield service."""

import numpy as np
import pytest

from repro.applications.yield_estimation import Specification
from repro.basis.polynomial import LinearBasis
from repro.core.frozen import FrozenModel
from repro.errors import NumericalError
from repro.yields.moments import (
    model_correlation,
    sample_state_estimates,
    state_sample_rng,
)


def ar1(n, rho):
    idx = np.arange(n)
    return rho ** np.abs(idx[:, None] - idx[None, :])


def linear_models(n_states=5, n_variables=4, seed=0, correlation=None):
    """Frozen linear models: metric value = α0 + wᵀx, exactly Gaussian."""
    rng = np.random.default_rng(seed)
    basis = LinearBasis(n_variables)
    models = {}
    for metric in ("a", "b"):
        coef = rng.normal(0.0, 0.5, (n_states, basis.n_basis))
        coef[:, 0] = rng.normal(1.0, 0.2, n_states)
        models[metric] = FrozenModel(
            coef=coef, metric=metric, correlation=correlation
        )
    return models, basis


class TestStateSampleRng:
    def test_deterministic(self):
        a = state_sample_rng(7, 3).standard_normal(5)
        b = state_sample_rng(7, 3).standard_normal(5)
        assert np.array_equal(a, b)

    def test_states_draw_distinct_streams(self):
        a = state_sample_rng(7, 0).standard_normal(5)
        b = state_sample_rng(7, 1).standard_normal(5)
        assert not np.array_equal(a, b)


class TestModelCorrelation:
    def test_frozen_attribute_wins(self):
        models, _ = linear_models(correlation=ar1(5, 0.9))
        correlation = model_correlation(models)
        assert correlation is not None
        assert np.allclose(correlation, ar1(5, 0.9))

    def test_none_when_absent(self):
        models, _ = linear_models()
        assert model_correlation(models) is None

    def test_live_estimator_prior(self):
        class FakePrior:
            correlation = ar1(3, 0.5)

        class FakeModel:
            prior_ = FakePrior()

        assert np.allclose(
            model_correlation({"m": FakeModel()}), ar1(3, 0.5)
        )

    def test_first_by_sorted_metric_name(self):
        models, _ = linear_models(correlation=ar1(5, 0.9))
        other, _ = linear_models(correlation=ar1(5, 0.2))
        mixed = {"z": other["a"], "a": models["a"]}
        assert np.allclose(model_correlation(mixed), ar1(5, 0.9))


class TestSampleStateEstimates:
    def test_shapes_and_ranges(self):
        models, basis = linear_models()
        specs = [Specification("a", 1.0, "max")]
        est = sample_state_estimates(models, basis, specs, n_samples=200)
        assert est.yields.shape == (5,)
        assert np.all((0.0 <= est.yields) & (est.yields <= 1.0))
        assert np.all(est.yield_variances > 0.0)
        for metric in ("a", "b"):
            assert est.means[metric].shape == (5,)
            assert np.all(est.stds[metric] > 0.0)
            assert np.allclose(
                est.mean_variances[metric],
                est.stds[metric] ** 2 / 200,
            )

    def test_deterministic_across_calls(self):
        models, basis = linear_models()
        specs = [Specification("a", 1.0, "max")]
        one = sample_state_estimates(models, basis, specs, seed=9)
        two = sample_state_estimates(models, basis, specs, seed=9)
        assert np.array_equal(one.yields, two.yields)
        assert np.array_equal(one.means["b"], two.means["b"])

    def test_seed_changes_the_draw(self):
        models, basis = linear_models()
        specs = [Specification("a", 1.0, "max")]
        one = sample_state_estimates(models, basis, specs, seed=1)
        two = sample_state_estimates(models, basis, specs, seed=2)
        assert not np.array_equal(one.means["a"], two.means["a"])

    def test_states_subset_nans_the_rest(self):
        models, basis = linear_models()
        specs = [Specification("a", 1.0, "max")]
        est = sample_state_estimates(
            models, basis, specs, n_samples=100, states=[1, 3]
        )
        assert np.all(np.isfinite(est.yields[[1, 3]]))
        assert np.all(np.isnan(est.yields[[0, 2, 4]]))
        assert np.all(np.isnan(est.means["a"][[0, 2, 4]]))

    def test_subset_matches_full_run_on_shared_states(self):
        """Per-state streams are independent, so a subset run reproduces
        the full run's numbers for the states it covers."""
        models, basis = linear_models()
        specs = [Specification("b", 1.5, "max")]
        full = sample_state_estimates(models, basis, specs, seed=4)
        part = sample_state_estimates(
            models, basis, specs, seed=4, states=[2]
        )
        assert part.yields[2] == full.yields[2]
        assert part.means["b"][2] == full.means["b"][2]

    def test_validation_errors(self):
        models, basis = linear_models()
        specs = [Specification("a", 1.0, "max")]
        with pytest.raises(ValueError, match="at least one metric"):
            sample_state_estimates({}, basis, specs)
        with pytest.raises(ValueError, match="at least one spec"):
            sample_state_estimates(models, basis, [])
        with pytest.raises(KeyError, match="no model"):
            sample_state_estimates(
                models, basis, [Specification("zzz", 1.0, "max")]
            )
        with pytest.raises(IndexError, match="out of range"):
            sample_state_estimates(models, basis, specs, states=[99])
        with pytest.raises(ValueError):
            sample_state_estimates(models, basis, specs, n_samples=1)

    def test_nonfinite_prediction_raises(self):
        class NanModel:
            n_states = 2

            def predict(self, design, state):
                return np.full(design.shape[0], np.nan)

        basis = LinearBasis(3)
        with pytest.raises(NumericalError, match="non-finite"):
            sample_state_estimates(
                {"m": NanModel()},
                basis,
                [Specification("m", 1.0, "max")],
                n_samples=10,
            )

    def test_mismatched_state_counts_rejected(self):
        models, basis = linear_models(n_states=5)
        other, _ = linear_models(n_states=3)
        mixed = {"a": models["a"], "b": other["b"]}
        with pytest.raises(ValueError, match="disagree"):
            sample_state_estimates(
                mixed, basis, [Specification("a", 1.0, "max")]
            )
