"""Tests for the yield report: shrinkage plumbing, JSON round-trip."""

import numpy as np
import pytest

from repro.applications.yield_estimation import Specification
from repro.basis.polynomial import LinearBasis
from repro.core.frozen import FrozenModel
from repro.yields import (
    compute_yield_report,
    format_yield_report,
    report_from_dict,
    report_to_dict,
    sample_state_estimates,
)


def ar1(n, rho):
    idx = np.arange(n)
    return rho ** np.abs(idx[:, None] - idx[None, :])


def make_models(n_states=6, n_variables=4, seed=0, correlation=None):
    rng = np.random.default_rng(seed)
    basis = LinearBasis(n_variables)
    models = {}
    for metric in ("gain", "noise"):
        coef = rng.normal(0.0, 0.4, (n_states, basis.n_basis))
        coef[:, 0] = rng.normal(2.0, 0.1, n_states)
        models[metric] = FrozenModel(
            coef=coef, metric=metric, correlation=correlation
        )
    return models, basis


SPECS = [Specification("gain", 2.0, "min"), Specification("noise", 3.0, "max")]


class TestComputeYieldReport:
    def test_shared_report_structure(self):
        models, basis = make_models(correlation=ar1(6, 0.9))
        report = compute_yield_report(models, basis, SPECS, n_samples=300)
        assert report.correlation_shared
        assert report.n_states == 6
        assert np.all((0.0 <= report.yield_shrunk)
                      & (report.yield_shrunk <= 1.0))
        assert np.all(report.yield_ci_lower <= report.yield_ci_upper)
        assert np.all(report.ci_width >= 0.0)
        assert set(report.moments) == {"gain", "noise"}
        assert np.isfinite(report.tau2)

    def test_fallback_without_correlation(self):
        models, basis = make_models()
        report = compute_yield_report(models, basis, SPECS, n_samples=300)
        assert not report.correlation_shared
        assert np.isnan(report.tau2)
        assert np.allclose(
            report.yield_shrunk, np.clip(report.yield_raw, 0.0, 1.0)
        )

    def test_estimates_param_skips_sampling(self):
        """Pre-computed estimates (the benchmark path) give the identical
        report as sampling inside the call."""
        models, basis = make_models(correlation=ar1(6, 0.9))
        estimates = sample_state_estimates(
            models, basis, SPECS, n_samples=300, seed=5
        )
        direct = compute_yield_report(
            models, basis, SPECS, n_samples=300, seed=5
        )
        reused = compute_yield_report(
            models, basis, SPECS, estimates=estimates
        )
        assert np.array_equal(direct.yield_shrunk, reused.yield_shrunk)
        assert direct.fleet_yield == reused.fleet_yield

    def test_deterministic_given_seed(self):
        models, basis = make_models(correlation=ar1(6, 0.9))
        one = compute_yield_report(models, basis, SPECS, seed=3)
        two = compute_yield_report(models, basis, SPECS, seed=3)
        assert np.array_equal(one.yield_shrunk, two.yield_shrunk)

    def test_metric_moments_track_population(self):
        """Shrunk per-state means stay near the analytic population mean
        α0 of each exactly-linear metric."""
        models, basis = make_models(correlation=ar1(6, 0.9), seed=2)
        report = compute_yield_report(models, basis, SPECS, n_samples=2000)
        for metric in ("gain", "noise"):
            truth = models[metric].coef_[:, 0]
            assert np.allclose(
                report.moments[metric].mean_shrunk, truth, atol=0.15
            )


class TestRoundTrip:
    def test_dict_round_trip(self):
        import json

        models, basis = make_models(correlation=ar1(6, 0.9))
        report = compute_yield_report(models, basis, SPECS, n_samples=200)
        payload = json.loads(json.dumps(report_to_dict(report)))
        back = report_from_dict(payload)
        assert back.n_states == report.n_states
        assert back.correlation_shared == report.correlation_shared
        assert np.allclose(back.yield_shrunk, report.yield_shrunk)
        assert np.allclose(back.yield_ci_upper, report.yield_ci_upper)
        assert [s.metric for s in back.specs] == [
            s.metric for s in report.specs
        ]
        assert np.allclose(
            back.moments["gain"].mean_shrunk,
            report.moments["gain"].mean_shrunk,
        )


class TestFormat:
    def test_mentions_sharing_and_worst_state(self):
        models, basis = make_models(correlation=ar1(6, 0.9))
        report = compute_yield_report(models, basis, SPECS, n_samples=200)
        text = format_yield_report(report, max_rows=3)
        assert "correlation-shared" in text
        assert "worst 3 states" in text
        assert "… 3 more states" in text
        worst = int(np.argmin(report.yield_shrunk))
        assert f"state {worst:4d}" in text

    def test_fallback_label(self):
        models, basis = make_models()
        report = compute_yield_report(models, basis, SPECS, n_samples=200)
        assert "independent" in format_yield_report(report)
