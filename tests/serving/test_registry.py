"""Tests for the versioned on-disk model registry."""

import json

import numpy as np
import pytest

from repro.basis.polynomial import LinearBasis, QuadraticBasis
from repro.core.frozen import FrozenModel
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry, RegistryError
from repro.serving.registry import MANIFEST_NAME, read_model_dir


class TestPush:
    def test_roundtrip(self, registry, served_modelset, lna_dataset):
        entry = registry.push("lna", served_modelset)
        assert entry.key == "lna@v1"
        loaded = registry.load("lna@v1")
        assert isinstance(loaded, PerformanceModelSet)
        assert loaded.metric_names == served_modelset.metric_names
        x = np.random.default_rng(0).standard_normal(
            (5, lna_dataset.n_variables)
        )
        for metric in loaded.metric_names:
            assert np.array_equal(
                loaded.predict(x, 2)[metric],
                served_modelset.predict(x, 2)[metric],
            )

    def test_versions_auto_increment(self, registry, served_modelset):
        assert registry.push("lna", served_modelset).version == 1
        assert registry.push("lna", served_modelset).version == 2
        assert registry.versions("lna") == [1, 2]
        assert registry.latest("lna") == 2

    def test_explicit_version_collision_refused(
        self, registry, served_modelset
    ):
        registry.push("lna", served_modelset, version=3)
        with pytest.raises(RegistryError, match="immutable"):
            registry.push("lna", served_modelset, version=3)

    def test_frozen_model_push(self, registry):
        frozen = FrozenModel(np.arange(12.0).reshape(3, 4), metric="nf_db")
        entry = registry.push("raw", frozen)
        assert entry.kind == "frozen"
        loaded = registry.load("raw")
        assert isinstance(loaded, FrozenModel)
        assert np.array_equal(loaded.coef_, frozen.coef_)

    def test_invalid_name_rejected(self, registry, served_modelset):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.push("bad/name", served_modelset)

    def test_wrong_type_rejected(self, registry):
        with pytest.raises(TypeError, match="PerformanceModelSet"):
            registry.push("x", object())

    def test_extra_metadata_merged_into_manifest(
        self, registry, served_modelset
    ):
        entry = registry.push(
            "lna",
            served_modelset,
            extra={"acquisition": {"strategy": "variance", "rounds": 5}},
        )
        assert entry.manifest["acquisition"] == {
            "strategy": "variance", "rounds": 5
        }
        # and it survives a fresh read from disk
        reread = ModelRegistry(registry.root).entry("lna@v1")
        assert reread.manifest["acquisition"]["rounds"] == 5

    def test_extra_metadata_reserved_keys_rejected(
        self, registry, served_modelset
    ):
        with pytest.raises(RegistryError, match="may not override"):
            registry.push(
                "lna", served_modelset, extra={"kind": "sneaky"}
            )

    def test_manifest_contents(self, pushed, served_modelset):
        manifest = json.loads((pushed.path / MANIFEST_NAME).read_text())
        assert manifest["kind"] == "modelset"
        assert manifest["name"] == "lna"
        assert manifest["version"] == 1
        assert manifest["n_states"] == served_modelset.n_states
        assert manifest["basis"]["type"] == "linear"
        assert sorted(manifest["metrics"]) == sorted(
            served_modelset.metric_names
        )
        assert set(manifest["files"]) == {
            f"{m}.npz" for m in served_modelset.metric_names
        }
        assert "created_at" in manifest


class TestResolve:
    def test_latest_forms(self, registry, served_modelset):
        registry.push("lna", served_modelset)
        registry.push("lna", served_modelset)
        assert registry.resolve("lna") == ("lna", 2)
        assert registry.resolve("lna@latest") == ("lna", 2)
        assert registry.resolve("lna@v1") == ("lna", 1)
        assert registry.resolve("lna@1") == ("lna", 1)

    def test_bad_tag(self, registry):
        with pytest.raises(RegistryError, match="version tag"):
            registry.resolve("lna@vNaN")

    def test_missing_name(self, registry):
        with pytest.raises(RegistryError, match="no versions"):
            registry.latest("ghost")

    def test_missing_version(self, registry, pushed):
        with pytest.raises(RegistryError, match="no entry"):
            registry.entry("lna@v99")


class TestIntegrity:
    def test_checksum_mismatch_rejected(self, registry, pushed):
        victim = next(pushed.path.glob("*.npz"))
        victim.write_bytes(victim.read_bytes() + b"tampered")
        with pytest.raises(RegistryError, match="checksum mismatch"):
            registry.load("lna@v1")

    def test_missing_file_rejected(self, registry, pushed):
        next(pushed.path.glob("*.npz")).unlink()
        with pytest.raises(RegistryError, match="missing"):
            registry.load("lna@v1")

    def test_verify_false_skips_hashing(self, registry, pushed):
        victim = next(pushed.path.glob("*.npz"))
        data = victim.read_bytes()
        # A flipped trailing byte keeps the npz readable only if we
        # re-write a valid archive; just confirm verify=False loads the
        # untouched artifact without complaint.
        victim.write_bytes(data)
        assert registry.load("lna@v1", verify=False) is not None


class TestListing:
    def test_list_models_and_entries(self, registry, served_modelset):
        registry.push("lna", served_modelset)
        registry.push("mixer", served_modelset)
        registry.push("mixer", served_modelset)
        assert registry.list_models() == ["lna", "mixer"]
        keys = [entry.key for entry in registry.list_entries()]
        assert keys == ["lna@v1", "mixer@v1", "mixer@v2"]

    def test_empty_registry(self, registry):
        assert registry.list_models() == []
        assert registry.list_entries() == []


class TestModelDirRouting:
    """save_dir/load_dir route through the registry serialization."""

    def test_save_dir_writes_manifest(self, served_modelset, tmp_path):
        served_modelset.save_dir(tmp_path / "m")
        assert (tmp_path / "m" / MANIFEST_NAME).exists()

    def test_load_dir_without_basis(self, served_modelset, tmp_path):
        served_modelset.save_dir(tmp_path / "m")
        loaded = PerformanceModelSet.load_dir(tmp_path / "m")
        assert loaded.basis.n_variables == served_modelset.basis.n_variables
        assert loaded.metric_names == served_modelset.metric_names

    def test_load_dir_explicit_basis_overrides(
        self, served_modelset, tmp_path
    ):
        served_modelset.save_dir(tmp_path / "m")
        n = served_modelset.basis.n_variables
        with pytest.raises(ValueError):
            # quadratic basis disagrees with the stored coefficient count
            PerformanceModelSet.load_dir(tmp_path / "m", QuadraticBasis(n))

    def test_load_dir_legacy_layout_needs_basis(self, tmp_path):
        FrozenModel(np.ones((2, 4)), metric="nf").save(tmp_path / "nf.npz")
        with pytest.raises(ValueError, match="basis"):
            PerformanceModelSet.load_dir(tmp_path)
        loaded = PerformanceModelSet.load_dir(tmp_path, LinearBasis(3))
        assert loaded.metric_names == ("nf",)

    def test_load_dir_verifies_checksums(self, served_modelset, tmp_path):
        served_modelset.save_dir(tmp_path / "m")
        victim = next((tmp_path / "m").glob("*.npz"))
        victim.write_bytes(victim.read_bytes() + b"x")
        with pytest.raises(RegistryError, match="checksum"):
            PerformanceModelSet.load_dir(tmp_path / "m")

    def test_registry_dir_is_save_dir_compatible(
        self, registry, pushed, served_modelset
    ):
        models, basis, manifest = read_model_dir(pushed.path)
        assert manifest["name"] == "lna"
        assert basis is not None
        loaded = PerformanceModelSet.load_dir(pushed.path)
        assert loaded.metric_names == served_modelset.metric_names
