"""Tests for the ModelService façade: end-to-end serving and hot swap."""

import threading
import time

import numpy as np
import pytest

from repro.core.frozen import FrozenModel
from repro.serving import (
    BatchConfig,
    CacheConfig,
    ModelService,
    PredictionRequest,
    RegistryError,
)


@pytest.fixture()
def service(registry, pushed):
    return ModelService(
        registry,
        batch=BatchConfig(max_batch_size=16, flush_interval=0.001),
    )


class TestLifecycle:
    def test_load_and_serve(self, service, served_modelset, lna_dataset):
        service.load("lna@latest")
        assert service.serving == ["lna"]
        x = np.random.default_rng(0).standard_normal(
            lna_dataset.n_variables
        )
        result = service.predict("lna", x, 3)
        expected = served_modelset.predict_point(x, 3)
        for metric, value in expected.items():
            assert result.values[metric] == pytest.approx(value, abs=1e-12)

    def test_submit_request_object(self, service, lna_dataset):
        service.load("lna")
        x = np.zeros(lna_dataset.n_variables)
        result = service.submit(PredictionRequest(x=x, state=0, model="lna"))
        assert set(result.values) == {"gain_db", "iip3_dbm", "nf_db"}

    def test_alias(self, service, lna_dataset):
        service.load("lna@v1", alias="lna-canary")
        assert service.serving == ["lna-canary"]
        x = np.zeros(lna_dataset.n_variables)
        assert service.predict("lna-canary", x, 0).version == 1

    def test_unknown_name(self, service):
        with pytest.raises(KeyError, match="not being served"):
            service.predict("ghost", np.zeros(3), 0)
        with pytest.raises(KeyError):
            service.unload("ghost")

    def test_unload(self, service):
        service.load("lna")
        service.unload("lna")
        assert service.serving == []

    def test_frozen_entry_without_basis_refused(self, registry):
        registry.push(
            "bare", FrozenModel(np.ones((2, 4)), metric="nf_db")
        )
        service = ModelService(registry)
        with pytest.raises(RegistryError, match="basis"):
            service.load("bare")

    def test_bulk_matches_direct(self, service, served_modelset, lna_dataset):
        service.load("lna")
        rng = np.random.default_rng(1)
        n = 200
        x = rng.standard_normal((n, lna_dataset.n_variables))
        states = rng.integers(0, served_modelset.n_states, n)
        results = service.predict_many("lna", x, states)
        for i in range(n):
            expected = served_modelset.predict_point(x[i], int(states[i]))
            for metric, value in expected.items():
                assert results[i].values[metric] == pytest.approx(
                    value, abs=1e-12
                )
        assert service.metrics.snapshot()["requests"] == n


class TestHotSwap:
    def test_swap_changes_version(self, registry, pushed, served_modelset):
        registry.push("lna", served_modelset)
        service = ModelService(registry)
        service.load("lna@v1")
        assert service.served_model("lna").version == 1
        service.swap("lna@v2")
        assert service.served_model("lna").version == 2
        assert service.metrics.snapshot()["hot_swaps"] == 1

    def test_swap_invalidates_cache(
        self, registry, pushed, served_modelset, lna_dataset
    ):
        registry.push("lna", served_modelset)
        service = ModelService(
            registry,
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
        )
        service.load("lna@v1")
        x = np.zeros(lna_dataset.n_variables)
        service.predict("lna", x, 0)
        service.swap("lna@v2")
        assert service.engine.cache_size == 0
        assert not service.predict("lna", x, 0).cached

    def test_concurrent_swap_never_mixes_versions(
        self, registry, served_modelset, lna_dataset
    ):
        """Under a swap storm every answer is all-old or all-new."""
        # Two versions with deliberately different coefficients: v2's
        # predictions are exactly 1000 + v1's (offset every metric).
        registry.push("lna", served_modelset)
        shifted = {
            metric: FrozenModel(
                frozen.coef_,
                offsets=frozen.offsets_ + 1000.0,
                metric=metric,
            )
            for metric, frozen in served_modelset.freeze().items()
        }
        from repro.modelset import PerformanceModelSet

        registry.push(
            "lna", PerformanceModelSet(shifted, served_modelset.basis)
        )

        service = ModelService(
            registry,
            batch=BatchConfig(max_batch_size=4, flush_interval=0.0005),
            cache=CacheConfig(capacity=0),
        )
        service.load("lna@v1")
        x = np.random.default_rng(2).standard_normal(
            lna_dataset.n_variables
        )
        baseline = {
            metric: value
            for metric, value in served_modelset.predict_point(x, 0).items()
        }

        mixed = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                result = service.predict("lna", x, 0)
                shifts = {
                    metric: result.values[metric] - baseline[metric]
                    for metric in baseline
                }
                all_old = all(
                    abs(shift) < 1e-6 for shift in shifts.values()
                )
                all_new = all(
                    abs(shift - 1000.0) < 1e-6
                    for shift in shifts.values()
                )
                if not (all_old or all_new):
                    mixed.append(shifts)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(15):
            service.swap("lna@v2")
            time.sleep(0.001)
            service.swap("lna@v1")
            time.sleep(0.001)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not mixed, f"mixed-version answers: {mixed[:3]}"
        assert service.metrics.snapshot()["hot_swaps"] == 30
