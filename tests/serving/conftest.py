"""Shared serving-test fixtures: a small fitted model set + registry."""

from __future__ import annotations

import pytest

from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry


@pytest.fixture(scope="session")
def served_modelset(lna_dataset) -> PerformanceModelSet:
    """A fast (S-OMP) model set over every LNA metric, 6 states."""
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture()
def registry(tmp_path) -> ModelRegistry:
    """An empty registry rooted in a fresh temp directory."""
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture()
def pushed(registry, served_modelset):
    """The model set pushed once as ``lna@v1``."""
    return registry.push("lna", served_modelset)
