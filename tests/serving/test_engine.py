"""Tests for the micro-batching prediction engine and its LRU cache."""

import threading

import numpy as np
import pytest

from repro.basis.polynomial import LinearBasis
from repro.core.frozen import FrozenModel
from repro.serving import (
    BatchConfig,
    CacheConfig,
    PredictionEngine,
    ServedModel,
)


def make_served(
    n_states=4, n_variables=6, seed=0, version=1, scale=1.0, name="lna"
):
    """A deterministic two-metric served model on a linear basis."""
    rng = np.random.default_rng(seed)
    basis = LinearBasis(n_variables)
    models = {
        metric: FrozenModel(
            scale * rng.standard_normal((n_states, basis.n_basis)),
            metric=metric,
        )
        for metric in ("nf_db", "gain_db")
    }
    return ServedModel(name, version, basis, models)


def direct(served, x, state):
    """Reference: FrozenModel.predict on the single-row design."""
    design = served.basis.expand(np.asarray(x, dtype=float)[None, :])
    return {
        metric: float(served.predict_design(design, state)[metric][0])
        for metric in served.metric_names
    }


class TestServedModel:
    def test_state_count_consistency(self):
        basis = LinearBasis(3)
        with pytest.raises(ValueError, match="state count"):
            ServedModel(
                "m", 1, basis,
                {
                    "a": FrozenModel(np.ones((2, 4))),
                    "b": FrozenModel(np.ones((3, 4))),
                },
            )

    def test_basis_dimension_checked(self):
        with pytest.raises(ValueError, match="basis"):
            ServedModel(
                "m", 1, LinearBasis(3), {"a": FrozenModel(np.ones((2, 9)))}
            )

    def test_requires_models(self):
        with pytest.raises(ValueError):
            ServedModel("m", 1, LinearBasis(3), {})


class TestSingleRequests:
    def test_matches_direct_prediction(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.standard_normal(6)
            state = int(rng.integers(0, served.n_states))
            result = engine.predict(served, x, state)
            reference = direct(served, x, state)
            for metric, value in reference.items():
                assert result.values[metric] == pytest.approx(
                    value, abs=1e-12
                )
            assert result.version == 1

    def test_wrong_dimension_rejected(self):
        served = make_served()
        engine = PredictionEngine()
        with pytest.raises(ValueError, match="variables"):
            engine.predict(served, np.zeros(5), 0)

    def test_bad_state_rejected(self):
        served = make_served()
        engine = PredictionEngine()
        with pytest.raises(IndexError):
            engine.predict(served, np.zeros(6), 99)

    def test_batch_error_propagates_to_waiter(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        # Sneak past the early request check so the failure happens at
        # flush time, inside the batch computation.
        engine._check_request = lambda served, x, state: np.asarray(
            x, dtype=float
        )
        with pytest.raises(ValueError):
            engine.predict(served, np.zeros(3), 0)


class TestMicroBatching:
    def test_bulk_equals_one_by_one(self):
        served = make_served(seed=3)
        rng = np.random.default_rng(4)
        n = 300
        x = rng.standard_normal((n, 6))
        states = rng.integers(0, served.n_states, n)

        one_by_one = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
            cache=CacheConfig(capacity=0),
        )
        singles = [
            one_by_one.predict(served, x[i], states[i]) for i in range(n)
        ]
        bulk = PredictionEngine(cache=CacheConfig(capacity=0))
        batched = bulk.predict_many(served, x, states)
        for single, many in zip(singles, batched):
            for metric in served.metric_names:
                assert single.values[metric] == pytest.approx(
                    many.values[metric], abs=1e-12
                )

    def test_one_matmul_per_state_group(self):
        served = make_served()
        engine = PredictionEngine(cache=CacheConfig(capacity=0))
        rng = np.random.default_rng(5)
        x = rng.standard_normal((40, 6))
        states = np.repeat(np.arange(4), 10)
        engine.predict_many(served, x, states)
        snapshot = engine.metrics.snapshot()
        assert snapshot["batches"] == 4
        assert snapshot["mean_batch_size"] == 10

    def test_queue_flushes_at_max_batch_size(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=4, flush_interval=30.0)
        )
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 6))
        results = [None] * 4

        def worker(i):
            results[i] = engine.predict(served, x[i], 0)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            # Far below the 30s interval: only the size trigger can
            # have answered these.
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        for i in range(4):
            reference = direct(served, x[i], 0)
            for metric, value in reference.items():
                assert results[i].values[metric] == pytest.approx(
                    value, abs=1e-12
                )
        assert engine.metrics.snapshot()["max_batch_size"] == 4

    def test_identical_inflight_requests_coalesce(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=8, flush_interval=0.05)
        )
        x = np.ones(6)
        results = []
        lock = threading.Lock()

        def worker():
            result = engine.predict(served, x, 1)
            with lock:
                results.append(result)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        values = {r.values["nf_db"] for r in results}
        assert len(values) == 1
        assert engine.metrics.snapshot()["requests"] == 4


class TestCache:
    def test_hit_accounting(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        x = np.linspace(-1.0, 1.0, 6)
        first = engine.predict(served, x, 2)
        second = engine.predict(served, x, 2)
        assert not first.cached
        assert second.cached
        assert second.values == first.values
        snapshot = engine.metrics.snapshot()
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache_misses"] == 1
        assert snapshot["cache_hit_rate"] == 0.5

    def test_distinct_states_are_distinct_entries(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        x = np.zeros(6)
        engine.predict(served, x, 0)
        result = engine.predict(served, x, 1)
        assert not result.cached

    def test_quantization_buckets_close_inputs(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
            cache=CacheConfig(capacity=16, decimals=6),
        )
        x = np.full(6, 0.123456701)
        engine.predict(served, x, 0)
        nudged = engine.predict(served, x + 1e-10, 0)
        assert nudged.cached

    def test_lru_eviction(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
            cache=CacheConfig(capacity=2),
        )
        a, b, c = np.zeros(6), np.ones(6), np.full(6, 2.0)
        engine.predict(served, a, 0)
        engine.predict(served, b, 0)
        engine.predict(served, c, 0)  # evicts a
        assert engine.cache_size == 2
        assert not engine.predict(served, a, 0).cached

    def test_capacity_zero_disables(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
            cache=CacheConfig(capacity=0),
        )
        x = np.zeros(6)
        engine.predict(served, x, 0)
        assert not engine.predict(served, x, 0).cached
        assert engine.cache_size == 0

    def test_bulk_duplicate_rows_served_from_one_computation(self):
        served = make_served()
        engine = PredictionEngine()
        x = np.tile(np.linspace(0.0, 1.0, 6), (5, 1))
        results = engine.predict_many(served, x, [3] * 5)
        assert not results[0].cached
        assert all(result.cached for result in results[1:])
        values = {result.values["gain_db"] for result in results}
        assert len(values) == 1
        assert engine.metrics.snapshot()["batches"] == 1

    def test_invalidate_by_name(self):
        served = make_served()
        other = make_served(version=1, seed=9, name="other")
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        engine.predict(served, np.zeros(6), 0)
        engine.predict(other, np.zeros(6), 0)
        engine.invalidate("lna")
        assert engine.cache_size == 1
        assert not engine.predict(served, np.zeros(6), 0).cached
        assert engine.predict(other, np.zeros(6), 0).cached

    def test_version_qualifies_cache_key(self):
        v1 = make_served(version=1)
        v2 = make_served(version=2, seed=42)
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=0.0)
        )
        x = np.zeros(6)
        r1 = engine.predict(v1, x, 0)
        r2 = engine.predict(v2, x, 0)
        assert not r2.cached
        assert r1.values != r2.values


class TestConfigValidation:
    def test_batch_config(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchConfig(flush_interval=-1.0)

    def test_cache_config(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=-1)


class TestFlushIntervalSemantics:
    """Regression: ``flush_interval=0`` must mean *immediate*, never
    *wait forever* — the old ``flush_interval or None`` coercion
    conflated the falsy 0 with None."""

    def test_wait_timeout_distinguishes_zero_from_none(self):
        assert BatchConfig(flush_interval=None).wait_timeout() is None
        zero = BatchConfig(flush_interval=0).wait_timeout()
        assert zero is not None and 0 < zero < 0.01
        assert BatchConfig(flush_interval=0.5).wait_timeout() == 0.5

    def test_zero_interval_answers_immediately(self):
        import time

        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=64, flush_interval=0.0),
            cache=CacheConfig(capacity=0),
        )
        x = np.zeros(served.basis.n_variables)
        started = time.perf_counter()
        result = engine.predict(served, x, 0)
        assert time.perf_counter() - started < 1.0
        assert result.values == direct(served, x, 0)

    def test_none_interval_waits_for_size_or_explicit_flush(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=2, flush_interval=None),
            cache=CacheConfig(capacity=0),
        )
        x = np.zeros(served.basis.n_variables)
        results = {}

        def request():
            results["value"] = engine.predict(served, x, 0)

        worker = threading.Thread(target=request, daemon=True)
        worker.start()
        worker.join(timeout=0.2)
        assert worker.is_alive()  # parked: no timeout flush with None
        engine.flush()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert results["value"].values == direct(served, x, 0)

    def test_none_interval_size_triggered_flush(self):
        served = make_served()
        engine = PredictionEngine(
            batch=BatchConfig(max_batch_size=1, flush_interval=None),
        )
        x = np.ones(served.basis.n_variables)
        result = engine.predict(served, x, 1)
        assert result.values == direct(served, x, 1)
