"""Tests for the serving telemetry counters."""

import threading

import pytest

from repro.serving import ServingMetrics


class TestCounters:
    def test_request_accounting(self):
        metrics = ServingMetrics()
        metrics.record_request(0.001, cache_hit=False)
        metrics.record_request(0.002, cache_hit=True, count=3)
        assert metrics.requests == 4
        assert metrics.cache_hits == 3
        assert metrics.cache_hit_rate() == 0.75

    def test_batch_accounting(self):
        metrics = ServingMetrics()
        metrics.record_batch(10)
        metrics.record_batch(30)
        snapshot = metrics.snapshot()
        assert snapshot["batches"] == 2
        assert snapshot["batched_rows"] == 40
        assert snapshot["mean_batch_size"] == 20
        assert snapshot["max_batch_size"] == 30

    def test_hot_swaps(self):
        metrics = ServingMetrics()
        metrics.record_hot_swap()
        metrics.record_hot_swap()
        assert metrics.snapshot()["hot_swaps"] == 2

    def test_empty_snapshot(self):
        snapshot = ServingMetrics().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["cache_hit_rate"] == 0.0
        assert snapshot["p50_latency_ms"] is None
        assert snapshot["p95_latency_ms"] is None

    def test_latency_percentiles(self):
        metrics = ServingMetrics()
        for millis in range(1, 101):
            metrics.record_request(millis / 1000.0, cache_hit=False)
        snapshot = metrics.snapshot()
        assert snapshot["p50_latency_ms"] == pytest.approx(50.5, abs=1.0)
        assert snapshot["p95_latency_ms"] == pytest.approx(95.0, abs=1.0)

    def test_latency_window_bounded(self):
        metrics = ServingMetrics(latency_window=10)
        for _ in range(100):
            metrics.record_request(1.0, cache_hit=False)
        assert len(metrics._latencies) == 10
        assert metrics.requests == 100

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ServingMetrics(latency_window=0)

    def test_thread_safety_smoke(self):
        metrics = ServingMetrics()

        def worker():
            for _ in range(1000):
                metrics.record_request(0.001, cache_hit=True)
                metrics.record_batch(2)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 4000
        assert snapshot["batches"] == 4000
