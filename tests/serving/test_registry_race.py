"""Regression tests for the registry push race.

``push`` used to allocate versions by listing existing directories and
writing into ``v(max+1)`` — two concurrent pushes could both observe
``vN`` as the latest and write into the same ``v(N+1)``, silently
interleaving their artifacts. Allocation now happens by atomically
creating the version directory, so racing pushes must mint distinct
versions. The thread test drives the real code path; the stale-claim
tests pin the crash-recovery semantics of the mkdir-claim protocol.
"""

import threading

import numpy as np
import pytest

from repro.core.frozen import FrozenModel
from repro.serving import ModelRegistry, RegistryError


def make_frozen(tag: float) -> FrozenModel:
    """A tiny distinguishable artifact (coef encodes the pusher id)."""
    return FrozenModel(
        coef=np.full((2, 3), tag),
        offsets=np.zeros(2),
        metric="gain",
    )


def test_concurrent_pushes_mint_distinct_versions(tmp_path):
    """N racing auto-increment pushes → versions 1..N, no clobbering."""
    registry = ModelRegistry(tmp_path / "registry")
    n_threads = 8
    barrier = threading.Barrier(n_threads)
    results = {}
    errors = []

    def worker(i: int) -> None:
        try:
            barrier.wait()  # maximize the race window
            entry = registry.push("model", make_frozen(float(i)))
            results[i] = entry.version
        except Exception as error:  # pragma: no cover - failure detail
            errors.append((i, error))

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors
    assert sorted(results.values()) == list(range(1, n_threads + 1))
    assert registry.versions("model") == list(range(1, n_threads + 1))
    # Every version holds exactly the artifact its pusher wrote.
    for pusher, version in results.items():
        loaded = registry.load(f"model@v{version}")
        np.testing.assert_array_equal(
            loaded.coef_, np.full((2, 3), float(pusher))
        )


def test_explicit_version_conflict_raises(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("model", make_frozen(1.0), version=3)
    with pytest.raises(RegistryError, match="immutable"):
        registry.push("model", make_frozen(2.0), version=3)


def test_stale_claim_is_skipped_by_auto_increment(tmp_path):
    """A crashed push leaves a claimed dir with no manifest; the next
    auto-increment push skips past it instead of reusing or crashing."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("model", make_frozen(1.0))
    (registry.root / "model" / "v2").mkdir()  # crashed push's leftovers
    entry = registry.push("model", make_frozen(3.0))
    assert entry.version == 3
    # The stale dir stays invisible to queries.
    assert registry.versions("model") == [1, 3]
    assert registry.latest("model") == 3


def test_stale_claim_blocks_explicit_version(tmp_path):
    """An explicit push into a claimed-but-unmanifested slot is refused:
    it may be a concurrent in-flight push."""
    registry = ModelRegistry(tmp_path / "registry")
    (registry.root / "model" / "v1").mkdir(parents=True)
    with pytest.raises(RegistryError, match="immutable"):
        registry.push("model", make_frozen(1.0), version=1)


def test_invalid_model_still_claims_nothing(tmp_path):
    """Validation failures must not leave stale version directories."""
    registry = ModelRegistry(tmp_path / "registry")
    with pytest.raises(TypeError):
        registry.push("model", object())
    with pytest.raises(RegistryError, match="override"):
        registry.push("model", make_frozen(1.0), extra={"kind": "x"})
    assert not (registry.root / "model").exists() or not any(
        (registry.root / "model").iterdir()
    )
