"""Tests for PerformanceModelSet."""

import numpy as np
import pytest

from repro.applications import Specification, YieldEstimator
from repro.basis.polynomial import LinearBasis
from repro.modelset import PerformanceModelSet


@pytest.fixture(scope="module")
def model_set(lna_dataset):
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


class TestFitDataset:
    def test_all_metrics_fitted(self, model_set, lna_dataset):
        assert set(model_set.metric_names) == set(lna_dataset.metric_names)
        assert model_set.n_states == lna_dataset.n_states

    def test_cbmf_method(self, lna_dataset):
        train, test = lna_dataset.split(12)
        models = PerformanceModelSet.fit_dataset(
            train, method="cbmf", metrics=("nf_db",), seed=0
        )
        x = test.states[0].x
        prediction = models.predict(x, 0)["nf_db"]
        truth = test.states[0].y["nf_db"]
        relative = np.mean(np.abs(prediction - truth)) / np.mean(
            np.abs(truth)
        )
        assert relative < 0.05

    def test_metric_subset(self, lna_dataset):
        train, _ = lna_dataset.split(25)
        subset = PerformanceModelSet.fit_dataset(
            train, method="ridge", metrics=("gain_db",), seed=0
        )
        assert subset.metric_names == ("gain_db",)

    def test_model_lookup(self, model_set):
        assert model_set.model("gain_db").n_states == model_set.n_states
        with pytest.raises(KeyError):
            model_set.model("zzz")

    def test_state_count_consistency_enforced(self):
        from repro.core.frozen import FrozenModel

        basis = LinearBasis(3)
        with pytest.raises(ValueError, match="state count"):
            PerformanceModelSet(
                {
                    "a": FrozenModel(np.ones((2, 4))),
                    "b": FrozenModel(np.ones((3, 4))),
                },
                basis,
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PerformanceModelSet({}, LinearBasis(3))


class TestPredict:
    def test_predict_matrix(self, model_set, lna_dataset):
        x = np.random.default_rng(0).standard_normal(
            (5, lna_dataset.n_variables)
        )
        out = model_set.predict(x, state=1)
        assert set(out) == set(model_set.metric_names)
        for values in out.values():
            assert values.shape == (5,)

    def test_predict_point(self, model_set, lna_dataset):
        x = np.zeros(lna_dataset.n_variables)
        out = model_set.predict_point(x, state=0)
        assert all(isinstance(v, float) for v in out.values())
        # At the typical corner the prediction approximates the nominal.
        assert 10.0 < out["gain_db"] < 35.0

    def test_predict_matches_underlying_model(self, model_set, lna_dataset):
        x = np.random.default_rng(1).standard_normal(
            (3, lna_dataset.n_variables)
        )
        design = model_set.basis.expand(x)
        direct = model_set.model("nf_db").predict(design, 2)
        via_set = model_set.predict(x, 2)["nf_db"]
        assert np.allclose(direct, via_set)

    def test_feeds_yield_estimator(self, model_set):
        estimator = YieldEstimator(model_set.as_mapping(), model_set.basis)
        yields = estimator.state_yields(
            [Specification("nf_db", 2.0, "max")], n_samples=500, seed=0
        )
        assert yields.shape == (model_set.n_states,)


class TestFreezeRoundtrip:
    def test_save_load_dir(self, model_set, lna_dataset, tmp_path):
        model_set.save_dir(tmp_path)
        files = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert files == sorted(
            f"{m}.npz" for m in lna_dataset.metric_names
        )
        loaded = PerformanceModelSet.load_dir(
            tmp_path, LinearBasis(lna_dataset.n_variables)
        )
        x = np.random.default_rng(2).standard_normal(
            (4, lna_dataset.n_variables)
        )
        for metric in model_set.metric_names:
            assert np.allclose(
                loaded.predict(x, 0)[metric],
                model_set.predict(x, 0)[metric],
            )

    def test_load_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PerformanceModelSet.load_dir(tmp_path, LinearBasis(3))
