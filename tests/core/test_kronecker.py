"""The Kronecker posterior solver vs the dense oracle and the dual path.

State-balanced designs (one shared B across all states) admit the
eigendecomposition fast path of ``repro.core.kronecker``. These tests pin

* exact parity of every posterior statistic against the literal-textbook
  ``compute_posterior_dense`` oracle on random balanced shapes, including
  zero prior scales and pruned-column (``restrict``) solves;
* parity against the dual-space path, which has its own oracle pinning;
* the auto-dispatch policy (balance + size + ``REPRO_POSTERIOR_SOLVER``);
* the memory contract: the fast path never materializes the MK × MK
  prior ``A``, the NK × NK kernel ``C`` or the (M, K, K) block tensor;
* the factored M-step statistics the EM consumes, and full-EM parity
  between the two solvers;
* the greedy ``KroneckerBayesSolver`` against the Woodbury-incremental
  solver it replaces on balanced CV splits.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kronecker import (
    KRON_MIN_STATES,
    compute_posterior_kron,
    kron_applicable,
    resolve_solver_mode,
)
from repro.core.multistate import MultiStateData
from repro.core.posterior import (
    compute_posterior,
    compute_posterior_dense,
)
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.core.somp_init import (
    IncrementalBayesSolver,
    KroneckerBayesSolver,
)
from repro.errors import NumericalError

RTOL = 1e-8


def make_balanced(
    seed, n_states, n_basis, n_per, r0, noise_var, n_zero_lambdas=0
):
    """A state-balanced problem: one design shared by every state."""
    rng = np.random.default_rng(seed)
    design = rng.standard_normal((n_per, n_basis))
    designs = [design] * n_states
    targets = [rng.standard_normal(n_per) for _ in range(n_states)]
    lambdas = rng.uniform(0.05, 2.0, n_basis)
    if n_zero_lambdas:
        off = rng.choice(n_basis, size=n_zero_lambdas, replace=False)
        lambdas[off] = 0.0
    prior = CorrelatedPrior(
        lambdas=lambdas, correlation=ar1_correlation(n_states, r0)
    )
    return designs, targets, prior


def assert_matches_dense(kron_result, dense, rtol=RTOL):
    """Every statistic of the Kronecker result vs the dense oracle."""
    mean_scale = float(np.abs(dense.mean).max(initial=1e-12))
    np.testing.assert_allclose(
        kron_result.mean, dense.mean, rtol=rtol, atol=rtol * mean_scale
    )
    block_scale = float(np.abs(dense.sigma_blocks).max(initial=1e-12))
    np.testing.assert_allclose(
        kron_result.covariance_blocks(),
        dense.sigma_blocks,
        rtol=rtol,
        atol=rtol * block_scale,
    )
    np.testing.assert_allclose(
        kron_result.nll, dense.nll, rtol=rtol, atol=1e-9
    )
    np.testing.assert_allclose(
        kron_result.trace_dsd, dense.trace_dsd, rtol=rtol, atol=1e-9
    )
    np.testing.assert_allclose(
        kron_result.residual_sq, dense.residual_sq, rtol=1e-6, atol=1e-9
    )


@pytest.fixture(autouse=True)
def _default_solver_policy(monkeypatch):
    """Run under the default auto policy regardless of the outer env."""
    monkeypatch.delenv("REPRO_POSTERIOR_SOLVER", raising=False)


class TestKronVsDenseOracle:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_states=st.integers(2, 6),
        n_basis=st.integers(1, 8),
        n_per=st.integers(2, 7),
        r0=st.floats(0.0, 0.95),
        noise_var=st.floats(1e-3, 2.0),
        n_zero_lambdas=st.integers(0, 1),
    )
    def test_random_balanced_shapes(
        self, seed, n_states, n_basis, n_per, r0, noise_var, n_zero_lambdas
    ):
        """Mean/blocks/nll/trace/residual match the eq. 18-22 oracle."""
        designs, targets, prior = make_balanced(
            seed, n_states, n_basis, n_per, r0, noise_var,
            n_zero_lambdas=min(n_zero_lambdas, n_basis - 1),
        )
        kron_result = compute_posterior(
            designs, targets, prior, noise_var, method="kron"
        )
        assert kron_result.solver == "kron"
        dense = compute_posterior_dense(designs, targets, prior, noise_var)
        assert_matches_dense(kron_result, dense)

    def test_pruned_columns_match_dense(self):
        """The EM pruning path solves on a ``restrict``-ed cache; the
        Kronecker result on the restricted data must equal a dense solve
        on the explicitly sliced designs."""
        noise_var = 0.05
        designs, targets, prior = make_balanced(
            7, 5, 9, 6, 0.8, noise_var
        )
        active = np.array([0, 2, 3, 7])
        data = MultiStateData.from_states(designs, targets)
        restricted = data.restrict(active)
        assert restricted.state_balanced
        sub_prior = CorrelatedPrior(
            lambdas=prior.lambdas[active], correlation=prior.correlation
        )
        kron_result = compute_posterior(
            restricted, prior=sub_prior, noise_var=noise_var, method="kron"
        )
        dense = compute_posterior_dense(
            [d[:, active] for d in designs], targets, sub_prior, noise_var
        )
        assert_matches_dense(kron_result, dense)

    def test_matches_dual_path(self):
        """Both production paths agree with each other, not just the
        oracle (tighter than the oracle comparison: no ``inv``)."""
        noise_var = 0.1
        designs, targets, prior = make_balanced(3, 8, 12, 9, 0.9, noise_var)
        kron_result = compute_posterior(
            designs, targets, prior, noise_var, method="kron"
        )
        dual = compute_posterior(
            designs, targets, prior, noise_var, method="dual"
        )
        assert dual.solver == "dual"
        np.testing.assert_allclose(
            kron_result.mean, dual.mean, rtol=1e-9, atol=1e-11
        )
        np.testing.assert_allclose(
            kron_result.covariance_blocks(),
            dual.sigma_blocks,
            rtol=1e-8,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            kron_result.trace_dsd, dual.trace_dsd, rtol=1e-9
        )

    def test_want_blocks_false(self):
        """Skipping the covariance pass: mean still exact, uncertainty
        consumers fail loudly instead of silently."""
        noise_var = 0.2
        designs, targets, prior = make_balanced(11, 4, 5, 6, 0.5, noise_var)
        result = compute_posterior(
            designs, targets, prior, noise_var,
            want_blocks=False, method="kron",
        )
        dense = compute_posterior_dense(designs, targets, prior, noise_var)
        np.testing.assert_allclose(result.mean, dense.mean, rtol=RTOL)
        assert result.trace_dsd is None
        with pytest.raises(NumericalError):
            result.require_trace_dsd()
        with pytest.raises(NumericalError):
            result.covariance_blocks()
        with pytest.raises(NumericalError):
            result.mstep_lambda_stats(prior.correlation)


class TestMstepStatistics:
    def test_factored_stats_match_dense_representation(self):
        """The factored λ/R M-step statistics equal the literal einsums
        evaluated on the dual path's dense blocks."""
        noise_var = 0.07
        designs, targets, prior = make_balanced(23, 6, 7, 8, 0.85, noise_var)
        kron_result = compute_posterior(
            designs, targets, prior, noise_var, method="kron"
        )
        dual = compute_posterior(
            designs, targets, prior, noise_var, method="dual"
        )
        quad_k, traces_k = kron_result.mstep_lambda_stats(prior.correlation)
        quad_d, traces_d = dual.mstep_lambda_stats(prior.correlation)
        np.testing.assert_allclose(quad_k, quad_d, rtol=1e-8, atol=1e-11)
        np.testing.assert_allclose(traces_k, traces_d, rtol=1e-8, atol=1e-11)

        scale = np.maximum(prior.lambdas, 1e-6)
        np.testing.assert_allclose(
            kron_result.mstep_scaled_moment(scale),
            dual.mstep_scaled_moment(scale),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_mismatched_correlation_rejected(self):
        """The factored statistics are only valid at the solve's R."""
        noise_var = 0.1
        designs, targets, prior = make_balanced(5, 4, 3, 5, 0.6, noise_var)
        result = compute_posterior(
            designs, targets, prior, noise_var, method="kron"
        )
        other = ar1_correlation(4, 0.3)
        with pytest.raises(ValueError, match="correlation differs"):
            result.mstep_lambda_stats(other)

    def test_full_em_parity_between_solvers(self, monkeypatch):
        """run_em converges to the same hyper-parameters on either path."""
        from repro.core.em import EmConfig, run_em

        rng = np.random.default_rng(77)
        n_states, n_basis, n_per = KRON_MIN_STATES + 2, 6, 10
        design = rng.standard_normal((n_per, n_basis))
        coef = np.zeros((n_states, n_basis))
        coef[:, [1, 4]] = (
            rng.standard_normal(2)
            + 0.1 * rng.standard_normal((n_states, 2))
        )
        targets = [
            design @ coef[k] + 0.05 * rng.standard_normal(n_per)
            for k in range(n_states)
        ]
        designs = [design] * n_states
        prior = CorrelatedPrior(
            lambdas=np.full(n_basis, 1.0),
            correlation=ar1_correlation(n_states, 0.8),
        )
        config = EmConfig(max_iterations=6)

        # Count the actual Kronecker solves (run_em re-wraps its final
        # posterior without the factors, so result.solver can't tell).
        import repro.core.posterior as posterior_module

        kron_calls = {"dual": 0, "kron": 0}
        original = posterior_module.compute_posterior_kron
        runs = {}
        for mode in ("dual", "kron"):
            def counting(*args, _mode=mode, **kwargs):
                kron_calls[_mode] += 1
                return original(*args, **kwargs)

            monkeypatch.setattr(
                posterior_module, "compute_posterior_kron", counting
            )
            monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", mode)
            runs[mode] = run_em(designs, targets, prior, 0.01, config)
        (prior_d, noise_d, post_d, _) = runs["dual"]
        (prior_k, noise_k, post_k, _) = runs["kron"]
        assert kron_calls["dual"] == 0
        assert kron_calls["kron"] > 0
        np.testing.assert_allclose(
            prior_k.lambdas, prior_d.lambdas, rtol=1e-7, atol=1e-10
        )
        np.testing.assert_allclose(
            prior_k.correlation, prior_d.correlation, rtol=1e-7, atol=1e-10
        )
        np.testing.assert_allclose(noise_k, noise_d, rtol=1e-7)
        np.testing.assert_allclose(
            post_k.mean, post_d.mean, rtol=1e-6, atol=1e-9
        )


class TestDispatchPolicy:
    def test_auto_picks_kron_when_balanced_and_large(self):
        noise_var = 0.1
        designs, targets, prior = make_balanced(
            1, KRON_MIN_STATES, 4, 5, 0.9, noise_var
        )
        result = compute_posterior(designs, targets, prior, noise_var)
        assert result.solver == "kron"

    def test_auto_keeps_dual_below_min_states(self):
        noise_var = 0.1
        designs, targets, prior = make_balanced(
            1, KRON_MIN_STATES - 1, 4, 5, 0.9, noise_var
        )
        result = compute_posterior(designs, targets, prior, noise_var)
        assert result.solver == "dual"

    def test_auto_keeps_dual_on_unbalanced_data(self):
        rng = np.random.default_rng(2)
        n_states = KRON_MIN_STATES
        designs = [
            rng.standard_normal((5, 4)) for _ in range(n_states)
        ]
        targets = [rng.standard_normal(5) for _ in range(n_states)]
        prior = CorrelatedPrior(
            lambdas=np.full(4, 0.5),
            correlation=ar1_correlation(n_states, 0.9),
        )
        result = compute_posterior(designs, targets, prior, 0.1)
        assert result.solver == "dual"

    def test_env_dual_disables_kron(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "dual")
        assert resolve_solver_mode() == "dual"
        noise_var = 0.1
        designs, targets, prior = make_balanced(
            1, KRON_MIN_STATES, 4, 5, 0.9, noise_var
        )
        result = compute_posterior(designs, targets, prior, noise_var)
        assert result.solver == "dual"

    def test_env_kron_forces_small_balanced(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "kron")
        noise_var = 0.1
        designs, targets, prior = make_balanced(1, 3, 4, 5, 0.9, noise_var)
        result = compute_posterior(designs, targets, prior, noise_var)
        assert result.solver == "kron"

    def test_env_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "turbo")
        with pytest.raises(ValueError, match="REPRO_POSTERIOR_SOLVER"):
            resolve_solver_mode()

    def test_explicit_kron_rejects_unbalanced(self):
        rng = np.random.default_rng(3)
        designs = [rng.standard_normal((4, 3)) for _ in range(3)]
        targets = [rng.standard_normal(4) for _ in range(3)]
        prior = CorrelatedPrior(
            lambdas=np.full(3, 1.0), correlation=ar1_correlation(3, 0.5)
        )
        with pytest.raises(ValueError, match="state-balanced"):
            compute_posterior(designs, targets, prior, 0.1, method="kron")

    def test_unknown_method_rejected(self):
        designs, targets, prior = make_balanced(1, 3, 2, 4, 0.5, 0.1)
        with pytest.raises(ValueError, match="method"):
            compute_posterior(
                designs, targets, prior, 0.1, method="woodbury"
            )

    def test_kron_applicable_respects_flop_estimate(self):
        """Balanced + large-K but with a huge basis (M³ dominates) stays
        on the dual path — the LNA-at-paper-scale shape."""
        rng = np.random.default_rng(4)
        n_states, n_basis, n_per = KRON_MIN_STATES, 600, 3
        design = rng.standard_normal((n_per, n_basis))
        data = MultiStateData.from_states(
            [design] * n_states,
            [rng.standard_normal(n_per) for _ in range(n_states)],
        )
        assert data.state_balanced
        assert not kron_applicable(data)


class TestMemoryContract:
    def test_large_k_never_materializes_kron_products(self, monkeypatch):
        """AR(1) at K = 201: the fast path must never allocate the
        MK × MK prior ``A`` (~770 MB here), the NK × NK kernel ``C`` or
        the (M, K, K) block tensor. ``full_covariance`` is patched to
        fail loudly and the traced peak is bounded far below any of
        those allocations."""
        monkeypatch.setattr(
            CorrelatedPrior,
            "full_covariance",
            lambda self: pytest.fail(
                "the Kronecker path materialized the MK x MK prior"
            ),
        )
        n_states, n_basis, n_per = 201, 49, 10
        noise_var = 0.1
        designs, targets, prior = make_balanced(
            9, n_states, n_basis, n_per, 0.95, noise_var
        )
        data = MultiStateData.from_states(designs, targets)
        assert kron_applicable(data)

        tracemalloc.start()
        try:
            result = compute_posterior(
                data, prior=prior, noise_var=noise_var
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.solver == "kron"
        assert result.sigma_blocks is None
        blocked = 8 * (n_basis * n_states) ** 2  # dense A or Σ_p
        kernel = 8 * (n_per * n_states) ** 2  # dual-path C
        tensor = 8 * n_basis * n_states**2  # (M, K, K) blocks
        assert peak < min(blocked, kernel, tensor) / 4, (
            f"peak {peak} bytes is within reach of a dense "
            f"materialization (A/Σ={blocked}, C={kernel}, "
            f"blocks={tensor})"
        )
        # The factored representation still answers every query.
        quad, traces = result.mstep_lambda_stats(prior.correlation)
        assert quad.shape == traces.shape == (n_basis,)
        assert np.all(np.isfinite(quad)) and np.all(np.isfinite(traces))

    def test_materialized_blocks_shape_and_symmetry(self):
        noise_var = 0.3
        designs, targets, prior = make_balanced(13, 6, 4, 5, 0.7, noise_var)
        result = compute_posterior_kron(
            MultiStateData.from_states(designs, targets), prior, noise_var
        )
        blocks = result.covariance_blocks()
        assert blocks.shape == (4, 6, 6)
        np.testing.assert_allclose(
            blocks, np.swapaxes(blocks, 1, 2), atol=1e-12
        )


class TestKroneckerGreedySolver:
    def test_matches_incremental_solver(self):
        """Same supports, same coefficients as the Woodbury solver."""
        rng = np.random.default_rng(31)
        n_states, n_basis, n_per = 6, 10, 8
        design = rng.standard_normal((n_per, n_basis))
        designs = [design] * n_states
        targets = [rng.standard_normal(n_per) for _ in range(n_states)]

        reference = IncrementalBayesSolver(r0=0.9, sigma0=0.3)
        fast = KroneckerBayesSolver(r0=0.9, sigma0=0.3)
        reference.begin(designs, targets)
        fast.begin(designs, targets)
        for step, index in enumerate((3, 7, 0, 5), start=1):
            coef_ref = reference.extend(index)
            coef_fast = fast.extend(index)
            assert coef_ref.shape == coef_fast.shape == (step, n_states)
            np.testing.assert_allclose(
                coef_fast, coef_ref, rtol=1e-8, atol=1e-10
            )

    def test_begin_rejects_unbalanced(self):
        rng = np.random.default_rng(32)
        designs = [rng.standard_normal((4, 5)) for _ in range(3)]
        targets = [rng.standard_normal(4) for _ in range(3)]
        solver = KroneckerBayesSolver(r0=0.5, sigma0=0.2)
        with pytest.raises(ValueError):
            solver.begin(designs, targets)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KroneckerBayesSolver(r0=1.0, sigma0=0.2)
        with pytest.raises(ValueError):
            KroneckerBayesSolver(r0=0.5, sigma0=0.0)

    def test_somp_initialize_identical_across_forced_modes(
        self, monkeypatch
    ):
        """On balanced data below the auto threshold, forcing the
        Kronecker solver must reproduce the dual-mode S-OMP selection
        bit-for-bit apart from round-off — same support, same scores."""
        from repro.core.somp_init import InitConfig, somp_initialize

        rng = np.random.default_rng(41)
        n_states, n_basis, n_per = 4, 12, 16
        design = rng.standard_normal((n_per, n_basis))
        coef = rng.standard_normal(n_basis) * (
            rng.random(n_basis) < 0.25
        )
        targets = [
            design @ coef + 0.05 * rng.standard_normal(n_per)
            for _ in range(n_states)
        ]
        designs = [design] * n_states
        config = InitConfig(
            r0_grid=(0.8,),
            sigma0_grid=(0.2,),
            n_basis_grid=(4,),
            n_folds=2,
        )

        results = {}
        for mode in ("dual", "kron"):
            monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", mode)
            results[mode] = somp_initialize(
                designs, targets, config=config, seed=11
            )
        # The single-point grid pins (r0, σ0, θ); the final support scan
        # runs on the full data, so it must agree across solvers even
        # though the CV fold partitions legitimately differ (the kron
        # mode keeps folds balanced by sharing one permutation).
        assert results["kron"].support == results["dual"].support
        assert results["kron"].n_basis == results["dual"].n_basis
        np.testing.assert_allclose(
            results["kron"].prior.lambdas,
            results["dual"].prior.lambdas,
            rtol=1e-7,
            atol=1e-10,
        )
