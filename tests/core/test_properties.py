"""Cross-cutting property tests of the Bayesian core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.posterior import compute_posterior
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.core.somp_init import InitConfig


def random_problem(seed, n_states=4, n_basis=7, n=9):
    rng = np.random.default_rng(seed)
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = [rng.standard_normal(n) for _ in range(n_states)]
    prior = CorrelatedPrior(
        rng.uniform(0.2, 1.5, n_basis), ar1_correlation(n_states, 0.6)
    )
    return designs, targets, prior


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_posterior_equivariant_under_state_permutation(seed):
    """Permuting states (data + R rows/cols) permutes the MAP solution."""
    designs, targets, prior = random_problem(seed)
    n_states = len(designs)
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(n_states)

    base = compute_posterior(designs, targets, prior, 0.3, want_blocks=False)

    permuted_prior = CorrelatedPrior(
        prior.lambdas, prior.correlation[np.ix_(perm, perm)]
    )
    permuted = compute_posterior(
        [designs[p] for p in perm],
        [targets[p] for p in perm],
        permuted_prior,
        0.3,
        want_blocks=False,
    )
    assert np.allclose(permuted.mean, base.mean[:, perm], atol=1e-9)
    assert permuted.nll == pytest.approx(base.nll, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), scale=st.floats(0.1, 10.0))
def test_posterior_scales_with_targets(seed, scale):
    """y → c·y with σ0² → c²σ0², λ → c²λ gives mean → c·mean."""
    designs, targets, prior = random_problem(seed)
    base = compute_posterior(designs, targets, prior, 0.3, want_blocks=False)
    scaled_prior = CorrelatedPrior(
        prior.lambdas * scale**2, prior.correlation
    )
    scaled = compute_posterior(
        designs,
        [t * scale for t in targets],
        scaled_prior,
        0.3 * scale**2,
        want_blocks=False,
    )
    assert np.allclose(scaled.mean, base.mean * scale, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_posterior_invariant_under_basis_permutation(seed):
    """Permuting basis columns (and λ) permutes the coefficient rows."""
    designs, targets, prior = random_problem(seed)
    n_basis = prior.n_basis
    perm = np.random.default_rng(seed + 2).permutation(n_basis)

    base = compute_posterior(designs, targets, prior, 0.3, want_blocks=False)
    permuted = compute_posterior(
        [d[:, perm] for d in designs],
        targets,
        CorrelatedPrior(prior.lambdas[perm], prior.correlation),
        0.3,
        want_blocks=False,
    )
    assert np.allclose(permuted.mean, base.mean[perm], atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 10), r0=st.floats(0.05, 0.95))
def test_ar1_inverse_is_tridiagonal(n, r0):
    """The AR(1) correlation's inverse is tridiagonal — the Markov
    property of the state chain encoded by eq. 32."""
    inverse = np.linalg.inv(ar1_correlation(n, r0))
    off = np.triu(inverse, k=2)
    assert np.allclose(off, 0.0, atol=1e-8)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 100), shift=st.floats(-50.0, 50.0))
def test_cbmf_equivariant_under_target_shift(seed, shift):
    """Adding a constant to every target shifts predictions by the same
    constant (the intercept/standardization path is exact)."""
    rng = np.random.default_rng(seed)
    n_states, n_basis, n = 3, 20, 12
    coef = np.zeros((n_states, n_basis))
    coef[:, 3] = 2.0
    designs, targets = [], []
    for k in range(n_states):
        design = rng.standard_normal((n, n_basis))
        design[:, 0] = 1.0
        designs.append(design)
        targets.append(design @ coef[k] + 0.01 * rng.standard_normal(n))

    config = InitConfig(
        r0_grid=(0.5,), sigma0_grid=(0.1,), n_basis_grid=(3,), n_folds=3
    )
    em = EmConfig(max_iterations=5)
    base = CBMF(init_config=config, em_config=em, seed=0).fit(
        designs, targets
    )
    shifted = CBMF(init_config=config, em_config=em, seed=0).fit(
        designs, [t + shift for t in targets]
    )
    query = rng.standard_normal((6, n_basis))
    query[:, 0] = 1.0
    for k in range(n_states):
        assert np.allclose(
            shifted.predict(query, k),
            base.predict(query, k) + shift,
            atol=1e-6,
        )
