"""Tests for the end-to-end C-BMF estimator."""

import numpy as np
import pytest

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

from tests.conftest import make_synthetic

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(4, 8), n_folds=3
)
FAST_EM = EmConfig(max_iterations=20)


def fit_fast(designs, targets, seed=0):
    return CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=seed).fit(
        designs, targets
    )


class TestFit:
    def test_coefficient_recovery(self):
        problem = make_synthetic(seed=1, n_basis=40, n_support=4)
        designs, targets = problem.sample(20)
        model = fit_fast(designs, targets)
        assert np.allclose(model.coef_, problem.coef, atol=0.25)

    def test_prediction_beats_noise_floor(self):
        problem = make_synthetic(seed=2, n_basis=40, n_support=4)
        designs, targets = problem.sample(20)
        model = fit_fast(designs, targets)
        test_d, test_t = problem.sample(100)
        for k in range(problem.n_states):
            prediction = model.predict(test_d[k], k)
            rmse = np.sqrt(np.mean((prediction - test_t[k]) ** 2))
            assert rmse < 5 * problem.noise_std

    def test_intercept_absorbed_when_column_exists(self):
        problem = make_synthetic(seed=3, intercept=10.0)
        designs, targets = problem.sample(25)
        model = fit_fast(designs, targets)
        assert np.allclose(model.offsets_, 0.0)
        assert np.allclose(model.coef_[:, 0], 10.0, atol=0.5)

    def test_offsets_used_without_intercept_column(self):
        """Strip the intercept column: per-state offsets must carry means."""
        problem = make_synthetic(seed=4, intercept=0.0, n_basis=30)
        designs, targets = problem.sample(20)
        shifted = [t + 7.5 for t in targets]
        stripped = [d[:, 1:] for d in designs]
        model = fit_fast(stripped, shifted)
        # Offsets carry each state's training mean (≈ 7.5 up to the sample
        # mean of the signal part).
        assert np.allclose(model.offsets_, 7.5, atol=2.0)
        assert np.any(model.offsets_ != 0.0)
        prediction = model.predict(stripped[0], 0)
        assert abs(np.mean(prediction) - np.mean(shifted[0])) < 1.0

    def test_report_populated(self):
        problem = make_synthetic(seed=5)
        designs, targets = problem.sample(15)
        model = fit_fast(designs, targets)
        report = model.report_
        assert report.total_seconds > 0.0
        assert report.n_active >= 1
        assert report.em.n_iterations >= 1
        assert "C-BMF fit report" in report.summary()
        assert model.noise_std_ > 0.0

    def test_learned_correlation_positive_for_correlated_truth(self):
        problem = make_synthetic(seed=6, r0=0.95)
        designs, targets = problem.sample(12)
        model = fit_fast(designs, targets)
        r = model.prior_.correlation
        assert r[0, 1] > 0.2

    def test_support_property(self):
        problem = make_synthetic(seed=7)
        designs, targets = problem.sample(20)
        model = fit_fast(designs, targets)
        assert set(problem.support).issubset(set(model.support_))


class TestPredictValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CBMF().predict(np.zeros((1, 3)), 0)

    def test_predict_state_range(self):
        problem = make_synthetic(seed=8)
        designs, targets = problem.sample(15)
        model = fit_fast(designs, targets)
        with pytest.raises(IndexError):
            model.predict(designs[0], 99)

    def test_predict_width_checked(self):
        problem = make_synthetic(seed=9)
        designs, targets = problem.sample(15)
        model = fit_fast(designs, targets)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 3)), 0)

    def test_predict_states_wrapper(self):
        problem = make_synthetic(seed=10)
        designs, targets = problem.sample(15)
        model = fit_fast(designs, targets)
        predictions = model.predict_states(designs)
        assert len(predictions) == problem.n_states
        assert predictions[0].shape == (15,)


class TestAgainstBaselines:
    def test_beats_somp_at_low_budget(self):
        """The paper's core claim on its own turf: correlated truth,
        few samples — C-BMF under S-OMP."""
        from repro.baselines.somp import SOMP

        problem = make_synthetic(
            seed=11, n_states=10, n_basis=80, n_support=6, r0=0.95
        )
        designs, targets = problem.sample(10)
        test_d, test_t = problem.sample(200)

        def error(model):
            num = den = 0.0
            for k in range(problem.n_states):
                p = model.predict(test_d[k], k)
                num += float(np.sum((p - test_t[k]) ** 2))
                den += float(np.sum((test_t[k] - test_t[k].mean()) ** 2))
            return np.sqrt(num / den)

        cbmf = CBMF(
            init_config=InitConfig(
                r0_grid=(0.0, 0.9), sigma0_grid=(0.05, 0.2),
                n_basis_grid=(4, 8, 16), n_folds=4,
            ),
            em_config=FAST_EM,
            seed=0,
        ).fit(designs, targets)
        somp = SOMP(
            seed=0, n_select_grid=(4, 8, 16), n_folds=4
        ).fit(designs, targets)
        assert error(cbmf) < error(somp)
