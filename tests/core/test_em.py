"""Tests for the EM hyper-parameter refinement."""

import numpy as np
import pytest

from repro.core.em import EmConfig, run_em
from repro.core.posterior import compute_posterior
from repro.core.prior import CorrelatedPrior, ar1_correlation


def correlated_problem(seed=0, n_states=6, n_basis=40, n=12, r0=0.9):
    rng = np.random.default_rng(seed)
    support = np.array([2, 9, 25])
    correlation = ar1_correlation(n_states, r0)
    chol = np.linalg.cholesky(correlation)
    coef = np.zeros((n_states, n_basis))
    for m in support:
        coef[:, m] = chol @ rng.standard_normal(n_states) * 2.0
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = [
        d @ coef[k] + 0.05 * rng.standard_normal(n)
        for k, d in enumerate(designs)
    ]
    return designs, targets, support, coef


def seed_prior(n_basis, n_states, support, r0=0.5):
    return CorrelatedPrior.from_support(
        n_basis, n_states, np.asarray(support), r0
    )


class TestEmBasics:
    def test_returns_full_width_mean(self):
        designs, targets, support, _ = correlated_problem()
        prior = seed_prior(40, 6, support)
        _, _, posterior, _ = run_em(designs, targets, prior, 0.04)
        assert posterior.mean.shape == (40, 6)

    def test_nll_monotone_without_pruning(self):
        designs, targets, support, _ = correlated_problem(1)
        prior = seed_prior(40, 6, support)
        config = EmConfig(prune_threshold=0.0, max_iterations=15)
        _, _, _, trace = run_em(designs, targets, prior, 0.04, config)
        nll = trace.nll_history
        assert all(
            b <= a + 1e-6 * max(abs(a), 1.0) for a, b in zip(nll, nll[1:])
        )

    def test_irrelevant_lambdas_decay(self):
        designs, targets, support, _ = correlated_problem(2)
        # Seed with extra spurious bases; EM should shrink them.
        seeded = list(support) + [5, 30]
        prior = seed_prior(40, 6, seeded)
        final_prior, _, _, _ = run_em(
            designs, targets, prior, 0.04, EmConfig(max_iterations=40)
        )
        lam = final_prior.lambdas
        for m in support:
            for spurious in (5, 30):
                assert lam[spurious] < 0.2 * lam[m]

    def test_recovers_coefficients(self):
        designs, targets, support, coef = correlated_problem(3)
        prior = seed_prior(40, 6, support)
        _, _, posterior, _ = run_em(designs, targets, prior, 0.04)
        assert np.allclose(posterior.coef, coef, atol=0.2)

    def test_learns_noise_level(self):
        designs, targets, support, _ = correlated_problem(4)
        prior = seed_prior(40, 6, support)
        _, noise_var, _, _ = run_em(
            designs, targets, prior, 0.5**2, EmConfig(max_iterations=40)
        )
        # True noise std is 0.05; EM should land within an order of magnitude.
        assert 0.01**2 < noise_var < 0.2**2

    def test_learns_correlation(self):
        designs, targets, support, _ = correlated_problem(5, r0=0.95)
        prior = seed_prior(40, 6, support, r0=0.3)
        final_prior, _, _, _ = run_em(
            designs, targets, prior, 0.04, EmConfig(max_iterations=40)
        )
        r = final_prior.correlation
        off = r[np.triu_indices_from(r, k=1)]
        # Adjacent-state correlation should be strongly positive.
        assert r[0, 1] > 0.4
        assert np.mean(off) > 0.2


class TestEmOptions:
    def test_update_r_false_keeps_r(self):
        designs, targets, support, _ = correlated_problem(6)
        prior = seed_prior(40, 6, support, r0=0.5)
        final_prior, _, _, _ = run_em(
            designs,
            targets,
            prior,
            0.04,
            EmConfig(update_r=False, max_iterations=5),
        )
        assert np.allclose(
            final_prior.correlation, ar1_correlation(6, 0.5)
        )

    def test_diagonal_r_stays_diagonal(self):
        designs, targets, support, _ = correlated_problem(7)
        prior = CorrelatedPrior.from_support(40, 6, np.asarray(support), 0.0)
        final_prior, _, _, _ = run_em(
            designs,
            targets,
            prior,
            0.04,
            EmConfig(diagonal_r=True, max_iterations=10),
        )
        off_diagonal = final_prior.correlation - np.diag(
            np.diag(final_prior.correlation)
        )
        assert np.allclose(off_diagonal, 0.0)

    def test_update_noise_false(self):
        designs, targets, support, _ = correlated_problem(8)
        prior = seed_prior(40, 6, support)
        _, noise_var, _, trace = run_em(
            designs,
            targets,
            prior,
            0.123,
            EmConfig(update_noise=False, max_iterations=5),
        )
        assert noise_var == 0.123
        assert all(v == 0.123 for v in trace.noise_history)

    def test_r_scale_pinned(self):
        designs, targets, support, _ = correlated_problem(9)
        prior = seed_prior(40, 6, support)
        final_prior, _, _, _ = run_em(designs, targets, prior, 0.04)
        assert np.mean(np.diag(final_prior.correlation)) == pytest.approx(
            1.0
        )

    def test_trace_records_iterations(self):
        designs, targets, support, _ = correlated_problem(10)
        prior = seed_prior(40, 6, support)
        config = EmConfig(max_iterations=7, tolerance=1e-15)
        _, _, _, trace = run_em(designs, targets, prior, 0.04, config)
        assert trace.n_iterations == 7
        assert len(trace.active_history) == 7
        assert trace.seconds > 0.0

    def test_convergence_stops_early(self):
        designs, targets, support, _ = correlated_problem(11)
        prior = seed_prior(40, 6, support)
        config = EmConfig(max_iterations=60, tolerance=0.5)
        _, _, _, trace = run_em(designs, targets, prior, 0.04, config)
        assert trace.converged
        assert trace.n_iterations < 60

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EmConfig(max_iterations=0)
        with pytest.raises(ValueError):
            EmConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            EmConfig(prune_threshold=-1.0)


class TestPruning:
    def test_pruned_fit_matches_unpruned_predictions(self):
        designs, targets, support, _ = correlated_problem(12)
        prior = seed_prior(40, 6, support)
        config_full = EmConfig(prune_threshold=0.0, max_iterations=20)
        config_pruned = EmConfig(prune_threshold=1e-3, max_iterations=20)
        _, _, post_full, _ = run_em(
            designs, targets, prior, 0.04, config_full
        )
        _, _, post_pruned, _ = run_em(
            designs, targets, prior, 0.04, config_pruned
        )
        for k, design in enumerate(designs):
            a = design @ post_full.mean[:, k]
            b = design @ post_pruned.mean[:, k]
            # Pruning drops the λ=1e-5 tail — a small, bounded approximation.
            assert np.allclose(a, b, atol=0.15)
            assert np.corrcoef(a, b)[0, 1] > 0.999

    def test_active_set_shrinks(self):
        designs, targets, support, _ = correlated_problem(13)
        seeded = list(support) + [1, 7, 19, 33]
        prior = seed_prior(40, 6, seeded)
        _, _, _, trace = run_em(
            designs, targets, prior, 0.04, EmConfig(max_iterations=30)
        )
        assert trace.active_history[-1] <= trace.active_history[0]
