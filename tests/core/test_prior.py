"""Tests for the correlated prior and the AR(1) parameterization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.utils.linalg import is_psd


class TestAr1Correlation:
    def test_unit_diagonal(self):
        r = ar1_correlation(5, 0.7)
        assert np.allclose(np.diag(r), 1.0)

    def test_decay_structure(self):
        r = ar1_correlation(4, 0.5)
        assert r[0, 1] == pytest.approx(0.5)
        assert r[0, 3] == pytest.approx(0.125)

    def test_symmetric(self):
        r = ar1_correlation(6, 0.9)
        assert np.allclose(r, r.T)

    def test_zero_r0_is_identity(self):
        assert np.allclose(ar1_correlation(4, 0.0), np.eye(4))

    def test_rejects_r0_of_one(self):
        with pytest.raises(ValueError):
            ar1_correlation(3, 1.0)

    def test_rejects_negative_r0(self):
        with pytest.raises(ValueError):
            ar1_correlation(3, -0.1)

    def test_single_state(self):
        assert ar1_correlation(1, 0.5).shape == (1, 1)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 12), r0=st.floats(0.0, 0.99))
    def test_property_always_psd(self, n, r0):
        assert is_psd(ar1_correlation(n, r0))


class TestCorrelatedPrior:
    def test_shapes(self):
        prior = CorrelatedPrior(np.ones(5), ar1_correlation(3, 0.5))
        assert prior.n_basis == 5
        assert prior.n_states == 3

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError, match="non-negative"):
            CorrelatedPrior(np.array([-1.0]), np.eye(2))

    def test_rejects_non_psd_correlation(self):
        with pytest.raises(ValueError, match="PSD"):
            CorrelatedPrior(np.ones(2), np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_block_covariance(self):
        prior = CorrelatedPrior(
            np.array([2.0, 0.5]), ar1_correlation(3, 0.5)
        )
        assert np.allclose(
            prior.block_covariance(0), 2.0 * ar1_correlation(3, 0.5)
        )
        with pytest.raises(IndexError):
            prior.block_covariance(2)

    def test_full_covariance_block_diagonal(self):
        prior = CorrelatedPrior(np.array([1.0, 3.0]), ar1_correlation(2, 0.5))
        full = prior.full_covariance()
        assert full.shape == (4, 4)
        assert np.allclose(full[:2, :2], prior.block_covariance(0))
        assert np.allclose(full[2:, 2:], prior.block_covariance(1))
        assert np.allclose(full[:2, 2:], 0.0)

    def test_active_set(self):
        prior = CorrelatedPrior(
            np.array([1.0, 1e-9, 0.5]), np.eye(2)
        )
        assert list(prior.active_set()) == [0, 2]

    def test_active_set_all_zero(self):
        prior = CorrelatedPrior(np.zeros(3), np.eye(2))
        assert prior.active_set().size == 0

    def test_from_support(self):
        prior = CorrelatedPrior.from_support(
            n_basis=6, n_states=4, active=np.array([1, 3]), r0=0.8
        )
        assert prior.lambdas[1] == 1.0
        assert prior.lambdas[0] == pytest.approx(1e-5)
        assert np.allclose(prior.correlation, ar1_correlation(4, 0.8))

    def test_from_support_rejects_bad_indices(self):
        with pytest.raises(ValueError, match="active"):
            CorrelatedPrior.from_support(4, 2, np.array([5]), 0.5)

    def test_normalized_preserves_product(self):
        rng = np.random.default_rng(0)
        root = rng.standard_normal((3, 5))
        correlation = root @ root.T
        prior = CorrelatedPrior(np.array([1.0, 2.0]), correlation)
        normalized = prior.normalized()
        assert np.mean(np.diag(normalized.correlation)) == pytest.approx(1.0)
        for m in range(2):
            assert np.allclose(
                normalized.block_covariance(m), prior.block_covariance(m)
            )
