"""Stress the rank-K Woodbury path: 100 sequential extends vs one batch.

``IncrementalBayesSolver`` maintains ``G = C⁻¹`` through one Woodbury
update per accepted basis. Numerical drift compounds across updates, so
the greedy scan's worst case — a long run of extends — must still agree
with a single batch solve on the final support: the posterior means to
1e-10, and ``G`` itself against a directly-inverted kernel matrix.
"""

import numpy as np

from repro.core.posterior import compute_posterior
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.core.somp_init import IncrementalBayesSolver

R0 = 0.7
SIGMA0 = 0.3
N_STATES = 3
N_BASIS = 120
N_EXTENDS = 100
COUNT = 40


def make_problem(seed=11):
    rng = np.random.default_rng(seed)
    designs = [
        rng.standard_normal((COUNT, N_BASIS)) for _ in range(N_STATES)
    ]
    targets = [rng.standard_normal(COUNT) for _ in range(N_STATES)]
    order = rng.permutation(N_BASIS)[:N_EXTENDS]
    return designs, targets, order


def test_hundred_extends_match_batch_solve():
    """Coefficients after 100 incremental updates == one-shot solve."""
    designs, targets, order = make_problem()
    solver = IncrementalBayesSolver(R0, SIGMA0)
    solver.begin(designs, targets)
    means = None
    for index in order:
        means = solver.extend(int(index))
    assert means is not None and means.shape == (N_EXTENDS, N_STATES)

    prior = CorrelatedPrior(
        lambdas=np.ones(N_EXTENDS),
        correlation=ar1_correlation(N_STATES, R0),
    )
    batch = compute_posterior(
        [d[:, order] for d in designs],
        targets,
        prior,
        SIGMA0**2,
        want_blocks=False,
    )
    # batch.mean is (M, K) — same layout as the solver's support means.
    scale = float(np.abs(batch.mean).max(initial=1e-12))
    np.testing.assert_allclose(
        means, batch.mean, rtol=1e-10, atol=1e-10 * scale
    )


def test_hundred_extends_inverse_parity():
    """``G`` after 100 Woodbury updates == the explicit dense inverse."""
    designs, targets, order = make_problem(seed=12)
    solver = IncrementalBayesSolver(R0, SIGMA0)
    solver.begin(designs, targets)
    for index in order:
        solver.extend(int(index))

    phi = np.vstack([d[:, order] for d in designs])
    state_of_row = np.concatenate(
        [np.full(COUNT, k, dtype=int) for k in range(N_STATES)]
    )
    correlation = ar1_correlation(N_STATES, R0)
    kernel = (phi @ phi.T) * correlation[
        np.ix_(state_of_row, state_of_row)
    ]
    kernel.flat[:: kernel.shape[0] + 1] += SIGMA0**2
    dense_inverse = np.linalg.inv(kernel)

    scale = float(np.abs(dense_inverse).max(initial=1e-12))
    np.testing.assert_allclose(
        solver._g, dense_inverse, rtol=1e-10, atol=1e-10 * scale
    )


def test_extend_order_independence():
    """Two different extend orders of the same support converge to the
    same posterior (the kernel is a set function of the support)."""
    designs, targets, order = make_problem(seed=13)
    forward = IncrementalBayesSolver(R0, SIGMA0)
    forward.begin(designs, targets)
    for index in order:
        forward.extend(int(index))

    backward = IncrementalBayesSolver(R0, SIGMA0)
    backward.begin(designs, targets)
    for index in order[::-1]:
        backward.extend(int(index))

    scale = float(np.abs(forward._g).max(initial=1e-12))
    np.testing.assert_allclose(
        forward._g, backward._g, rtol=1e-9, atol=1e-9 * scale
    )
