"""PosteriorPredictor's Kronecker mode vs the dense kernel factorization.

On state-balanced training data the predictor diagonalizes
``C = R ⊗ H + σ0²·I`` instead of factorizing the NK × NK kernel. Both
representations condition on the same Gaussian, so mean, std and the
dual weights must agree to round-off; ``absorb`` breaks the Kronecker
structure and must fall back to one dense factorization (never a wrong
answer).
"""

import numpy as np
import pytest

from repro.core.kronecker import KRON_MIN_STATES
from repro.core.predictive import PosteriorPredictor
from repro.core.prior import CorrelatedPrior, ar1_correlation


def make_balanced(seed, n_states, n_basis, n_per):
    rng = np.random.default_rng(seed)
    design = rng.standard_normal((n_per, n_basis))
    designs = [design] * n_states
    targets = [rng.standard_normal(n_per) for _ in range(n_states)]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.1, 1.5, n_basis),
        correlation=ar1_correlation(n_states, 0.9),
    )
    return designs, targets, prior


def build_pair(monkeypatch, seed=5, n_states=6, n_basis=5, n_per=7,
               noise_var=0.05):
    """The same model in both representations (forced via the env)."""
    designs, targets, prior = make_balanced(seed, n_states, n_basis, n_per)
    monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "kron")
    kron = PosteriorPredictor(designs, targets, prior, noise_var)
    monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "dual")
    dense = PosteriorPredictor(designs, targets, prior, noise_var)
    assert kron.solver == "kron"
    assert dense.solver == "dense"
    return kron, dense, prior


class TestKronPredictorParity:
    def test_mean_std_and_weights_match_dense(self, monkeypatch):
        kron, dense, prior = build_pair(monkeypatch)
        np.testing.assert_allclose(
            kron.dual_weights, dense.dual_weights, rtol=1e-9, atol=1e-12
        )
        rng = np.random.default_rng(17)
        query = rng.standard_normal((9, prior.n_basis))
        for state in range(prior.n_states):
            np.testing.assert_allclose(
                kron.predict_mean(query, state),
                dense.predict_mean(query, state),
                rtol=1e-9,
                atol=1e-11,
            )
            np.testing.assert_allclose(
                kron.predict_std(query, state),
                dense.predict_std(query, state),
                rtol=1e-8,
                atol=1e-11,
            )
            np.testing.assert_allclose(
                kron.predict_std(query, state, include_noise=True),
                dense.predict_std(query, state, include_noise=True),
                rtol=1e-8,
                atol=1e-11,
            )

    def test_auto_mode_selects_kron_at_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_POSTERIOR_SOLVER", raising=False)
        designs, targets, prior = make_balanced(
            3, KRON_MIN_STATES, 4, 6
        )
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        assert predictor.solver == "kron"

    def test_auto_mode_keeps_dense_when_unbalanced(self, monkeypatch):
        monkeypatch.delenv("REPRO_POSTERIOR_SOLVER", raising=False)
        rng = np.random.default_rng(4)
        n_states = KRON_MIN_STATES
        designs = [rng.standard_normal((5, 4)) for _ in range(n_states)]
        targets = [rng.standard_normal(5) for _ in range(n_states)]
        prior = CorrelatedPrior(
            lambdas=np.full(4, 0.8),
            correlation=ar1_correlation(n_states, 0.9),
        )
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        assert predictor.solver == "dense"


class TestAbsorbDensifies:
    def test_absorb_matches_from_scratch_rebuild(self, monkeypatch):
        """Absorbing into a Kronecker-mode predictor densifies once and
        is then numerically identical to a fresh dense predictor built
        on the concatenated (now unbalanced) data."""
        kron, dense, prior = build_pair(monkeypatch)
        rng = np.random.default_rng(29)
        batch = rng.standard_normal((3, prior.n_basis))
        values = rng.standard_normal(3)
        state = 2

        kron.absorb(batch, values, state)
        assert kron.solver == "dense"
        dense.absorb(batch, values, state)

        np.testing.assert_allclose(
            kron.dual_weights, dense.dual_weights, rtol=1e-9, atol=1e-12
        )
        query = rng.standard_normal((6, prior.n_basis))
        for probe_state in (0, state, prior.n_states - 1):
            np.testing.assert_allclose(
                kron.predict_mean(query, probe_state),
                dense.predict_mean(query, probe_state),
                rtol=1e-9,
                atol=1e-11,
            )
            np.testing.assert_allclose(
                kron.predict_std(query, probe_state),
                dense.predict_std(query, probe_state),
                rtol=1e-8,
                atol=1e-11,
            )

    def test_absorb_still_validates_inputs(self, monkeypatch):
        kron, _, prior = build_pair(monkeypatch)
        bad = np.full((2, prior.n_basis), np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            kron.absorb(bad, np.zeros(2), 0)
        # A rejected batch must not have flipped the representation.
        assert kron.solver == "kron"


class TestOnlineCBMFOnKronFit:
    def test_online_absorb_parity_with_dense_fitted_model(
        self, monkeypatch
    ):
        """Satellite: ``OnlineCBMF.absorb`` on a Kronecker-fitted model
        gives the same coefficients/predictions as on a dual-fitted one
        — the streaming path is representation-agnostic."""
        from repro.basis.polynomial import LinearBasis
        from repro.core.cbmf import CBMF
        from repro.streaming import OnlineCBMF

        rng = np.random.default_rng(53)
        n_states, n_vars, n_train = KRON_MIN_STATES, 4, 12
        basis = LinearBasis(n_vars)
        x = rng.standard_normal((n_train, n_vars))
        inputs = [x] * n_states
        coef = rng.standard_normal(n_vars + 1)
        targets = [
            np.column_stack([np.ones(n_train), x]) @ coef
            + 0.05 * rng.standard_normal(n_train)
            + 0.02 * k
            for k in range(n_states)
        ]
        designs = basis.expand_states(inputs)

        fitted = {}
        for mode in ("dual", "kron"):
            monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", mode)
            fitted[mode] = CBMF(seed=7).fit(designs, targets)
        assert fitted["kron"].predictor.solver == "kron"
        assert fitted["dual"].predictor.solver == "dense"
        monkeypatch.delenv("REPRO_POSTERIOR_SOLVER", raising=False)

        probe = rng.standard_normal((5, n_vars))
        batch_x = rng.standard_normal((4, n_vars))
        batch_y = (
            np.column_stack([np.ones(4), batch_x]) @ coef
            + 0.05 * rng.standard_normal(4)
        )
        predictions = {}
        for mode, model in fitted.items():
            online = OnlineCBMF.from_cbmf(model, basis=basis)
            absorbed = online.absorb(batch_x, batch_y, state=1)
            assert absorbed == 4
            predictions[mode] = online.predict(probe, 1)
        np.testing.assert_allclose(
            predictions["kron"], predictions["dual"], rtol=1e-6, atol=1e-8
        )
