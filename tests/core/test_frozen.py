"""Tests for frozen models."""

import numpy as np
import pytest

from repro.baselines.least_squares import LeastSquares
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.frozen import FrozenModel
from repro.core.somp_init import InitConfig

from tests.conftest import make_synthetic


def fitted_cbmf(seed=0):
    problem = make_synthetic(seed=seed)
    designs, targets = problem.sample(15)
    model = CBMF(
        init_config=InitConfig(
            r0_grid=(0.8,), sigma0_grid=(0.1,), n_basis_grid=(6,), n_folds=4
        ),
        em_config=EmConfig(max_iterations=8),
        seed=0,
    ).fit(designs, targets)
    return model, designs


class TestConstruction:
    def test_default_offsets_zero(self):
        frozen = FrozenModel(np.ones((3, 4)))
        assert np.allclose(frozen.offsets_, 0.0)

    def test_offsets_length_checked(self):
        with pytest.raises(ValueError):
            FrozenModel(np.ones((3, 4)), offsets=np.zeros(2))

    def test_basis_names_length_checked(self):
        with pytest.raises(ValueError, match="basis_names"):
            FrozenModel(np.ones((2, 3)), basis_names=("a",))

    def test_fit_is_forbidden(self):
        with pytest.raises(NotImplementedError):
            FrozenModel(np.ones((2, 3))).fit([], [])


class TestFromEstimator:
    def test_predictions_identical(self):
        model, designs = fitted_cbmf()
        frozen = FrozenModel.from_estimator(model, metric="y")
        for k, design in enumerate(designs):
            assert np.allclose(
                frozen.predict(design, k), model.predict(design, k)
            )

    def test_offsets_carried(self):
        model, designs = fitted_cbmf(1)
        # Strip the intercept so the estimator uses explicit offsets.
        stripped = [d[:, 1:] for d in designs]
        problem = make_synthetic(seed=1)
        _, targets = problem.sample(15)
        model = CBMF(
            init_config=InitConfig(
                r0_grid=(0.8,), sigma0_grid=(0.1,), n_basis_grid=(6,),
                n_folds=4,
            ),
            em_config=EmConfig(max_iterations=8),
            seed=0,
        ).fit(stripped, [t + 3.0 for t in targets])
        frozen = FrozenModel.from_estimator(model)
        assert np.allclose(frozen.offsets_, model.offsets_)
        assert np.allclose(
            frozen.predict(stripped[0], 0), model.predict(stripped[0], 0)
        )

    def test_requires_fitted(self):
        with pytest.raises(RuntimeError):
            FrozenModel.from_estimator(LeastSquares())

    def test_coefficients_copied(self):
        model, designs = fitted_cbmf(2)
        frozen = FrozenModel.from_estimator(model)
        frozen.coef_[0, 0] += 100.0
        assert model.coef_[0, 0] != frozen.coef_[0, 0]


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        model, designs = fitted_cbmf(3)
        frozen = FrozenModel.from_estimator(
            model, metric="gain_db", basis_names=tuple(
                f"b{i}" for i in range(model.coef_.shape[1])
            )
        )
        path = tmp_path / "model.npz"
        frozen.save(path)
        loaded = FrozenModel.load(path)
        assert loaded.metric == "gain_db"
        assert loaded.basis_names == frozen.basis_names
        assert np.allclose(loaded.coef_, frozen.coef_)
        for k, design in enumerate(designs):
            assert np.allclose(
                loaded.predict(design, k), frozen.predict(design, k)
            )

    def test_save_load_without_names(self, tmp_path):
        frozen = FrozenModel(np.ones((2, 3)), metric="nf")
        path = tmp_path / "m.npz"
        frozen.save(path)
        loaded = FrozenModel.load(path)
        assert loaded.basis_names is None
        assert loaded.metric == "nf"

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, weights=np.ones((2, 3)))
        with pytest.raises(ValueError, match="coef"):
            FrozenModel.load(path)

    def test_load_names_each_missing_key(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(path, coef=np.ones((2, 3)))
        with pytest.raises(ValueError, match="offsets"):
            FrozenModel.load(path)
