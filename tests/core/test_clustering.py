"""Tests for the state-clustering extension."""

import numpy as np
import pytest

from repro.core.clustering import ClusteredCBMF, cluster_states, state_signatures
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(4,), n_folds=3
)
FAST_EM = EmConfig(max_iterations=15)


def two_family_truth(seed=0, n_per_family=4, n_basis=40):
    """Two mutually-different state families with disjoint templates."""
    rng = np.random.default_rng(seed)
    support_a = [3, 10, 20]
    support_b = [7, 15, 30]
    n_states = 2 * n_per_family
    truth = np.zeros((n_states, n_basis))
    for k in range(n_states):
        support = support_a if k < n_per_family else support_b
        for m in support:
            truth[k, m] = rng.uniform(1.0, 2.0)
    labels = np.array([0] * n_per_family + [1] * n_per_family)
    return truth, labels, rng


def sample_from_truth(truth, rng, n):
    designs, targets = [], []
    for k in range(truth.shape[0]):
        design = rng.standard_normal((n, truth.shape[1]))
        design[:, 0] = 1.0
        designs.append(design)
        targets.append(design @ truth[k] + 0.05 * rng.standard_normal(n))
    return designs, targets


def two_family_problem(seed=0, n_per_family=4, n_basis=40, n=18):
    truth, labels, rng = two_family_truth(seed, n_per_family, n_basis)
    designs, targets = sample_from_truth(truth, rng, n)
    return designs, targets, labels


class TestClusterStates:
    def test_recovers_two_families(self):
        designs, targets, truth = two_family_problem()
        labels = cluster_states(designs, targets, 2)
        # Same partition up to label permutation.
        same = np.all(labels == truth) or np.all(labels == 1 - truth)
        assert same

    def test_single_cluster_trivial(self):
        designs, targets, _ = two_family_problem()
        labels = cluster_states(designs, targets, 1)
        assert np.all(labels == 0)

    def test_rejects_too_many_clusters(self):
        designs, targets, _ = two_family_problem(n_per_family=2)
        with pytest.raises(ValueError, match="exceeds"):
            cluster_states(designs, targets, 99)

    def test_rejects_bad_ridge(self):
        designs, targets, _ = two_family_problem()
        with pytest.raises(ValueError, match="ridge"):
            cluster_states(designs, targets, 2, ridge=0.0)

    def test_signature_shape(self):
        designs, targets, _ = two_family_problem()
        features = state_signatures(designs, targets)
        assert features.shape[0] == len(designs)
        assert 2 <= features.shape[1] <= designs[0].shape[1]

    def test_ridge_signature_shape(self):
        designs, targets, _ = two_family_problem()
        features = state_signatures(designs, targets, kind="ridge")
        assert features.shape == (len(designs), designs[0].shape[1])

    def test_rejects_unknown_kind(self):
        designs, targets, _ = two_family_problem()
        with pytest.raises(ValueError, match="kind"):
            state_signatures(designs, targets, kind="pca")


class TestClusteredCBMF:
    def test_fits_and_predicts(self):
        designs, targets, _ = two_family_problem(seed=1)
        model = ClusteredCBMF(
            n_clusters=2,
            init_config=FAST_INIT,
            em_config=FAST_EM,
            seed=0,
        ).fit(designs, targets)
        assert model.coef_.shape == (len(designs), designs[0].shape[1])
        assert len(model.models_) == 2
        prediction = model.predict(designs[0], 0)
        assert prediction.shape == (designs[0].shape[0],)

    def test_beats_single_cluster_on_mixed_states(self):
        """When families are mutually different, clustering first wins —
        the scenario the paper's conclusion calls out."""
        truth, _, rng = two_family_truth(seed=2)
        designs, targets = sample_from_truth(truth, rng, 12)
        test_designs, test_targets = sample_from_truth(truth, rng, 100)

        def error(model):
            num = den = 0.0
            for k in range(len(designs)):
                p = model.predict(test_designs[k], k)
                num += float(np.sum((p - test_targets[k]) ** 2))
                den += float(np.sum(test_targets[k] ** 2))
            return np.sqrt(num / den)

        clustered = ClusteredCBMF(
            n_clusters=2, init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        single = ClusteredCBMF(
            n_clusters=1, init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        assert error(clustered) < error(single)

    def test_labels_exposed(self):
        designs, targets, truth = two_family_problem(seed=3)
        model = ClusteredCBMF(
            n_clusters=2, init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        assert model.labels_.shape == (len(designs),)

    def test_single_state_cluster_handled(self):
        """A cluster containing one state must still fit (K=1 C-BMF)."""
        designs, targets, _ = two_family_problem(seed=4, n_per_family=1, n=20)
        model = ClusteredCBMF(
            n_clusters=2, init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        assert model.coef_.shape[0] == 2
