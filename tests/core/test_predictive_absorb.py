"""The block-Cholesky absorb vs a from-scratch predictor rebuild.

Cholesky factors of positive-definite matrices are unique, so absorbing
batches one at a time must reproduce the from-scratch factorization on
the concatenated data to round-off — mean, std, factor and dual weights
alike. These tests pin that contract (and the fail-safe error paths)
directly at the :class:`PosteriorPredictor` level.
"""

import numpy as np
import pytest

from repro.core.predictive import PosteriorPredictor
from repro.core.prior import CorrelatedPrior, ar1_correlation

RTOL = 1e-10
ATOL = 1e-12


def make_predictor(seed=0, n_states=3, n_basis=4, count=12, noise_var=0.01):
    rng = np.random.default_rng(seed)
    designs = [rng.standard_normal((count, n_basis)) for _ in range(n_states)]
    targets = [rng.standard_normal(count) for _ in range(n_states)]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.1, 2.0, n_basis),
        correlation=ar1_correlation(n_states, 0.7),
    )
    return PosteriorPredictor(designs, targets, prior, noise_var), rng


def rebuild(predictor):
    """A from-scratch predictor on the absorbed predictor's rows."""
    phi, y, state_of_row = predictor.training_rows()
    n_states = predictor.prior.n_states
    designs = [phi[state_of_row == k] for k in range(n_states)]
    targets = [y[state_of_row == k] for k in range(n_states)]
    return PosteriorPredictor(
        designs, targets, predictor.prior, predictor.noise_var
    )


def test_absorb_matches_rebuild():
    """Several absorbed batches == one from-scratch factorization."""
    predictor, rng = make_predictor()
    for state, size in [(0, 5), (2, 1), (0, 3), (1, 7)]:
        design = rng.standard_normal((size, predictor.prior.n_basis))
        target = rng.standard_normal(size)
        predictor.absorb(design, target, state)
    fresh = rebuild(predictor)

    query = rng.standard_normal((20, predictor.prior.n_basis))
    for state in range(predictor.prior.n_states):
        np.testing.assert_allclose(
            predictor.predict_mean(query, state),
            fresh.predict_mean(query, state),
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            predictor.predict_std(query, state, include_noise=True),
            fresh.predict_std(query, state, include_noise=True),
            rtol=RTOL, atol=ATOL,
        )
    # The rebuild groups rows by state while absorb appends them, so the
    # dual weights (one per row) compare through that permutation.
    _, _, state_of_row = predictor.training_rows()
    permutation = np.concatenate(
        [
            np.flatnonzero(state_of_row == k)
            for k in range(predictor.prior.n_states)
        ]
    )
    np.testing.assert_allclose(
        predictor.dual_weights[permutation],
        fresh.dual_weights,
        rtol=RTOL, atol=ATOL,
    )


def test_absorb_row_by_row_matches_one_batch():
    """b single-row absorbs == one b-row absorb (associativity)."""
    one_shot, rng = make_predictor(seed=3)
    row_wise = rebuild(one_shot)
    design = rng.standard_normal((6, one_shot.prior.n_basis))
    target = rng.standard_normal(6)
    one_shot.absorb(design, target, 1)
    for i in range(6):
        row_wise.absorb(design[i : i + 1], target[i : i + 1], 1)
    query = rng.standard_normal((10, one_shot.prior.n_basis))
    np.testing.assert_allclose(
        one_shot.predict_mean(query, 1),
        row_wise.predict_mean(query, 1),
        rtol=RTOL, atol=ATOL,
    )
    np.testing.assert_allclose(
        one_shot.predict_std(query, 1),
        row_wise.predict_std(query, 1),
        rtol=RTOL, atol=ATOL,
    )


def test_absorb_updates_row_count_and_variance_shrinks():
    """Conditioning on data at a design can only shrink its variance."""
    predictor, rng = make_predictor(seed=5)
    design = rng.standard_normal((4, predictor.prior.n_basis))
    before = predictor.predict_std(design, 2)
    n_before = predictor.n_rows
    predictor.absorb(design, rng.standard_normal(4), 2)
    assert predictor.n_rows == n_before + 4
    after = predictor.predict_std(design, 2)
    assert np.all(after <= before + 1e-12)


def test_absorb_refuses_bad_batches():
    predictor, rng = make_predictor()
    design = rng.standard_normal((3, predictor.prior.n_basis))
    with pytest.raises(ValueError, match="non-empty"):
        predictor.absorb(
            np.empty((0, predictor.prior.n_basis)), np.empty(0), 0
        )
    with pytest.raises(ValueError, match="2 values"):
        predictor.absorb(design, np.zeros(2), 0)
    with pytest.raises(IndexError):
        predictor.absorb(design, np.zeros(3), 99)
    with pytest.raises(ValueError, match="non-finite"):
        predictor.absorb(design, np.array([1.0, np.nan, 2.0]), 0)


def test_failed_absorb_leaves_state_intact():
    """A refused batch must not move any prediction (strong guarantee)."""
    predictor, rng = make_predictor()
    query = rng.standard_normal((5, predictor.prior.n_basis))
    before_mean = predictor.predict_mean(query, 0).copy()
    before_rows = predictor.n_rows
    bad = rng.standard_normal((3, predictor.prior.n_basis))
    with pytest.raises(ValueError):
        predictor.absorb(bad, np.array([np.nan, 0.0, 0.0]), 0)
    assert predictor.n_rows == before_rows
    np.testing.assert_array_equal(
        predictor.predict_mean(query, 0), before_mean
    )
