"""Tests for warm-start fitting."""

import numpy as np
import pytest

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

from tests.conftest import make_synthetic

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(4, 8), n_folds=4
)
FAST_EM = EmConfig(max_iterations=12)


class TestWarmStart:
    def test_requires_fitted_source(self):
        with pytest.raises(ValueError, match="fitted"):
            CBMF(warm_start=CBMF())

    def test_skips_initializer(self):
        problem = make_synthetic(seed=0)
        designs, targets = problem.sample(15)
        cold = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            designs, targets
        )
        warm = CBMF(em_config=FAST_EM, warm_start=cold).fit(
            designs, targets
        )
        # The warm init records no CV grid search ...
        assert warm.report_.init.cv_errors == {}
        # ... and is much cheaper than the cold one.
        assert warm.report_.init_seconds < cold.report_.init_seconds

    def test_accuracy_comparable_to_cold(self):
        problem = make_synthetic(seed=1)
        designs, targets = problem.sample(12)
        test_d, test_t = problem.sample(150)
        cold = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            designs, targets
        )
        more_d, more_t = problem.sample(12)
        grown_d = [np.vstack([a, b]) for a, b in zip(designs, more_d)]
        grown_t = [np.concatenate([a, b]) for a, b in zip(targets, more_t)]
        warm = CBMF(em_config=FAST_EM, warm_start=cold).fit(
            grown_d, grown_t
        )
        cold2 = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            grown_d, grown_t
        )

        def error(model):
            num = den = 0.0
            for k in range(problem.n_states):
                p = model.predict(test_d[k], k)
                num += float(np.sum((p - test_t[k]) ** 2))
                den += float(np.sum(test_t[k] ** 2))
            return np.sqrt(num / den)

        assert error(warm) < 1.3 * error(cold2)
        # More data must not hurt relative to the first-round model.
        assert error(warm) < 1.2 * error(cold)

    def test_layout_mismatch_rejected(self):
        problem = make_synthetic(seed=2)
        designs, targets = problem.sample(12)
        cold = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            designs, targets
        )
        narrower = [d[:, :-2] for d in designs]
        with pytest.raises(ValueError, match="bases"):
            CBMF(warm_start=cold).fit(narrower, targets)
        with pytest.raises(ValueError, match="states"):
            CBMF(warm_start=cold).fit(designs[:-1], targets[:-1])
