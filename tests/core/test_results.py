"""Tests for fit-report diagnostics."""

import pytest

from repro.core.em import EmTrace
from repro.core.prior import CorrelatedPrior
from repro.core.results import FitReport
from repro.core.somp_init import InitResult

import numpy as np


def make_report():
    init = InitResult(
        r0=0.7,
        sigma0=0.15,
        n_basis=12,
        support=[0, 3, 7],
        prior=CorrelatedPrior(np.ones(5), np.eye(2)),
        noise_var=0.15**2,
        cv_errors={(0.7, 0.15, 12): 0.42},
    )
    trace = EmTrace(
        nll_history=[10.0, 8.0, 7.5],
        active_history=[5, 4, 4],
        noise_history=[0.02, 0.015, 0.012],
        converged=True,
        seconds=1.25,
    )
    return FitReport(
        init=init,
        em=trace,
        n_active=4,
        noise_std=0.11,
        init_seconds=0.4,
        em_seconds=1.25,
    )


class TestFitReport:
    def test_total_seconds(self):
        report = make_report()
        assert report.total_seconds == pytest.approx(1.65)

    def test_summary_mentions_key_numbers(self):
        text = make_report().summary()
        assert "r0=0.7" in text
        assert "theta=12" in text
        assert "3 iterations" in text
        assert "converged=True" in text
        assert "active bases=4" in text
        assert "0.11" in text

    def test_em_trace_iteration_count(self):
        assert make_report().em.n_iterations == 3


class TestEmTraceDefaults:
    def test_fresh_trace_empty(self):
        trace = EmTrace()
        assert trace.n_iterations == 0
        assert not trace.converged
        assert trace.seconds == 0.0
