"""Tests for the modified S-OMP hyper-parameter initializer."""

import numpy as np
import pytest

from repro.core.somp_init import InitConfig, somp_initialize


def problem(seed=0, n_states=5, n_basis=50, n=16, r0=0.9, noise=0.05):
    rng = np.random.default_rng(seed)
    support = np.array([4, 18, 33])
    correlation = r0 ** np.abs(
        np.subtract.outer(np.arange(n_states), np.arange(n_states))
    )
    chol = np.linalg.cholesky(correlation)
    coef = np.zeros((n_states, n_basis))
    for m in support:
        coef[:, m] = chol @ rng.standard_normal(n_states) * 2.0
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = [
        d @ coef[k] + noise * rng.standard_normal(n)
        for k, d in enumerate(designs)
    ]
    return designs, targets, support


class TestInitConfig:
    def test_defaults_valid(self):
        InitConfig()

    def test_rejects_empty_grids(self):
        with pytest.raises(ValueError):
            InitConfig(r0_grid=())

    def test_rejects_bad_r0(self):
        with pytest.raises(ValueError):
            InitConfig(r0_grid=(1.0,))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            InitConfig(sigma0_grid=(0.0,))

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            InitConfig(n_basis_grid=(0,))

    def test_rejects_single_fold(self):
        with pytest.raises(ValueError):
            InitConfig(n_folds=1)


class TestInitializer:
    def test_finds_true_support(self):
        designs, targets, support = problem()
        config = InitConfig(n_basis_grid=(3, 6, 12))
        result = somp_initialize(designs, targets, config, seed=0)
        assert set(support).issubset(set(result.support))

    def test_chosen_values_come_from_grid(self):
        designs, targets, _ = problem(1)
        config = InitConfig(
            r0_grid=(0.2, 0.8), sigma0_grid=(0.1, 0.3), n_basis_grid=(3, 8)
        )
        result = somp_initialize(designs, targets, config, seed=0)
        assert result.r0 in config.r0_grid
        assert result.sigma0 in config.sigma0_grid
        assert result.n_basis in config.n_basis_grid

    def test_prior_encodes_support(self):
        designs, targets, _ = problem(2)
        result = somp_initialize(designs, targets, seed=1)
        lam = result.prior.lambdas
        for m in result.support:
            assert lam[m] == 1.0
        inactive = np.setdiff1d(np.arange(lam.size), result.support)
        assert np.allclose(lam[inactive], 1e-5)

    def test_noise_var_is_sigma_squared(self):
        designs, targets, _ = problem(3)
        result = somp_initialize(designs, targets, seed=2)
        assert result.noise_var == pytest.approx(result.sigma0**2)

    def test_cv_errors_recorded(self):
        designs, targets, _ = problem(4)
        config = InitConfig(
            r0_grid=(0.5,), sigma0_grid=(0.1,), n_basis_grid=(3, 6)
        )
        result = somp_initialize(designs, targets, config, seed=3)
        assert len(result.cv_errors) == 2
        for error in result.cv_errors.values():
            assert error > 0.0

    def test_correlated_truth_prefers_high_r0(self):
        """With strongly correlated coefficients and few samples, CV should
        not pick the uncorrelated end of the grid."""
        designs, targets, _ = problem(
            5, n_states=8, n=6, r0=0.98, noise=0.2
        )
        config = InitConfig(
            r0_grid=(0.0, 0.95), sigma0_grid=(0.1,), n_basis_grid=(3,),
            n_folds=3,
        )
        result = somp_initialize(designs, targets, config, seed=5)
        key_low = (0.0, 0.1, 3)
        key_high = (0.95, 0.1, 3)
        assert result.cv_errors[key_high] <= result.cv_errors[key_low]

    def test_deterministic_given_seed(self):
        designs, targets, _ = problem(6)
        a = somp_initialize(designs, targets, seed=7)
        b = somp_initialize(designs, targets, seed=7)
        assert a.support == b.support
        assert a.r0 == b.r0 and a.sigma0 == b.sigma0

    def test_theta_capped_by_dictionary_size(self):
        designs, targets, _ = problem(7, n=6)
        config = InitConfig(n_basis_grid=(2, 4, 1000), n_folds=3)
        result = somp_initialize(designs, targets, config, seed=8)
        assert len(result.support) <= designs[0].shape[1]

    def test_support_may_exceed_sample_count(self):
        """The Bayesian solve is well-posed for θ > N (unlike LS)."""
        designs, targets, _ = problem(8, n=5)
        config = InitConfig(
            r0_grid=(0.5,), sigma0_grid=(0.1,), n_basis_grid=(9,),
            n_folds=3,
        )
        result = somp_initialize(designs, targets, config, seed=9)
        assert len(result.support) == 9


class TestParallelCV:
    """The CV grid must be bit-identical for any worker count."""

    def test_workers_bit_identical(self):
        designs, targets, _ = problem(3, n_states=4, n=12)
        config = InitConfig(
            r0_grid=(0.3, 0.9),
            sigma0_grid=(0.1, 0.3),
            n_basis_grid=(3, 6),
            n_folds=2,
        )
        serial = somp_initialize(
            designs, targets, config, seed=17, max_workers=1
        )
        pooled = somp_initialize(
            designs, targets, config, seed=17, max_workers=4
        )
        assert serial.support == pooled.support
        assert serial.r0 == pooled.r0
        assert serial.sigma0 == pooled.sigma0
        assert serial.n_basis == pooled.n_basis
        assert serial.noise_var == pooled.noise_var
        assert serial.cv_errors.keys() == pooled.cv_errors.keys()
        for key in serial.cv_errors:
            assert serial.cv_errors[key] == pooled.cv_errors[key]
        np.testing.assert_array_equal(
            serial.prior.lambdas, pooled.prior.lambdas
        )
        np.testing.assert_array_equal(
            serial.prior.correlation, pooled.prior.correlation
        )
