"""Tests for the dual-space MAP posterior against the textbook oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.posterior import compute_posterior, compute_posterior_dense
from repro.core.prior import CorrelatedPrior, ar1_correlation


def random_instance(seed, n_states=3, n_basis=5, n_samples=7, uneven=False):
    rng = np.random.default_rng(seed)
    counts = (
        [n_samples + k for k in range(n_states)] if uneven
        else [n_samples] * n_states
    )
    designs = [rng.standard_normal((n, n_basis)) for n in counts]
    targets = [rng.standard_normal(n) for n in counts]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.05, 2.0, n_basis),
        correlation=ar1_correlation(n_states, rng.uniform(0.0, 0.95)),
    )
    return designs, targets, prior


class TestAgainstDenseOracle:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_dense(self, seed):
        designs, targets, prior = random_instance(seed)
        fast = compute_posterior(designs, targets, prior, 0.4)
        dense = compute_posterior_dense(designs, targets, prior, 0.4)
        assert np.allclose(fast.mean, dense.mean, atol=1e-8)
        assert np.allclose(
            fast.sigma_blocks, dense.sigma_blocks, atol=1e-8
        )
        assert fast.nll == pytest.approx(dense.nll, rel=1e-8)
        assert fast.residual_sq == pytest.approx(
            dense.residual_sq, rel=1e-8
        )
        assert fast.trace_dsd == pytest.approx(dense.trace_dsd, rel=1e-6)

    def test_uneven_state_sample_counts(self):
        designs, targets, prior = random_instance(1, uneven=True)
        fast = compute_posterior(designs, targets, prior, 0.2)
        dense = compute_posterior_dense(designs, targets, prior, 0.2)
        assert np.allclose(fast.mean, dense.mean, atol=1e-8)
        assert np.allclose(fast.sigma_blocks, dense.sigma_blocks, atol=1e-8)


class TestSpecialCases:
    def test_single_state_identity_r_is_ridge(self):
        """K=1, R=[1], λ_m=λ: MAP == ridge with α = σ²/λ."""
        rng = np.random.default_rng(2)
        design = rng.standard_normal((20, 6))
        target = rng.standard_normal(20)
        lam, noise = 0.7, 0.3
        prior = CorrelatedPrior(np.full(6, lam), np.eye(1))
        posterior = compute_posterior([design], [target], prior, noise)
        alpha = noise / lam
        ridge = np.linalg.solve(
            design.T @ design + alpha * np.eye(6), design.T @ target
        )
        assert np.allclose(posterior.mean[:, 0], ridge, atol=1e-9)

    def test_zero_lambda_zeroes_coefficient(self):
        rng = np.random.default_rng(3)
        designs = [rng.standard_normal((8, 4)) for _ in range(2)]
        targets = [rng.standard_normal(8) for _ in range(2)]
        lambdas = np.array([1.0, 0.0, 1.0, 0.0])
        prior = CorrelatedPrior(lambdas, ar1_correlation(2, 0.5))
        posterior = compute_posterior(designs, targets, prior, 0.1)
        assert np.allclose(posterior.mean[1], 0.0)
        assert np.allclose(posterior.mean[3], 0.0)
        assert not np.allclose(posterior.mean[0], 0.0)

    def test_strong_noise_shrinks_to_zero(self):
        designs, targets, prior = random_instance(4)
        weak = compute_posterior(designs, targets, prior, 1e-3)
        strong = compute_posterior(designs, targets, prior, 1e6)
        assert np.linalg.norm(strong.mean) < 1e-3 * np.linalg.norm(weak.mean)

    def test_perfect_correlation_ties_states(self):
        """R → all-ones: coefficients forced (nearly) equal across states."""
        rng = np.random.default_rng(5)
        n_states, n_basis = 3, 4
        designs = [rng.standard_normal((10, n_basis)) for _ in range(n_states)]
        shared = rng.standard_normal(n_basis)
        targets = [d @ shared for d in designs]
        correlation = ar1_correlation(n_states, 0.999999)
        prior = CorrelatedPrior(np.ones(n_basis), correlation)
        posterior = compute_posterior(designs, targets, prior, 1e-4)
        for m in range(n_basis):
            assert np.ptp(posterior.mean[m]) < 1e-2

    def test_posterior_covariance_blocks_psd(self):
        designs, targets, prior = random_instance(6)
        posterior = compute_posterior(designs, targets, prior, 0.5)
        for block in posterior.sigma_blocks:
            eigenvalues = np.linalg.eigvalsh(0.5 * (block + block.T))
            assert eigenvalues.min() > -1e-10

    def test_posterior_variance_below_prior(self):
        """Observing data cannot increase variance (Gaussian model)."""
        designs, targets, prior = random_instance(7)
        posterior = compute_posterior(designs, targets, prior, 0.5)
        for m in range(prior.n_basis):
            prior_var = np.diag(prior.block_covariance(m))
            post_var = np.diag(posterior.sigma_blocks[m])
            assert np.all(post_var <= prior_var + 1e-12)

    def test_want_blocks_false_skips_blocks(self):
        from repro.errors import NumericalError

        designs, targets, prior = random_instance(8)
        posterior = compute_posterior(
            designs, targets, prior, 0.5, want_blocks=False
        )
        assert posterior.sigma_blocks is None
        # The skipped inverse leaves no trace term — asking for it is an
        # explicit error instead of a silent NaN flowing downstream.
        assert posterior.trace_dsd is None
        with pytest.raises(NumericalError, match="want_blocks"):
            posterior.require_trace_dsd()
        with_blocks = compute_posterior(designs, targets, prior, 0.5)
        assert np.allclose(posterior.mean, with_blocks.mean)
        assert with_blocks.require_trace_dsd() == with_blocks.trace_dsd

    def test_coef_layout(self):
        designs, targets, prior = random_instance(9)
        posterior = compute_posterior(designs, targets, prior, 0.5)
        assert posterior.coef.shape == (len(designs), prior.n_basis)
        assert np.allclose(posterior.coef, posterior.mean.T)


class TestValidation:
    def test_rejects_nonpositive_noise(self):
        designs, targets, prior = random_instance(10)
        with pytest.raises(ValueError, match="noise_var"):
            compute_posterior(designs, targets, prior, 0.0)

    def test_rejects_prior_basis_mismatch(self):
        designs, targets, _ = random_instance(11)
        bad_prior = CorrelatedPrior(np.ones(99), ar1_correlation(3, 0.5))
        with pytest.raises(ValueError, match="bases"):
            compute_posterior(designs, targets, bad_prior, 0.1)

    def test_rejects_prior_state_mismatch(self):
        designs, targets, _ = random_instance(12)
        bad_prior = CorrelatedPrior(np.ones(5), ar1_correlation(9, 0.5))
        with pytest.raises(ValueError, match="states"):
            compute_posterior(designs, targets, bad_prior, 0.1)

    def test_rejects_mismatched_targets(self):
        designs, targets, prior = random_instance(13)
        targets[0] = targets[0][:-1]
        with pytest.raises(ValueError):
            compute_posterior(designs, targets, prior, 0.1)
