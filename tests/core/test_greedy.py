"""Tests for the shared greedy selection scan."""

import numpy as np
import pytest

from repro.core.greedy import select_shared_support


def least_squares_solver(sub_designs, targets):
    columns = []
    for design, target in zip(sub_designs, targets):
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        columns.append(solution)
    return np.column_stack(columns)


def shared_sparse_problem(seed=0, n_states=4, n_basis=30, n=20):
    rng = np.random.default_rng(seed)
    support = [3, 11, 17]
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = []
    for k, design in enumerate(designs):
        coef = np.zeros(n_basis)
        for m in support:
            coef[m] = rng.uniform(1.0, 3.0) * (1 if k % 2 else -1)
        targets.append(design @ coef + 0.01 * rng.standard_normal(n))
    return designs, targets, support


class TestSelection:
    def test_recovers_shared_support(self):
        designs, targets, support = shared_sparse_problem()
        found, _ = select_shared_support(
            designs, targets, 3, least_squares_solver
        )
        assert sorted(found) == sorted(support)

    def test_no_duplicate_selection(self):
        designs, targets, _ = shared_sparse_problem(1)
        found, _ = select_shared_support(
            designs, targets, 10, least_squares_solver
        )
        assert len(found) == len(set(found)) == 10

    def test_coefficients_shape(self):
        designs, targets, _ = shared_sparse_problem(2)
        _, coefficients = select_shared_support(
            designs, targets, 5, least_squares_solver
        )
        assert coefficients.shape == (5, len(designs))

    def test_on_step_called_every_iteration(self):
        designs, targets, _ = shared_sparse_problem(3)
        sizes = []
        select_shared_support(
            designs,
            targets,
            4,
            least_squares_solver,
            on_step=lambda support, coef: sizes.append(len(support)),
        )
        assert sizes == [1, 2, 3, 4]

    def test_residual_decreases(self):
        designs, targets, _ = shared_sparse_problem(4)
        norms = []

        def track(support, coefficients):
            total = 0.0
            for k, design in enumerate(designs):
                r = targets[k] - design[:, support] @ coefficients[:, k]
                total += float(r @ r)
            norms.append(total)

        select_shared_support(
            designs, targets, 6, least_squares_solver, on_step=track
        )
        assert all(b <= a + 1e-9 for a, b in zip(norms, norms[1:]))

    def test_rejects_bad_n_select(self):
        designs, targets, _ = shared_sparse_problem(5)
        with pytest.raises(ValueError):
            select_shared_support(designs, targets, 0, least_squares_solver)
        with pytest.raises(ValueError):
            select_shared_support(
                designs, targets, 999, least_squares_solver
            )

    def test_solver_shape_validated(self):
        designs, targets, _ = shared_sparse_problem(6)
        with pytest.raises(AssertionError, match="solver"):
            select_shared_support(
                designs, targets, 2, lambda d, t: np.zeros((1, 1))
            )
