"""Property tests: both fast posterior paths vs the dense oracle.

``compute_posterior`` runs the cached/vectorized dual-space algebra
(shared ``MultiStateData``, segment-sum S-tensor, trace identities);
``compute_posterior_dense`` materializes the literal eq. 18-22 matrices.
They must agree to tight tolerance for *every* shape — including ragged
per-state sample counts and the column-restricted solves the EM pruning
path issues.

The same oracle also pins the second production fast path: the
Kronecker solver for state-balanced designs (``method="kron"``), again
on random shapes including pruned-column solves. Deeper Kronecker
coverage (dispatch policy, M-step factors, memory contract) lives in
``tests/core/test_kronecker.py``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.multistate import MultiStateData
from repro.core.posterior import (
    compute_posterior,
    compute_posterior_dense,
)
from repro.core.prior import CorrelatedPrior, ar1_correlation

RTOL = 1e-7


def make_problem(seed, n_states, n_basis, counts, r0, noise_var):
    rng = np.random.default_rng(seed)
    designs = [
        rng.standard_normal((count, n_basis)) for count in counts
    ]
    targets = [rng.standard_normal(count) for count in counts]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.05, 2.0, n_basis),
        correlation=ar1_correlation(n_states, r0),
    )
    return designs, targets, prior


def assert_posteriors_match(fast, dense, rtol=RTOL):
    """Entry-wise rtol plus an atol tied to each quantity's own scale.

    The oracle itself goes through ``np.linalg.inv``, so tiny entries of
    a matrix whose largest entries are O(1) can only agree to
    ``rtol × scale`` — a pure relative test on them measures the oracle's
    cancellation error, not a fast-path bug."""
    mean_scale = float(np.abs(dense.mean).max(initial=1e-12))
    np.testing.assert_allclose(
        fast.mean, dense.mean, rtol=rtol, atol=rtol * mean_scale
    )
    block_scale = float(np.abs(dense.sigma_blocks).max(initial=1e-12))
    np.testing.assert_allclose(
        fast.sigma_blocks,
        dense.sigma_blocks,
        rtol=rtol,
        atol=rtol * block_scale,
    )
    np.testing.assert_allclose(fast.nll, dense.nll, rtol=rtol, atol=1e-10)
    np.testing.assert_allclose(
        fast.trace_dsd, dense.trace_dsd, rtol=rtol, atol=1e-10
    )
    # ‖residual‖² inherits a cancellation error ∝ ‖y‖² when the fit is
    # near-interpolating, so its floor scales with the data magnitude.
    np.testing.assert_allclose(
        fast.residual_sq, dense.residual_sq, rtol=1e-6, atol=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_states=st.integers(2, 5),
    n_basis=st.integers(1, 8),
    base_count=st.integers(2, 7),
    ragged=st.booleans(),
    r0=st.floats(0.0, 0.95),
    noise_var=st.floats(1e-3, 2.0),
)
def test_fast_matches_dense_random_shapes(
    seed, n_states, n_basis, base_count, ragged, r0, noise_var
):
    """Mean, covariance blocks, nll, trace_dsd agree for random K/M/N."""
    counts = [
        base_count + (k % 3 if ragged else 0) for k in range(n_states)
    ]
    designs, targets, prior = make_problem(
        seed, n_states, n_basis, counts, r0, noise_var
    )
    fast = compute_posterior(
        designs, targets, prior, noise_var, want_blocks=True
    )
    dense = compute_posterior_dense(designs, targets, prior, noise_var)
    assert_posteriors_match(fast, dense)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_states=st.integers(2, 4),
    n_basis=st.integers(3, 9),
    noise_var=st.floats(1e-3, 1.0),
)
def test_fast_matches_dense_with_pruned_columns(
    seed, n_states, n_basis, noise_var
):
    """The EM pruning path restricts a cached ``MultiStateData`` to an
    active column subset; the restricted solve must equal a dense solve
    on the explicitly-sliced designs."""
    counts = [5] * n_states
    designs, targets, prior = make_problem(
        seed, n_states, n_basis, counts, 0.7, noise_var
    )
    rng = np.random.default_rng(seed + 1)
    n_active = int(rng.integers(1, n_basis + 1))
    active = np.sort(
        rng.choice(n_basis, size=n_active, replace=False)
    )

    data = MultiStateData.from_states(designs, targets)
    sub_prior = CorrelatedPrior(
        lambdas=prior.lambdas[active], correlation=prior.correlation
    )
    fast = compute_posterior(
        data.restrict(active),
        prior=sub_prior,
        noise_var=noise_var,
        want_blocks=True,
    )
    dense = compute_posterior_dense(
        [d[:, active] for d in designs], targets, sub_prior, noise_var
    )
    assert_posteriors_match(fast, dense)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_states=st.integers(2, 6),
    n_basis=st.integers(1, 8),
    n_per=st.integers(2, 7),
    r0=st.floats(0.0, 0.95),
    noise_var=st.floats(1e-3, 2.0),
)
def test_kron_matches_dense_random_balanced_shapes(
    seed, n_states, n_basis, n_per, r0, noise_var
):
    """The second fast path — the Kronecker solver for state-balanced
    data — is pinned to the same oracle on random shapes."""
    rng = np.random.default_rng(seed)
    design = rng.standard_normal((n_per, n_basis))
    designs = [design] * n_states
    targets = [rng.standard_normal(n_per) for _ in range(n_states)]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.05, 2.0, n_basis),
        correlation=ar1_correlation(n_states, r0),
    )
    fast = compute_posterior(
        designs, targets, prior, noise_var, want_blocks=True, method="kron"
    )
    assert fast.solver == "kron"
    dense = compute_posterior_dense(designs, targets, prior, noise_var)
    np.testing.assert_allclose(
        fast.mean,
        dense.mean,
        rtol=RTOL,
        atol=RTOL * float(np.abs(dense.mean).max(initial=1e-12)),
    )
    block_scale = float(np.abs(dense.sigma_blocks).max(initial=1e-12))
    np.testing.assert_allclose(
        fast.covariance_blocks(),
        dense.sigma_blocks,
        rtol=RTOL,
        atol=RTOL * block_scale,
    )
    np.testing.assert_allclose(fast.nll, dense.nll, rtol=RTOL, atol=1e-10)
    np.testing.assert_allclose(
        fast.trace_dsd, dense.trace_dsd, rtol=RTOL, atol=1e-10
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_states=st.integers(2, 5),
    n_basis=st.integers(3, 9),
    noise_var=st.floats(1e-3, 1.0),
)
def test_kron_matches_dense_with_pruned_columns(
    seed, n_states, n_basis, noise_var
):
    """Pruned-column (``restrict``) solves keep balance, so the EM prune
    path stays on the Kronecker solver — and must still match a dense
    solve on the explicitly-sliced designs."""
    rng = np.random.default_rng(seed)
    design = rng.standard_normal((5, n_basis))
    designs = [design] * n_states
    targets = [rng.standard_normal(5) for _ in range(n_states)]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.05, 2.0, n_basis),
        correlation=ar1_correlation(n_states, 0.7),
    )
    n_active = int(rng.integers(1, n_basis + 1))
    active = np.sort(rng.choice(n_basis, size=n_active, replace=False))

    data = MultiStateData.from_states(designs, targets)
    sub_prior = CorrelatedPrior(
        lambdas=prior.lambdas[active], correlation=prior.correlation
    )
    fast = compute_posterior(
        data.restrict(active),
        prior=sub_prior,
        noise_var=noise_var,
        want_blocks=True,
        method="kron",
    )
    assert fast.solver == "kron"
    dense = compute_posterior_dense(
        [d[:, active] for d in designs], targets, sub_prior, noise_var
    )
    np.testing.assert_allclose(
        fast.mean,
        dense.mean,
        rtol=RTOL,
        atol=RTOL * float(np.abs(dense.mean).max(initial=1e-12)),
    )
    block_scale = float(np.abs(dense.sigma_blocks).max(initial=1e-12))
    np.testing.assert_allclose(
        fast.covariance_blocks(),
        dense.sigma_blocks,
        rtol=RTOL,
        atol=RTOL * block_scale,
    )


def test_em_with_pruning_matches_dense_per_iteration():
    """Drive ``run_em`` with an aggressive prune threshold and check every
    posterior it computed against the dense oracle on the same subset."""
    from repro.core import em as em_module
    from repro.core.em import EmConfig, run_em

    rng = np.random.default_rng(42)
    n_states, n_basis, count = 3, 10, 8
    designs = [
        rng.standard_normal((count, n_basis)) for _ in range(n_states)
    ]
    coef = np.zeros((n_states, n_basis))
    coef[:, [1, 4]] = rng.standard_normal((n_states, 2)) * 2.0
    targets = [
        d @ coef[k] + 0.05 * rng.standard_normal(count)
        for k, d in enumerate(designs)
    ]
    prior = CorrelatedPrior(
        lambdas=np.full(n_basis, 1.0),
        correlation=ar1_correlation(n_states, 0.5),
    )

    checked = []
    original = em_module.compute_posterior

    def checking(data, targets_arg=None, prior=None, noise_var=None, *,
                 want_blocks=True):
        result = original(
            data, targets_arg, prior=prior, noise_var=noise_var,
            want_blocks=want_blocks,
        )
        if want_blocks:
            dense = compute_posterior_dense(
                list(data.designs), list(data.targets), prior, noise_var
            )
            # Late EM iterations shrink the noise estimate toward the true
            # 0.05², so cond(C) grows and the dense-inverse oracle itself
            # drifts — one decade of slack keeps the check meaningful.
            assert_posteriors_match(result, dense, rtol=1e-7)
            checked.append(data.n_basis)
        return result

    em_module.compute_posterior = checking
    try:
        config = EmConfig(max_iterations=8, prune_threshold=1e-2)
        run_em(designs, targets, prior, 0.01, config)
    finally:
        em_module.compute_posterior = original

    assert checked, "EM never exercised the blocks path"
    assert min(checked) < n_basis, "pruning never restricted the basis"
