"""Tests for posterior-predictive uncertainty."""

import numpy as np
import pytest

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.posterior import compute_posterior
from repro.core.predictive import PosteriorPredictor
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.core.somp_init import InitConfig

from tests.conftest import make_synthetic

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(4, 8), n_folds=4
)
FAST_EM = EmConfig(max_iterations=15)


def small_instance(seed=0, n_states=3, n_basis=6, n=10):
    rng = np.random.default_rng(seed)
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = [rng.standard_normal(n) for _ in range(n_states)]
    prior = CorrelatedPrior(
        lambdas=rng.uniform(0.2, 1.5, n_basis),
        correlation=ar1_correlation(n_states, 0.7),
    )
    return designs, targets, prior


class TestPosteriorPredictor:
    def test_mean_matches_map_prediction(self):
        designs, targets, prior = small_instance()
        noise = 0.2
        predictor = PosteriorPredictor(designs, targets, prior, noise)
        posterior = compute_posterior(
            designs, targets, prior, noise, want_blocks=False
        )
        for k, design in enumerate(designs):
            via_map = design @ posterior.mean[:, k]
            via_gp = predictor.predict_mean(design, k)
            assert np.allclose(via_map, via_gp, atol=1e-9)

    def test_std_nonnegative(self):
        designs, targets, prior = small_instance(1)
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        query = np.random.default_rng(2).standard_normal((20, 6))
        std = predictor.predict_std(query, 1)
        assert np.all(std >= 0.0)

    def test_training_points_have_low_latent_std(self):
        """At a training input the latent std is far below the prior."""
        designs, targets, prior = small_instance(3)
        predictor = PosteriorPredictor(designs, targets, prior, 1e-4)
        design = designs[0]
        at_train = predictor.predict_std(design, 0)
        prior_scale = np.sqrt(
            np.einsum("ij,j,ij->i", design, prior.lambdas, design)
        )
        assert np.all(at_train < 0.35 * prior_scale)

    def test_include_noise_adds_floor(self):
        designs, targets, prior = small_instance(4)
        noise = 0.3
        predictor = PosteriorPredictor(designs, targets, prior, noise)
        query = np.random.default_rng(5).standard_normal((5, 6))
        latent = predictor.predict_std(query, 0)
        observed = predictor.predict_std(query, 0, include_noise=True)
        assert np.all(observed >= np.sqrt(noise) - 1e-12)
        assert np.allclose(observed**2 - latent**2, noise, atol=1e-9)

    def test_more_data_shrinks_uncertainty(self):
        rng = np.random.default_rng(6)
        prior = CorrelatedPrior(np.ones(5), ar1_correlation(2, 0.5))
        query = rng.standard_normal((10, 5))

        def build(n):
            designs = [rng.standard_normal((n, 5)) for _ in range(2)]
            targets = [rng.standard_normal(n) for _ in range(2)]
            return PosteriorPredictor(designs, targets, prior, 0.2)

        few = build(4).predict_std(query, 0).mean()
        many = build(60).predict_std(query, 0).mean()
        assert many < few

    def test_std_shrinks_monotonically_with_nested_data(self):
        """On nested designs (each a prefix of the next) the predictive
        variance is monotone in N point-wise, not just on average."""
        rng = np.random.default_rng(8)
        prior = CorrelatedPrior(
            rng.uniform(0.3, 1.5, 5), ar1_correlation(3, 0.6)
        )
        query = rng.standard_normal((25, 5))
        full = [rng.standard_normal((64, 5)) for _ in range(3)]
        values = [rng.standard_normal(64) for _ in range(3)]
        previous = None
        for n in (4, 8, 16, 32, 64):
            predictor = PosteriorPredictor(
                [d[:n] for d in full], [t[:n] for t in values], prior, 0.2
            )
            std = predictor.predict_std(query, 0)
            if previous is not None:
                assert np.all(std <= previous + 1e-10)
                assert std.mean() < previous.mean()
            previous = std

    def test_variance_matches_brute_force_gp_identity(self):
        """σ² = k** − kᵀ C⁻¹ k computed with dense solves on a tiny case."""
        designs, targets, prior = small_instance(9, n_states=2, n_basis=4, n=5)
        noise = 0.3
        predictor = PosteriorPredictor(designs, targets, prior, noise)
        phi = np.vstack(designs)
        state_of_row = np.repeat([0, 1], 5)
        gram = (phi * prior.lambdas) @ phi.T
        c_matrix = gram * prior.correlation[
            np.ix_(state_of_row, state_of_row)
        ] + noise * np.eye(10)
        query = np.random.default_rng(10).standard_normal((7, 4))
        for state in range(2):
            cross = (phi * prior.lambdas) @ query.T
            cross *= prior.correlation[state_of_row, state][:, None]
            prior_var = prior.correlation[state, state] * np.einsum(
                "ij,j,ij->i", query, prior.lambdas, query
            )
            expected = np.sqrt(
                prior_var
                - np.einsum(
                    "iq,iq->q", cross, np.linalg.solve(c_matrix, cross)
                )
            )
            assert np.allclose(
                predictor.predict_std(query, state), expected, atol=1e-9
            )

    def test_validation(self):
        designs, targets, prior = small_instance(7)
        with pytest.raises(ValueError, match="noise_var"):
            PosteriorPredictor(designs, targets, prior, 0.0)
        bad_prior = CorrelatedPrior(np.ones(99), np.eye(3))
        with pytest.raises(ValueError, match="bases"):
            PosteriorPredictor(designs, targets, bad_prior, 0.1)
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        with pytest.raises(IndexError):
            predictor.predict_std(np.zeros((1, 6)), 99)


class TestAugmented:
    def test_mean_unchanged_variance_shrinks(self):
        """Fantasy conditioning: mean function fixed, variance tightened."""
        designs, targets, prior = small_instance(12)
        predictor = PosteriorPredictor(designs, targets, prior, 0.2)
        rng = np.random.default_rng(13)
        extra = rng.standard_normal((3, 6))
        query = rng.standard_normal((15, 6))
        conditioned = predictor.augmented(extra, 1)
        for state in range(3):
            assert np.allclose(
                predictor.predict_mean(query, state),
                conditioned.predict_mean(query, state),
                atol=1e-8,
            )
            before = predictor.predict_std(query, state)
            after = conditioned.predict_std(query, state)
            assert np.all(after <= before + 1e-10)
        # at the conditioned points themselves the shrink is strict
        assert np.all(
            conditioned.predict_std(extra, 1)
            < predictor.predict_std(extra, 1)
        )

    def test_matches_real_observation_variance(self):
        """The variance after a fantasy update equals the variance after
        conditioning on a *real* observation at the same point (the GP
        posterior variance never sees the targets)."""
        designs, targets, prior = small_instance(14)
        predictor = PosteriorPredictor(designs, targets, prior, 0.2)
        rng = np.random.default_rng(15)
        point = rng.standard_normal((1, 6))
        query = rng.standard_normal((10, 6))
        fantasy = predictor.augmented(point, 0)
        real_designs = [d.copy() for d in designs]
        real_targets = [t.copy() for t in targets]
        real_designs[0] = np.vstack([real_designs[0], point])
        real_targets[0] = np.append(real_targets[0], 123.456)
        real = PosteriorPredictor(real_designs, real_targets, prior, 0.2)
        for state in range(3):
            assert np.allclose(
                fantasy.predict_std(query, state),
                real.predict_std(query, state),
                atol=1e-9,
            )

    def test_validation(self):
        designs, targets, prior = small_instance(16)
        predictor = PosteriorPredictor(designs, targets, prior, 0.2)
        with pytest.raises(IndexError):
            predictor.augmented(np.zeros((1, 6)), 42)
        with pytest.raises(ValueError):
            predictor.augmented(np.zeros((1, 99)), 0)


class TestAgainstDenseCovariance:
    def test_variance_matches_dense_posterior(self):
        """Predictive latent variance equals φᵀ Σ_full^{(k)} φ with the
        full (cross-basis) dense posterior covariance — the oracle the
        dual-space shortcut must agree with."""
        from repro.core.posterior import compute_posterior_dense

        rng = np.random.default_rng(11)
        n_states, n_basis, n = 3, 4, 6
        designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
        targets = [rng.standard_normal(n) for _ in range(n_states)]
        prior = CorrelatedPrior(
            rng.uniform(0.3, 1.2, n_basis), ar1_correlation(n_states, 0.6)
        )
        noise = 0.25

        # Dense full covariance: rebuild Σ_p over the (m, k) layout.
        dense = compute_posterior_dense(designs, targets, prior, noise)
        # Σ_p rebuilt entry-wise from the dense computation internals.
        from repro.core.posterior import _stack

        phi, y, state_of_row = _stack(designs, targets)
        d_matrix = np.zeros((phi.shape[0], n_basis * n_states))
        for i in range(phi.shape[0]):
            for m in range(n_basis):
                d_matrix[i, m * n_states + state_of_row[i]] = phi[i, m]
        a_matrix = prior.full_covariance()
        c_inv = np.linalg.inv(
            noise * np.eye(phi.shape[0]) + d_matrix @ a_matrix @ d_matrix.T
        )
        ad_t = a_matrix @ d_matrix.T
        sigma_full = a_matrix - ad_t @ c_inv @ ad_t.T

        predictor = PosteriorPredictor(designs, targets, prior, noise)
        query = rng.standard_normal((5, n_basis))
        for state in range(n_states):
            # State-k coefficient covariance: rows/cols (m, state).
            idx = [m * n_states + state for m in range(n_basis)]
            cov_k = sigma_full[np.ix_(idx, idx)]
            expected = np.sqrt(
                np.maximum(np.einsum("qi,ij,qj->q", query, cov_k, query), 0)
            )
            via_dual = predictor.predict_std(query, state)
            assert np.allclose(via_dual, expected, atol=1e-8)


class TestCbmfPredictStd:
    def test_units_and_shape(self):
        problem = make_synthetic(seed=0)
        designs, targets = problem.sample(15)
        model = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            designs, targets
        )
        std = model.predict_std(designs[0], 0)
        assert std.shape == (15,)
        assert np.all(std >= 0.0)

    def test_coverage_calibration(self):
        """Roughly 2/3 of held-out residuals inside one predictive sigma."""
        problem = make_synthetic(seed=1, noise_std=0.1)
        designs, targets = problem.sample(25)
        model = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=0).fit(
            designs, targets
        )
        test_d, test_t = problem.sample(200)
        inside = total = 0
        for k in range(problem.n_states):
            prediction = model.predict(test_d[k], k)
            std = model.predict_std(test_d[k], k, include_noise=True)
            inside += int(np.sum(np.abs(prediction - test_t[k]) <= std))
            total += test_t[k].size
        coverage = inside / total
        assert 0.4 < coverage <= 1.0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CBMF().predict_std(np.zeros((1, 3)), 0)


class TestFiniteVariance:
    def test_non_finite_variance_raises_numerical_error(self):
        """Corrupted training state propagates NaN into the variance —
        the guard must raise, never return NaN 'uncertainties' that an
        acquisition strategy would silently rank."""
        from repro.errors import NumericalError, ReproError

        designs, targets, prior = small_instance(5)
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        predictor._phi[0, 0] = np.nan
        query = np.ones((4, 6))
        with pytest.raises(NumericalError, match="non-finite predictive"):
            predictor.predict_std(query, 0)
        with pytest.raises(ReproError):
            predictor.predict_std(query, 0)

    def test_error_counts_bad_queries(self):
        from repro.errors import NumericalError

        designs, targets, prior = small_instance(6)
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        predictor._factor[:] = np.inf
        with pytest.raises(NumericalError, match="5 of 5"):
            predictor.predict_std(np.ones((5, 6)), 1)

    def test_mean_unaffected_by_guard(self):
        """The guard lives on the variance path only."""
        designs, targets, prior = small_instance(7)
        predictor = PosteriorPredictor(designs, targets, prior, 0.1)
        assert np.all(
            np.isfinite(predictor.predict_mean(np.ones((3, 6)), 0))
        )
