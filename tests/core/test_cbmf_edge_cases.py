"""Edge-case hardening tests for the C-BMF estimator."""

import numpy as np
import pytest

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

TINY_INIT = InitConfig(
    r0_grid=(0.5,), sigma0_grid=(0.1,), n_basis_grid=(2,), n_folds=2
)
TINY_EM = EmConfig(max_iterations=4)


def fit_tiny(designs, targets):
    return CBMF(init_config=TINY_INIT, em_config=TINY_EM, seed=0).fit(
        designs, targets
    )


class TestDegenerateInputs:
    def test_single_state(self):
        rng = np.random.default_rng(0)
        design = rng.standard_normal((12, 8))
        design[:, 0] = 1.0
        target = design @ np.array([1.0, 2.0, 0, 0, 0, 0, 0, 0])
        model = fit_tiny([design], [target])
        assert model.coef_.shape == (1, 8)
        prediction = model.predict(design, 0)
        assert np.allclose(prediction, target, atol=0.5)

    def test_constant_targets(self):
        """Zero-variance targets must not crash (scale guard)."""
        rng = np.random.default_rng(1)
        designs = [rng.standard_normal((8, 5)) for _ in range(2)]
        for d in designs:
            d[:, 0] = 1.0
        targets = [np.full(8, 3.0) for _ in range(2)]
        model = fit_tiny(designs, targets)
        prediction = model.predict(designs[0], 0)
        assert np.allclose(prediction, 3.0, atol=0.2)

    def test_two_samples_per_state(self):
        rng = np.random.default_rng(2)
        designs = [rng.standard_normal((2, 4)) for _ in range(3)]
        targets = [rng.standard_normal(2) for _ in range(3)]
        model = fit_tiny(designs, targets)
        assert np.all(np.isfinite(model.coef_))

    def test_very_noisy_targets(self):
        rng = np.random.default_rng(3)
        designs = [rng.standard_normal((10, 6)) for _ in range(2)]
        targets = [100.0 * rng.standard_normal(10) for _ in range(2)]
        model = fit_tiny(designs, targets)
        assert np.all(np.isfinite(model.coef_))
        assert model.noise_std_ > 1.0

    def test_huge_target_scale(self):
        """Standardization keeps 1e9-scale targets numerically sane."""
        rng = np.random.default_rng(4)
        designs = [rng.standard_normal((10, 5)) for _ in range(2)]
        for d in designs:
            d[:, 0] = 1.0
        coef = np.array([2.4e9, 1e7, 0.0, 0.0, 0.0])
        targets = [d @ coef + 1e5 * rng.standard_normal(10) for d in designs]
        model = fit_tiny(designs, targets)
        prediction = model.predict(designs[0], 0)
        assert np.allclose(prediction, targets[0], rtol=0.05)

    def test_single_basis_column(self):
        rng = np.random.default_rng(5)
        designs = [np.ones((6, 1)) for _ in range(2)]
        targets = [np.full(6, 4.0), np.full(6, 5.0)]
        config = InitConfig(
            r0_grid=(0.5,), sigma0_grid=(0.1,), n_basis_grid=(1,), n_folds=2
        )
        model = CBMF(init_config=config, em_config=TINY_EM, seed=0).fit(
            designs, targets
        )
        assert model.predict(designs[0], 0)[0] == pytest.approx(4.0, abs=0.6)
        assert model.predict(designs[1], 1)[0] == pytest.approx(5.0, abs=0.6)

    def test_rejects_nan_targets(self):
        designs = [np.ones((4, 2))]
        targets = [np.array([1.0, np.nan, 2.0, 3.0])]
        with pytest.raises(ValueError, match="non-finite"):
            fit_tiny(designs, targets)

    def test_rejects_empty_states(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_tiny([], [])

    def test_mismatched_basis_width_rejected(self):
        rng = np.random.default_rng(6)
        designs = [rng.standard_normal((5, 3)), rng.standard_normal((5, 4))]
        targets = [rng.standard_normal(5) for _ in range(2)]
        with pytest.raises(ValueError, match="basis columns"):
            fit_tiny(designs, targets)

    def test_many_states_few_samples(self):
        """K >> N_k: the fusion regime — must stay finite and sane."""
        rng = np.random.default_rng(7)
        coef = np.zeros(10)
        coef[2] = 1.5
        designs, targets = [], []
        for k in range(20):
            d = rng.standard_normal((3, 10))
            designs.append(d)
            targets.append(d @ coef + 0.01 * rng.standard_normal(3))
        model = fit_tiny(designs, targets)
        assert np.all(np.isfinite(model.coef_))
        # The shared coefficient should be recovered by pooling.
        assert np.mean(model.coef_[:, 2]) == pytest.approx(1.5, abs=0.4)
