"""Cluster-test fixtures: a fitted model set, registry and store."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.cluster import export_model_store
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry


@pytest.fixture(autouse=True)
def no_zombie_shards():
    """Every shard process must be reaped by the end of each test.

    Regression guard for the ``_stop_all_shards`` zombie leak: a
    ``terminate()`` without a final ``join()`` left SIGTERM-ignoring
    (hung) workers alive and unterminated children unreaped. Module- or
    session-scoped clusters are still up during the check, so only
    fail on shard processes whose test finished — i.e. any alive shard
    after the grace period whose parent no longer tracks it.
    """
    yield
    import threading

    # Shards legitimately outlive a test while a module-/session-scoped
    # cluster fixture is still serving — recognizable by its live
    # gateway thread. With no gateway running, any alive shard is a
    # leak; give stragglers a short grace to be reaped.
    if any(
        t.name == "repro-cluster-gateway" and t.is_alive()
        for t in threading.enumerate()
    ):
        return
    deadline = time.monotonic() + 5.0
    while True:
        shards = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard-") and p.is_alive()
        ]
        if not shards:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"leaked shard processes after teardown: {shards}"
            )
        time.sleep(0.05)


@pytest.fixture(scope="session")
def cluster_modelset(lna_dataset) -> PerformanceModelSet:
    """A fast (S-OMP) model set over every LNA metric, 6 states."""
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture()
def registry(tmp_path) -> ModelRegistry:
    """An empty registry rooted in a fresh temp directory."""
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture()
def two_versions(registry, cluster_modelset):
    """``lna@v1`` and ``lna@v2`` pushed (identical content)."""
    return (
        registry.push("lna", cluster_modelset),
        registry.push("lna", cluster_modelset),
    )


@pytest.fixture()
def store_dir(tmp_path, registry, two_versions):
    """A store directory with ``lna@v1`` exported."""
    directory = tmp_path / "store"
    export_model_store(registry, ["lna@v1"], directory)
    return directory
