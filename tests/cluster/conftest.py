"""Cluster-test fixtures: a fitted model set, registry and store."""

from __future__ import annotations

import pytest

from repro.cluster import export_model_store
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry


@pytest.fixture(scope="session")
def cluster_modelset(lna_dataset) -> PerformanceModelSet:
    """A fast (S-OMP) model set over every LNA metric, 6 states."""
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture()
def registry(tmp_path) -> ModelRegistry:
    """An empty registry rooted in a fresh temp directory."""
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture()
def two_versions(registry, cluster_modelset):
    """``lna@v1`` and ``lna@v2`` pushed (identical content)."""
    return (
        registry.push("lna", cluster_modelset),
        registry.push("lna", cluster_modelset),
    )


@pytest.fixture()
def store_dir(tmp_path, registry, two_versions):
    """A store directory with ``lna@v1`` exported."""
    directory = tmp_path / "store"
    export_model_store(registry, ["lna@v1"], directory)
    return directory
