"""Wire-protocol round trips, malformed frames, and close semantics."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    read_frame,
    read_frame_async,
    send_frame,
    write_frame_async,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestBlockingRoundTrip:
    def test_header_and_arrays_preserved(self, pair):
        left, right = pair
        rng = np.random.default_rng(0)
        arrays = [
            rng.standard_normal((4, 7)),
            np.arange(12, dtype=np.int32).reshape(3, 4),
            np.array([True, False, True]),
        ]
        send_frame(left, {"kind": "predict", "id": 9}, arrays)
        header, got = read_frame(right)
        assert header["kind"] == "predict"
        assert header["id"] == 9
        assert len(got) == len(arrays)
        for sent, received in zip(arrays, got):
            assert received.dtype == sent.dtype
            assert received.shape == sent.shape
            assert np.array_equal(received, sent)

    def test_no_array_frame(self, pair):
        left, right = pair
        send_frame(left, {"kind": "ping"})
        header, arrays = read_frame(right)
        assert header["kind"] == "ping"
        assert arrays == []

    def test_non_contiguous_array_survives(self, pair):
        left, right = pair
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        sliced = base[:, ::2]  # non-contiguous view
        send_frame(left, {"kind": "predict"}, [sliced])
        _, (got,) = read_frame(right)
        assert np.array_equal(got, sliced)

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for i in range(5):
            send_frame(left, {"seq": i}, [np.full(3, float(i))])
        for i in range(5):
            header, (array,) = read_frame(right)
            assert header["seq"] == i
            assert np.array_equal(array, np.full(3, float(i)))


class TestBlockingCloseAndCorruption:
    def test_eoferror_on_closed_peer(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(EOFError):
            read_frame(right)

    def test_eoferror_mid_frame(self, pair):
        left, right = pair
        # A prefix promising more bytes than ever arrive.
        left.sendall(struct.pack("<IQ", 100, 0))
        left.close()
        with pytest.raises(EOFError):
            read_frame(right)

    def test_oversized_prefix_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("<IQ", 16, MAX_FRAME_BYTES))
        with pytest.raises(ProtocolError, match="bound"):
            read_frame(right)

    def test_short_payload_rejected(self, pair):
        left, right = pair
        # Header promises an 8-byte float64 array, payload carries none.
        header = (
            b'{"arrays": [{"shape": [1], "dtype": "float64"}]}'
        )
        left.sendall(struct.pack("<IQ", len(header), 0))
        left.sendall(header)
        with pytest.raises(ProtocolError, match="too short"):
            read_frame(right)

    def test_send_oversized_frame_rejected(self, pair):
        left, _ = pair

        class _Huge:
            """Stands in for an array too large to ever allocate."""

            nbytes = MAX_FRAME_BYTES

        with pytest.raises(ProtocolError, match="bound"):
            # Bypass ascontiguousarray by monkey-level construction:
            # a real oversized array is unaffordable, so check the
            # length guard directly.
            from repro.cluster import protocol

            protocol._check_lengths(64, MAX_FRAME_BYTES)
        assert _Huge.nbytes == MAX_FRAME_BYTES


class TestUntrustedHeaders:
    """Hardening against peers that control the JSON header.

    Regression guards: a negative shape entry used to flow through
    ``int(n)`` and make ``nbytes`` negative — the bounds check became
    vacuous and ``np.frombuffer`` got a garbage slice; trailing payload
    bytes the header did not account for were silently ignored.
    """

    def _send_raw(self, sock, header_bytes: bytes, payload: bytes = b""):
        sock.sendall(
            struct.pack("<IQ", len(header_bytes), len(payload))
        )
        sock.sendall(header_bytes)
        if payload:
            sock.sendall(payload)

    def test_negative_shape_entry_rejected(self, pair):
        left, right = pair
        header = b'{"arrays": [{"shape": [-1], "dtype": "float64"}]}'
        self._send_raw(left, header, b"\x00" * 8)
        with pytest.raises(ProtocolError, match="negative"):
            read_frame(right)

    def test_negative_inner_dimension_rejected(self, pair):
        left, right = pair
        header = (
            b'{"arrays": [{"shape": [2, -4], "dtype": "float64"}]}'
        )
        self._send_raw(left, header, b"\x00" * 16)
        with pytest.raises(ProtocolError, match="negative"):
            read_frame(right)

    def test_non_integer_shape_entry_rejected(self, pair):
        left, right = pair
        header = (
            b'{"arrays": [{"shape": [1.5], "dtype": "float64"}]}'
        )
        self._send_raw(left, header, b"\x00" * 8)
        with pytest.raises(ProtocolError, match="not an integer"):
            read_frame(right)

    def test_boolean_shape_entry_rejected(self, pair):
        left, right = pair
        header = (
            b'{"arrays": [{"shape": [true], "dtype": "float64"}]}'
        )
        self._send_raw(left, header, b"\x00" * 8)
        with pytest.raises(ProtocolError, match="not an integer"):
            read_frame(right)

    def test_overflowing_shape_product_rejected_without_allocation(
        self, pair
    ):
        left, right = pair
        # 2**40 * 2**40 float64 elements: the incremental product bound
        # must trip long before any allocation is attempted.
        header = (
            b'{"arrays": [{"shape": [1099511627776, 1099511627776], '
            b'"dtype": "float64"}]}'
        )
        self._send_raw(left, header, b"")
        with pytest.raises(ProtocolError, match="bound"):
            read_frame(right)

    def test_unknown_dtype_rejected(self, pair):
        left, right = pair
        header = b'{"arrays": [{"shape": [1], "dtype": "nonsense"}]}'
        self._send_raw(left, header, b"\x00" * 8)
        with pytest.raises(ProtocolError, match="dtype"):
            read_frame(right)

    def test_trailing_payload_bytes_rejected(self, pair):
        left, right = pair
        header = b'{"arrays": [{"shape": [1], "dtype": "float64"}]}'
        self._send_raw(left, header, b"\x00" * 12)  # 4 bytes extra
        with pytest.raises(ProtocolError, match="trailing"):
            read_frame(right)

    def test_payload_without_array_specs_rejected(self, pair):
        left, right = pair
        self._send_raw(left, b'{"kind": "ping"}', b"\x00" * 4)
        with pytest.raises(ProtocolError, match="trailing"):
            read_frame(right)

    def test_non_list_arrays_entry_rejected(self, pair):
        left, right = pair
        self._send_raw(left, b'{"arrays": 3}', b"")
        with pytest.raises(ProtocolError, match="list"):
            read_frame(right)

    def test_non_dict_array_spec_rejected(self, pair):
        left, right = pair
        self._send_raw(left, b'{"arrays": [7]}', b"")
        with pytest.raises(ProtocolError, match="dict"):
            read_frame(right)

    def test_non_json_header_rejected(self, pair):
        left, right = pair
        self._send_raw(left, b"\xff\xfenot json", b"")
        with pytest.raises(ProtocolError, match="JSON"):
            read_frame(right)

    def test_non_object_json_header_rejected(self, pair):
        left, right = pair
        self._send_raw(left, b"[1, 2, 3]", b"")
        with pytest.raises(ProtocolError, match="object"):
            read_frame(right)


class TestPropertyRoundTrip:
    """Property tests: round-trip fidelity and fuzzed-header rejection."""

    def test_round_trip_preserves_arbitrary_frames(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        dtypes = st.sampled_from(["float64", "float32", "int64", "uint8"])
        # min_size=1: ascontiguousarray promotes 0-d arrays to (1,) on
        # the send side, so only >=1-d shapes round-trip exactly (the
        # cluster never ships 0-d arrays).
        shapes = st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=1,
            max_size=3,
        )

        @settings(max_examples=40, deadline=None)
        @given(
            header=st.dictionaries(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("L", "N")
                    ),
                    min_size=1,
                    max_size=8,
                ).filter(lambda k: k != "arrays"),
                st.one_of(
                    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
                    st.text(max_size=16),
                    st.booleans(),
                ),
                max_size=4,
            ),
            specs=st.lists(
                st.tuples(dtypes, shapes), min_size=0, max_size=3
            ),
            seed=st.integers(min_value=0, max_value=2 ** 16),
        )
        def round_trip(header, specs, seed):
            rng = np.random.default_rng(seed)
            arrays = [
                (rng.standard_normal(shape) * 100).astype(dtype)
                for dtype, shape in specs
            ]
            left, right = socket.socketpair()
            try:
                send_frame(left, header, arrays)
                got_header, got_arrays = read_frame(right)
            finally:
                left.close()
                right.close()
            for key, value in header.items():
                assert got_header[key] == value
            assert len(got_arrays) == len(arrays)
            for sent, received in zip(arrays, got_arrays):
                assert received.dtype == sent.dtype
                assert received.shape == sent.shape
                assert np.array_equal(received, sent)

        round_trip()

    def test_fuzzed_headers_never_crash_the_reader(self):
        """Arbitrary header bytes + payload: the reader must answer with
        ProtocolError/EOFError, never die another way (no garbage
        arrays, no MemoryError from honoured bogus shapes)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=60, deadline=None)
        @given(
            header_bytes=st.binary(min_size=0, max_size=64),
            payload=st.binary(min_size=0, max_size=64),
        )
        def fuzz(header_bytes, payload):
            left, right = socket.socketpair()
            try:
                left.sendall(
                    struct.pack(
                        "<IQ", len(header_bytes), len(payload)
                    )
                )
                left.sendall(header_bytes)
                if payload:
                    left.sendall(payload)
                try:
                    header, arrays = read_frame(right)
                except (ProtocolError, EOFError):
                    return
                # A frame that decodes must account for every byte.
                assert isinstance(header, dict)
                assert sum(a.nbytes for a in arrays) == len(payload)
            finally:
                left.close()
                right.close()

        fuzz()


class TestAsyncRoundTrip:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_async_to_blocking_and_back(self, pair):
        left, right = pair
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 5))

        def shard_side():
            header, (got,) = read_frame(right)
            send_frame(right, {"kind": "result", "echo": header["id"]}, [got * 2])

        worker = threading.Thread(target=shard_side)
        worker.start()

        async def gateway_side():
            reader, writer = await asyncio.open_connection(sock=left)
            await write_frame_async(writer, {"kind": "predict", "id": 4}, [x])
            header, (doubled,) = await read_frame_async(reader)
            writer.close()
            return header, doubled

        header, doubled = self._run(gateway_side())
        worker.join(timeout=10)
        assert header == {"kind": "result", "echo": 4, "arrays": [
            {"shape": [6, 5], "dtype": "float64"}
        ]}
        assert np.array_equal(doubled, x * 2)

    def test_async_close_raises_incomplete_read(self, pair):
        left, right = pair

        async def gateway_side():
            reader, writer = await asyncio.open_connection(sock=left)
            right.close()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame_async(reader)
            writer.close()

        self._run(gateway_side())
