"""Wire-protocol round trips, malformed frames, and close semantics."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    read_frame,
    read_frame_async,
    send_frame,
    write_frame_async,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestBlockingRoundTrip:
    def test_header_and_arrays_preserved(self, pair):
        left, right = pair
        rng = np.random.default_rng(0)
        arrays = [
            rng.standard_normal((4, 7)),
            np.arange(12, dtype=np.int32).reshape(3, 4),
            np.array([True, False, True]),
        ]
        send_frame(left, {"kind": "predict", "id": 9}, arrays)
        header, got = read_frame(right)
        assert header["kind"] == "predict"
        assert header["id"] == 9
        assert len(got) == len(arrays)
        for sent, received in zip(arrays, got):
            assert received.dtype == sent.dtype
            assert received.shape == sent.shape
            assert np.array_equal(received, sent)

    def test_no_array_frame(self, pair):
        left, right = pair
        send_frame(left, {"kind": "ping"})
        header, arrays = read_frame(right)
        assert header["kind"] == "ping"
        assert arrays == []

    def test_non_contiguous_array_survives(self, pair):
        left, right = pair
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        sliced = base[:, ::2]  # non-contiguous view
        send_frame(left, {"kind": "predict"}, [sliced])
        _, (got,) = read_frame(right)
        assert np.array_equal(got, sliced)

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for i in range(5):
            send_frame(left, {"seq": i}, [np.full(3, float(i))])
        for i in range(5):
            header, (array,) = read_frame(right)
            assert header["seq"] == i
            assert np.array_equal(array, np.full(3, float(i)))


class TestBlockingCloseAndCorruption:
    def test_eoferror_on_closed_peer(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(EOFError):
            read_frame(right)

    def test_eoferror_mid_frame(self, pair):
        left, right = pair
        # A prefix promising more bytes than ever arrive.
        left.sendall(struct.pack("<IQ", 100, 0))
        left.close()
        with pytest.raises(EOFError):
            read_frame(right)

    def test_oversized_prefix_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("<IQ", 16, MAX_FRAME_BYTES))
        with pytest.raises(ProtocolError, match="bound"):
            read_frame(right)

    def test_short_payload_rejected(self, pair):
        left, right = pair
        # Header promises an 8-byte float64 array, payload carries none.
        header = (
            b'{"arrays": [{"shape": [1], "dtype": "float64"}]}'
        )
        left.sendall(struct.pack("<IQ", len(header), 0))
        left.sendall(header)
        with pytest.raises(ProtocolError, match="too short"):
            read_frame(right)

    def test_send_oversized_frame_rejected(self, pair):
        left, _ = pair

        class _Huge:
            """Stands in for an array too large to ever allocate."""

            nbytes = MAX_FRAME_BYTES

        with pytest.raises(ProtocolError, match="bound"):
            # Bypass ascontiguousarray by monkey-level construction:
            # a real oversized array is unaffordable, so check the
            # length guard directly.
            from repro.cluster import protocol

            protocol._check_lengths(64, MAX_FRAME_BYTES)
        assert _Huge.nbytes == MAX_FRAME_BYTES


class TestAsyncRoundTrip:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_async_to_blocking_and_back(self, pair):
        left, right = pair
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 5))

        def shard_side():
            header, (got,) = read_frame(right)
            send_frame(right, {"kind": "result", "echo": header["id"]}, [got * 2])

        worker = threading.Thread(target=shard_side)
        worker.start()

        async def gateway_side():
            reader, writer = await asyncio.open_connection(sock=left)
            await write_frame_async(writer, {"kind": "predict", "id": 4}, [x])
            header, (doubled,) = await read_frame_async(reader)
            writer.close()
            return header, doubled

        header, doubled = self._run(gateway_side())
        worker.join(timeout=10)
        assert header == {"kind": "result", "echo": 4, "arrays": [
            {"shape": [6, 5], "dtype": "float64"}
        ]}
        assert np.array_equal(doubled, x * 2)

    def test_async_close_raises_incomplete_read(self, pair):
        left, right = pair

        async def gateway_side():
            reader, writer = await asyncio.open_connection(sock=left)
            right.close()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame_async(reader)
            writer.close()

        self._run(gateway_side())
