"""ClusterMetrics counters and the text report renderer."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterMetrics, format_cluster_report
from repro.serving.metrics import aggregate_snapshots


def _engine_snapshot(requests, hits, misses, batches, rows):
    return {
        "requests": requests,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "batches": batches,
        "batched_rows": rows,
        "mean_batch_size": rows / batches if batches else 0.0,
        "max_batch_size": rows,
        "hot_swaps": 0,
        "swap_failures": 0,
    }


class TestClusterMetrics:
    def test_record_batch_counts_both_lanes(self):
        metrics = ClusterMetrics()
        metrics.record_batch(0, "m@v1", 4, 0.010)
        metrics.record_batch(1, "m@v2", 2, 0.020)
        snapshot = metrics.snapshot()
        assert snapshot["shards"][0]["requests"] == 4
        assert snapshot["shards"][1]["requests"] == 2
        assert snapshot["versions"]["m@v1"]["rows"] == 4
        assert snapshot["versions"]["m@v2"]["rows"] == 2
        assert snapshot["shards"][0]["p50_latency_ms"] == pytest.approx(10.0)

    def test_error_counters_and_totals(self):
        metrics = ClusterMetrics()
        metrics.record_shed(0, "m@v1", 3)
        metrics.record_deadline_expired(1, "m@v1", 2)
        metrics.record_crash_failures(1, 5, key="m@v1")
        metrics.record_crash_failures(0, 1)  # no version attribution
        metrics.record_respawn(1)
        assert metrics.total_shed == 3
        assert metrics.total_deadline_expired == 2
        assert metrics.total_respawns == 1
        snapshot = metrics.snapshot()
        assert snapshot["shards"][1]["crash_failures"] == 5
        assert snapshot["versions"]["m@v1"]["crash_failures"] == 5
        assert snapshot["shards"][0]["crash_failures"] == 1

    def test_empty_lane_percentiles_are_none(self):
        metrics = ClusterMetrics()
        metrics.record_shed(0, "m@v1", 1)
        snapshot = metrics.snapshot()
        assert snapshot["shards"][0]["p50_latency_ms"] is None

    def test_latency_window_bounded(self):
        metrics = ClusterMetrics(latency_window=4)
        for _ in range(10):
            metrics.record_batch(0, "m@v1", 1, 1.0)
        metrics.record_batch(0, "m@v1", 1, 3.0)
        # Window keeps only the last 4 observations (1,1,1,3).
        assert metrics.snapshot()["shards"][0]["p50_latency_ms"] == (
            pytest.approx(1000.0)
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError, match="latency_window"):
            ClusterMetrics(latency_window=0)


class TestFormatClusterReport:
    def test_shard_and_version_tables(self):
        metrics = ClusterMetrics()
        metrics.record_batch(0, "m@v1", 4, 0.010)
        metrics.record_shed(1, "m@v2", 2)
        report = format_cluster_report(metrics.snapshot())
        assert "CLUSTER REPORT" in report
        assert "SHARD" in report
        assert "VERSION" in report
        assert "m@v1" in report
        assert "m@v2" in report

    def test_routes_section_shows_canary_weight(self):
        report = format_cluster_report(
            ClusterMetrics().snapshot(),
            routes={
                "m": {
                    "stable": "m@v1",
                    "canary": "m@v2",
                    "weight": 0.25,
                    "shard": 0,
                },
                "plain": {
                    "stable": "plain@v1",
                    "canary": None,
                    "weight": 0.0,
                    "shard": 1,
                },
            },
        )
        assert "m: stable=m@v1 canary=m@v2 weight=0.25" in report
        assert "plain: stable=plain@v1" in report

    def test_engines_section_sums_every_shard(self):
        """Regression: the aggregate line is the fleet total, not
        shard 0's private counters."""
        engines = [
            _engine_snapshot(10, 6, 4, 2, 10),
            _engine_snapshot(30, 0, 30, 5, 30),
        ]
        report = format_cluster_report(
            ClusterMetrics().snapshot(), engine_snapshots=engines
        )
        total = aggregate_snapshots(engines)
        assert total["requests"] == 40
        assert total["cache_hits"] == 6
        assert "ENGINES (2 shards)" in report
        assert "shard 0: requests=10" in report
        assert "shard 1: requests=30" in report
        assert "aggregate: requests=40 cache_hits=6" in report

    def test_aggregate_hit_rate_recomputed_from_sums(self):
        engines = [
            _engine_snapshot(10, 10, 0, 1, 10),   # 100% hit rate
            _engine_snapshot(90, 0, 90, 9, 90),   # 0% hit rate
        ]
        total = aggregate_snapshots(engines)
        # 10 hits of 100 lookups — not the 50% a naive mean would give.
        assert total["cache_hit_rate"] == pytest.approx(0.1)
        assert total["p50_latency_ms"] is None
        assert total["n_processes"] == 2
