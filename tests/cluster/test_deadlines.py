"""Monotonic relative-budget deadlines under wall-clock jumps.

Regression suite for the absolute-``time.time()`` deadline design: the
gateway used to stamp a wall-clock instant into each frame and the
shard compared it against *its own* wall clock, so an NTP step (or any
clock skew between processes — guaranteed cross-host) either expired
every in-flight request spuriously (backward jump on the gateway,
``deadline`` already in the shard's past) or immortalized them
(forward jump). The wire now carries a relative remaining budget and
every process tracks expiry on its private ``time.monotonic()`` clock,
so monkeypatching ``time.time`` by ±1 h in the gateway process — the
shard workers are separate unpatched processes, exactly the skewed-peer
topology — must change nothing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.errors import DeadlineError
from repro.faults import FaultPlan

REAL_TIME = time.time


@pytest.fixture()
def design(cluster_modelset):
    rng = np.random.default_rng(3)
    return rng.standard_normal((3, cluster_modelset.basis.n_variables))


@pytest.mark.parametrize("jump_s", [3600.0, -3600.0])
def test_wall_clock_jump_never_expires_or_immortalizes(
    registry, two_versions, cluster_modelset, design, monkeypatch, jump_s
):
    """±1 h wall-clock step in the gateway: requests still answered,
    bit-identical, with zero spurious deadline expiries."""
    config = ClusterConfig(n_shards=2, default_deadline_s=10.0)
    with ClusterService(registry, ["lna@v1"], config) as cluster:
        cluster.predict_many("lna", design, [0, 1, 2])  # warm, unpatched
        monkeypatch.setattr(time, "time", lambda: REAL_TIME() + jump_s)
        results = cluster.predict_many("lna", design, [0, 1, 2])
        direct = cluster_modelset.predict(design[:1], 0)
        for metric, value in results[0].values.items():
            assert abs(value - float(direct[metric][0])) <= 1e-15
        snapshot = cluster.metrics.snapshot()
        assert all(
            lane["deadline_expired"] == 0
            for lane in snapshot["shards"].values()
        )


def test_yield_survives_wall_clock_jump(
    registry, two_versions, monkeypatch
):
    config = ClusterConfig(n_shards=1, default_deadline_s=30.0)
    with ClusterService(registry, ["lna@v1"], config) as cluster:
        monkeypatch.setattr(time, "time", lambda: REAL_TIME() - 3600.0)
        reply = cluster.yield_report(
            "lna", ["nf_db<=1.6"], n_samples=50, seed=2
        )
        assert reply["key"] == "lna@v1"
        assert cluster.metrics.total_deadline_expired == 0


def test_hung_shard_still_expires_on_monotonic_budget(
    registry, two_versions, design, monkeypatch
):
    """A forward wall-clock jump must not immortalize a request on a
    hung shard: expiry tracks the monotonic budget, nothing else."""
    config = ClusterConfig(
        n_shards=1, default_deadline_s=30.0, max_respawns=0
    )
    with ClusterService(registry, ["lna@v1"], config) as cluster:
        cluster.predict_many("lna", design, [0, 0, 0])  # warm path
        cluster.inject_faults(FaultPlan.parse("shard:hang@0"))
        monkeypatch.setattr(time, "time", lambda: REAL_TIME() + 3600.0)
        started = time.monotonic()
        with pytest.raises(DeadlineError):
            cluster.predict_many(
                "lna", design, [0, 0, 0], deadline_s=0.5
            )
        elapsed = time.monotonic() - started
        assert 0.4 <= elapsed < 10.0
        assert cluster.metrics.total_deadline_expired > 0
