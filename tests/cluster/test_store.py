"""Shared-memory model store: export, verify, memmap, remap in a child."""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ModelStore, export_model_store
from repro.cluster.store import (
    STORE_MANIFEST_NAME,
    mapped_pss_bytes,
    process_pss_bytes,
)
from repro.errors import CheckpointError, ServingError


class TestExport:
    def test_creates_manifest_and_blocks(self, registry, store_dir):
        manifest = json.loads(
            (store_dir / STORE_MANIFEST_NAME).read_text()
        )
        assert list(manifest["entries"]) == ["lna@v1"]
        entry = manifest["entries"]["lna@v1"]
        assert entry["name"] == "lna"
        assert entry["version"] == 1
        for relpath, spec in entry["blocks"].items():
            path = store_dir / relpath
            assert path.exists()
            assert path.stat().st_size == spec["nbytes"]
            assert spec["dtype"] == "<f8"

    def test_records_one_coef_and_offsets_block_per_metric(
        self, registry, store_dir
    ):
        manifest = json.loads(
            (store_dir / STORE_MANIFEST_NAME).read_text()
        )
        entry = manifest["entries"]["lna@v1"]
        for metric in entry["metrics"]:
            assert f"lna@v1/{metric}.coef.bin" in entry["blocks"]
            assert f"lna@v1/{metric}.offsets.bin" in entry["blocks"]

    def test_idempotent_reexport(self, registry, store_dir):
        before = (store_dir / STORE_MANIFEST_NAME).read_text()
        export_model_store(registry, ["lna@v1"], store_dir)
        assert (store_dir / STORE_MANIFEST_NAME).read_text() == before

    def test_extends_with_new_key(self, registry, store_dir):
        export_model_store(registry, ["lna@v2"], store_dir)
        assert ModelStore.open(store_dir).keys() == ["lna@v1", "lna@v2"]


class TestOpen:
    def test_round_trip_bit_identical(
        self, registry, store_dir, cluster_modelset
    ):
        store = ModelStore.open(store_dir)
        entry, direct, _ = registry.load_models("lna@v1")
        mapped = store.frozen_models("lna@v1")
        assert sorted(mapped) == sorted(direct)
        rng = np.random.default_rng(0)
        design = rng.standard_normal(
            (7, next(iter(direct.values())).coef_.shape[1])
        )
        for metric, frozen in direct.items():
            for state in range(frozen.coef_.shape[0]):
                expected = frozen.predict(design, state)
                got = mapped[metric].predict(design, state)
                assert np.all(np.abs(got - expected) <= 1e-15)

    def test_served_model_matches_modelset(
        self, store_dir, cluster_modelset
    ):
        served = ModelStore.open(store_dir).served_model("lna@v1")
        x = np.random.default_rng(1).standard_normal(
            (5, served.basis.n_variables)
        )
        outputs = served.predict_design(served.basis.expand(x), 2)
        direct = cluster_modelset.predict(x, 2)
        for metric in served.metric_names:
            assert np.all(np.abs(outputs[metric] - direct[metric]) <= 1e-15)

    def test_blocks_are_readonly_memmaps(self, store_dir):
        store = ModelStore.open(store_dir)
        models = store.frozen_models("lna@v1")
        frozen = next(iter(models.values()))
        assert isinstance(frozen.coef_.base, np.memmap) or isinstance(
            frozen.coef_, np.memmap
        )
        with pytest.raises((ValueError, OSError)):
            frozen.coef_[0, 0] = 1.0

    def test_nbytes_and_touch(self, store_dir):
        store = ModelStore.open(store_dir)
        assert store.nbytes > 0
        store.touch()  # faults pages in without raising

    def test_unknown_key(self, store_dir):
        store = ModelStore.open(store_dir)
        with pytest.raises(KeyError, match="nope"):
            store.frozen_models("nope@v1")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            ModelStore.open(tmp_path / "empty")


class TestCorruption:
    def _first_block(self, store_dir) -> Path:
        manifest = json.loads(
            (store_dir / STORE_MANIFEST_NAME).read_text()
        )
        relpath = sorted(manifest["entries"]["lna@v1"]["blocks"])[0]
        return store_dir / relpath

    def test_corrupted_block_names_the_file(self, store_dir):
        path = self._first_block(store_dir)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum mismatch") as info:
            ModelStore.open(store_dir)
        assert info.value.path == str(path)
        assert path.name in str(info.value)

    def test_truncated_block(self, store_dir):
        path = self._first_block(store_dir)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(CheckpointError, match="truncated") as info:
            ModelStore.open(store_dir)
        assert info.value.path == str(path)

    def test_missing_block(self, store_dir):
        path = self._first_block(store_dir)
        path.unlink()
        with pytest.raises(CheckpointError, match="missing") as info:
            ModelStore.open(store_dir)
        assert info.value.path == str(path)

    def test_verify_false_skips_checksums(self, store_dir):
        path = self._first_block(store_dir)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        ModelStore.open(store_dir, verify=False)  # no raise


class TestServedModelRequirements:
    def test_frozen_entry_without_basis_refuses_serving(
        self, registry, cluster_modelset, tmp_path
    ):
        frozen = next(iter(cluster_modelset.freeze().values()))
        registry.push("bare", frozen)
        directory = tmp_path / "bare_store"
        export_model_store(registry, ["bare@v1"], directory)
        store = ModelStore.open(directory)
        assert store.frozen_models("bare@v1")  # raw blocks still usable
        with pytest.raises(ServingError, match="basis"):
            store.served_model("bare@v1")


class TestPss:
    def test_process_pss_reads_kernel_counter(self):
        value = process_pss_bytes()
        if value is None:
            pytest.skip("smaps_rollup unsupported on this kernel")
        assert value > 0

    def test_mapped_pss_counts_only_store_pages(self, store_dir, tmp_path):
        store = ModelStore.open(store_dir)
        assert mapped_pss_bytes(tmp_path / "elsewhere") == 0
        store.touch()
        value = mapped_pss_bytes(store_dir)
        if value is None:
            pytest.skip("smaps unsupported on this kernel")
        # Sole mapper: charged the full store, within per-block page
        # rounding (every block mapping rounds up to 4 KiB pages).
        n_blocks = sum(
            len(entry["blocks"])
            for entry in store.manifest["entries"].values()
        )
        assert store.nbytes * 0.9 <= value
        assert value <= store.nbytes + (n_blocks + 1) * 2 * 4096


_CHILD_SCRIPT = """
import sys
import numpy as np
from repro.cluster import ModelStore

store_dir, key, x_path, out_path = sys.argv[1:5]
store = ModelStore.open(store_dir)
x = np.load(x_path)
served = store.served_model(key)
design = served.basis.expand(x)
result = {}
for state in range(served.n_states):
    values = served.predict_design(design, state)
    for metric, column in values.items():
        result[f"{metric}@{state}"] = column
np.savez(out_path, **result)
"""


class TestFreshProcessRemap:
    def test_spawned_process_predictions_bit_identical(
        self, registry, store_dir, cluster_modelset, tmp_path
    ):
        """A fresh interpreter remapping the store answers identically."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((6, cluster_modelset.basis.n_variables))
        x_path = tmp_path / "x.npy"
        out_path = tmp_path / "child_out.npz"
        np.save(x_path, x)
        script = tmp_path / "child.py"
        script.write_text(_CHILD_SCRIPT)
        src = Path(__file__).resolve().parents[2] / "src"
        subprocess.run(
            [
                sys.executable, str(script), str(store_dir), "lna@v1",
                str(x_path), str(out_path),
            ],
            check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        with np.load(out_path) as child:
            for state in range(cluster_modelset.n_states):
                direct = cluster_modelset.predict(x, state)
                for metric, expected in direct.items():
                    got = child[f"{metric}@{state}"]
                    assert np.all(np.abs(got - expected) <= 1e-15), (
                        metric, state
                    )


class TestKronFittedModels:
    def test_kron_fitted_modelset_round_trips(self, tmp_path, monkeypatch):
        """Frozen models produced by the Kronecker fit path survive the
        registry push -> store export -> memmap reload chain with
        bit-identical predictions (serving is solver-agnostic)."""
        from repro.circuits.sweep import SweptLNA
        from repro.modelset import PerformanceModelSet
        from repro.serving import ModelRegistry
        from repro.simulate.montecarlo import MonteCarloEngine

        monkeypatch.setenv("REPRO_POSTERIOR_SOLVER", "kron")
        sweep = SweptLNA(n_points=6)
        train = MonteCarloEngine(sweep, seed=3).run(5)
        models = PerformanceModelSet.fit_dataset(
            train, method="cbmf", metrics=("s21_db",), seed=3
        )
        assert models.model("s21_db").predictor.solver == "kron"
        monkeypatch.delenv("REPRO_POSTERIOR_SOLVER")

        registry = ModelRegistry(tmp_path / "registry")
        entry = registry.push("lna_sweep", models)
        directory = tmp_path / "store"
        export_model_store(registry, [entry.key], directory)

        mapped = ModelStore.open(directory).frozen_models(entry.key)
        frozen = models.freeze()["s21_db"]
        rng = np.random.default_rng(8)
        design = rng.standard_normal((4, frozen.coef_.shape[1]))
        for state in (0, 3, 5):
            expected = frozen.predict(design, state)
            got = mapped["s21_db"].predict(design, state)
            assert np.all(np.abs(got - expected) <= 1e-15)
