"""Gateway behaviour: routing, canaries, validation, fleet reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.errors import ServingError
from repro.serving import ModelRegistry
from repro.serving.metrics import aggregate_snapshots


@pytest.fixture(scope="module")
def cluster_registry(tmp_path_factory, cluster_modelset) -> ModelRegistry:
    """alpha@v1/v2 and beta@v1/v2 pushed (all identical content)."""
    registry = ModelRegistry(
        tmp_path_factory.mktemp("gateway") / "registry"
    )
    for name in ("alpha", "beta"):
        registry.push(name, cluster_modelset)
        registry.push(name, cluster_modelset)
    return registry


@pytest.fixture(scope="module")
def cluster(cluster_registry):
    """A started two-shard cluster serving alpha@v1 and beta@v1."""
    service = ClusterService(
        cluster_registry,
        keys=["alpha@v1", "beta@v1"],
        config=ClusterConfig(n_shards=2),
    )
    with service:
        yield service


@pytest.fixture()
def design(cluster_modelset):
    rng = np.random.default_rng(11)
    return rng.standard_normal((4, cluster_modelset.basis.n_variables))


class TestPredict:
    def test_single_point_bit_identical(self, cluster, cluster_modelset, design):
        result = cluster.predict("alpha", design[0], 1)
        direct = cluster_modelset.predict(design[:1], 1)
        assert result.version == 1
        for metric, value in result.values.items():
            assert abs(value - float(direct[metric][0])) <= 1e-15

    def test_batch_bit_identical_across_states(
        self, cluster, cluster_modelset, design
    ):
        states = [0, 1, 2, 0]
        results = cluster.predict_many("beta", design, states)
        assert len(results) == len(states)
        for row, (result, state) in enumerate(zip(results, states)):
            direct = cluster_modelset.predict(design[row:row + 1], state)
            for metric, value in result.values.items():
                assert abs(value - float(direct[metric][0])) <= 1e-15

    def test_empty_batch_short_circuits(self, cluster, cluster_modelset):
        x = np.empty((0, cluster_modelset.basis.n_variables))
        assert cluster.predict_many("alpha", x, []) == []

    def test_names_spread_across_shards(self, cluster):
        routes = cluster.describe_routes()
        assert routes["alpha"]["shard"] != routes["beta"]["shard"]


class TestCanary:
    def _versions(self, cluster, design, n=10):
        return [
            cluster.predict("alpha", design[0], 0).version
            for _ in range(n)
        ]

    def test_weight_zero_never_routes_canary(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 0.0)
        try:
            assert self._versions(cluster, design) == [1] * 10
        finally:
            cluster.clear_canary("alpha")

    def test_weight_one_always_routes_canary(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 1.0)
        try:
            assert self._versions(cluster, design) == [2] * 10
        finally:
            cluster.clear_canary("alpha")

    def test_weight_half_alternates_exactly(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 0.5)
        try:
            assert self._versions(cluster, design) == [1, 2] * 5
        finally:
            cluster.clear_canary("alpha")

    def test_canary_shares_stable_shard(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 0.5)
        try:
            assert (
                cluster._key_shard["alpha@v2"]
                == cluster._key_shard["alpha@v1"]
            )
            routes = cluster.describe_routes()
            assert routes["alpha"]["canary"] == "alpha@v2"
            assert routes["alpha"]["weight"] == 0.5
        finally:
            cluster.clear_canary("alpha")

    def test_clear_canary_restores_stable(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 1.0)
        cluster.clear_canary("alpha")
        assert self._versions(cluster, design) == [1] * 10
        assert cluster.describe_routes()["alpha"]["canary"] is None

    def test_promote_makes_canary_stable(self, cluster, design):
        cluster.set_canary("alpha", "alpha@v2", 0.25)
        assert cluster.promote("alpha") == "alpha@v2"
        try:
            routes = cluster.describe_routes()["alpha"]
            assert routes["stable"] == "alpha@v2"
            assert routes["canary"] is None
            assert self._versions(cluster, design) == [2] * 10
        finally:
            cluster.load("alpha@v1")  # restore for other tests

    def test_promote_without_canary_refuses(self, cluster):
        with pytest.raises(ServingError, match="no canary"):
            cluster.promote("beta")

    def test_weight_out_of_range(self, cluster):
        with pytest.raises(ValueError, match="weight"):
            cluster.set_canary("alpha", "alpha@v2", 1.5)

    def test_canary_must_be_same_name(self, cluster):
        with pytest.raises(ServingError, match="not a version"):
            cluster.set_canary("alpha", "beta@v2", 0.5)


class TestHotSwap:
    def test_load_switches_stable_version(self, cluster, design):
        assert cluster.load("beta@v2") == "beta@v2"
        try:
            result = cluster.predict("beta", design[0], 0)
            assert result.version == 2
        finally:
            cluster.load("beta@v1")


class TestFleetReporting:
    def test_engine_metrics_aggregate_across_all_shards(
        self, cluster, design
    ):
        """Regression: the report must sum every shard's engine, not
        just shard 0's — alpha and beta live on different shards and
        both see traffic here."""
        for _ in range(3):
            cluster.predict_many("alpha", design, [0] * len(design))
            cluster.predict_many("beta", design, [1] * len(design))
        snapshots = cluster.shard_engine_snapshots()
        assert len(snapshots) == 2
        engines = [s["engine"] for s in snapshots]
        assert all(engine["requests"] > 0 for engine in engines)
        total = aggregate_snapshots(engines)
        assert total["requests"] == sum(e["requests"] for e in engines)
        assert total["requests"] > max(e["requests"] for e in engines)
        report = cluster.report()
        assert f"requests={total['requests']}" in report
        assert "aggregate:" in report

    def test_snapshot_has_per_shard_and_per_version_lanes(
        self, cluster, design
    ):
        cluster.predict_many("alpha", design, [0] * len(design))
        snapshot = cluster.metrics.snapshot()
        assert "alpha@v1" in snapshot["versions"]
        assert snapshot["versions"]["alpha@v1"]["requests"] > 0
        shard = cluster.describe_routes()["alpha"]["shard"]
        assert snapshot["shards"][shard]["requests"] > 0

    def test_shard_snapshots_carry_store_numbers(self, cluster):
        for snap in cluster.shard_engine_snapshots():
            assert snap["store_bytes"] > 0
            assert snap["pid"] > 0


class TestReplication:
    def test_replicas_spread_primary_first(self, cluster_registry):
        service = ClusterService(
            cluster_registry,
            keys=["alpha@v1", "beta@v1"],
            config=ClusterConfig(n_shards=3, replication=2),
        )
        with service:
            routes = service.describe_routes()
            for name in ("alpha", "beta"):
                replicas = routes[name]["replicas"]
                assert len(replicas) == 2
                assert len(set(replicas)) == 2
                assert routes[name]["shard"] == replicas[0]
            # Canary versions are co-placed on the stable's full
            # replica set, not just its primary.
            service.set_canary("alpha", "alpha@v2", 0.5)
            assert (
                service._key_replicas["alpha@v2"]
                == service._key_replicas["alpha@v1"]
            )
            service.clear_canary("alpha")

    def test_replication_clamped_to_fleet_size(self, cluster_registry):
        service = ClusterService(
            cluster_registry,
            keys=["alpha@v1"],
            config=ClusterConfig(n_shards=2, replication=8),
        )
        with service:
            replicas = service.describe_routes()["alpha"]["replicas"]
            assert sorted(replicas) == [0, 1]

    def test_replicated_predict_bit_identical(
        self, cluster_registry, cluster_modelset, design
    ):
        service = ClusterService(
            cluster_registry,
            keys=["alpha@v1"],
            config=ClusterConfig(n_shards=2, replication=2),
        )
        with service:
            results = service.predict_many("alpha", design, [0] * 4)
            direct = cluster_modelset.predict(design, 0)
            for row, result in enumerate(results):
                for metric, value in result.values.items():
                    assert (
                        abs(value - float(direct[metric][row])) <= 1e-15
                    )


class TestValidation:
    def test_unknown_name(self, cluster, design):
        with pytest.raises(ServingError, match="no model named"):
            cluster.predict("nope", design[0], 0)

    def test_one_dimensional_x(self, cluster, design):
        with pytest.raises(ValueError, match="2-D"):
            cluster.predict_many("alpha", design[0], [0])

    def test_states_length_mismatch(self, cluster, design):
        with pytest.raises(ValueError, match="states"):
            cluster.predict_many("alpha", design, [0])

    def test_nonpositive_deadline(self, cluster, design):
        with pytest.raises(ValueError, match="deadline"):
            cluster.predict_many(
                "alpha", design, [0] * len(design), deadline_s=0.0
            )

    def test_not_started(self, cluster_registry):
        service = ClusterService(cluster_registry, keys=["alpha@v1"])
        with pytest.raises(ServingError, match="not started"):
            service.predict("alpha", np.zeros(3), 0)

    def test_double_start_refused(self, cluster):
        with pytest.raises(ServingError, match="already started"):
            cluster.start()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"replication": 0},
            {"max_queue_rows": 0},
            {"max_batch_rows": 0},
            {"default_deadline_s": 0.0},
            {"max_respawns": -1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)
