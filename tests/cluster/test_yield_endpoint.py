"""The cluster ``yield`` endpoint: shard-computed fleet yield reports.

Acceptance: the shard's answer is bit-equal to the in-process
computation on the same frozen artifacts (the per-state streams are
deterministic), the learned correlation survives the store round-trip
so shrinkage runs *inside* the shard, and the reply carries the
tracemalloc peak that proves no MK × MK covariance was densified.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.yield_estimation import Specification
from repro.basis.polynomial import LinearBasis
from repro.cluster import ClusterConfig, ClusterService
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.errors import ServingError
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry
from repro.yields import compute_yield_report

SPECS = ["nf_db<=1.6", "gain_db>=24"]


@pytest.fixture(scope="module")
def corr_modelset(lna_dataset) -> PerformanceModelSet:
    """A fast C-BMF fit of one metric — carries the learned K×K R."""
    train, _ = lna_dataset.split(25)
    basis = LinearBasis(train.n_variables)
    model = CBMF(
        init_config=InitConfig(
            r0_grid=(0.9,), sigma0_grid=(0.15,), n_basis_grid=(10,),
            n_folds=2,
        ),
        em_config=EmConfig(max_iterations=5),
        seed=0,
    ).fit(basis.expand_states(train.inputs()), train.targets("nf_db"))
    return PerformanceModelSet({"nf_db": model}, basis)


@pytest.fixture(scope="module")
def yield_registry(
    tmp_path_factory, cluster_modelset, corr_modelset
) -> ModelRegistry:
    registry = ModelRegistry(
        tmp_path_factory.mktemp("yield") / "registry"
    )
    registry.push("lna", cluster_modelset)
    registry.push("corr", corr_modelset)
    return registry


@pytest.fixture(scope="module")
def cluster(yield_registry):
    service = ClusterService(
        yield_registry,
        keys=["lna@v1", "corr@v1"],
        config=ClusterConfig(n_shards=2),
    )
    with service:
        yield service


class TestHappyPath:
    def test_reply_structure(self, cluster, cluster_modelset):
        reply = cluster.yield_report("lna", SPECS, n_samples=100, seed=3)
        assert reply["version"] == 1
        assert reply["peak_bytes"] > 0
        report = reply["report"]
        assert report["n_states"] == cluster_modelset.n_states
        assert report["n_samples"] == 100
        yields = np.asarray(report["yield_shrunk"])
        assert np.all((0.0 <= yields) & (yields <= 1.0))
        assert np.all(
            np.asarray(report["yield_ci_lower"])
            <= np.asarray(report["yield_ci_upper"])
        )

    def test_shard_answer_matches_in_process(self, cluster, corr_modelset):
        """Deterministic per-state streams: the shard's report equals
        the same computation on the locally-frozen artifacts."""
        reply = cluster.yield_report(
            "corr", ["nf_db<=1.5"], n_samples=200, seed=9
        )
        local = compute_yield_report(
            corr_modelset.freeze(),
            corr_modelset.basis,
            [Specification.parse("nf_db<=1.5")],
            n_samples=200,
            seed=9,
        )
        report = reply["report"]
        assert np.allclose(
            report["yield_raw"], local.yield_raw, rtol=0, atol=1e-12
        )
        assert np.allclose(
            report["yield_shrunk"], local.yield_shrunk,
            rtol=0, atol=1e-12,
        )
        assert report["fleet_yield"] == pytest.approx(
            local.fleet_yield, abs=1e-12
        )

    def test_correlation_survives_store_roundtrip(self, cluster):
        """The C-BMF model's learned R reaches the shard, so shrinkage
        runs correlation-shared inside the cluster."""
        reply = cluster.yield_report(
            "corr", ["nf_db<=1.5"], n_samples=100, seed=1
        )
        assert reply["report"]["correlation_shared"] is True
        assert np.isfinite(reply["report"]["tau2"])

    def test_somp_model_falls_back_to_independent(self, cluster):
        reply = cluster.yield_report("lna", SPECS, n_samples=100, seed=1)
        assert reply["report"]["correlation_shared"] is False

    def test_spec_forms_equivalent(self, cluster):
        from_text = cluster.yield_report(
            "lna", ["nf_db<=1.6"], n_samples=100, seed=2
        )
        from_objects = cluster.yield_report(
            "lna", [Specification("nf_db", 1.6, "max")],
            n_samples=100, seed=2,
        )
        from_dicts = cluster.yield_report(
            "lna", [{"metric": "nf_db", "bound": 1.6, "kind": "max"}],
            n_samples=100, seed=2,
        )
        assert (
            from_text["report"]["yield_shrunk"]
            == from_objects["report"]["yield_shrunk"]
            == from_dicts["report"]["yield_shrunk"]
        )

    def test_states_subset(self, cluster, cluster_modelset):
        full = cluster.yield_report("lna", SPECS, n_samples=100, seed=4)
        subset = cluster.yield_report(
            "lna", SPECS, n_samples=100, seed=4, states=[1, 3]
        )
        report = subset["report"]
        assert report["states"] == [1, 3]
        assert len(report["yield_shrunk"]) == 2
        # Shrinkage used the full fleet; the subset is a client-side view.
        assert report["yield_shrunk"][0] == (
            full["report"]["yield_shrunk"][1]
        )
        assert report["yield_shrunk"][1] == (
            full["report"]["yield_shrunk"][3]
        )


class TestValidation:
    def test_empty_specs_rejected(self, cluster):
        with pytest.raises(ValueError, match="at least one"):
            cluster.yield_report("lna", [])

    def test_bad_deadline_rejected(self, cluster):
        with pytest.raises(ValueError, match="deadline"):
            cluster.yield_report("lna", SPECS, deadline_s=0.0)

    def test_unknown_name_rejected(self, cluster):
        with pytest.raises(ServingError, match="no model named"):
            cluster.yield_report("nope", SPECS)

    def test_unknown_metric_is_a_serving_error(self, cluster):
        """The shard answers with a structured error instead of dying."""
        with pytest.raises(ServingError, match="zzz"):
            cluster.yield_report("lna", ["zzz<=1.0"], n_samples=50)
        # The shard survived: the next request succeeds.
        reply = cluster.yield_report("lna", SPECS, n_samples=50, seed=0)
        assert reply["version"] == 1
