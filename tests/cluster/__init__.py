"""Tests of the horizontal serving cluster (repro.cluster)."""
