"""The TCP / Unix listener and client library in front of the gateway.

Acceptance: results over the wire are bit-identical to the in-process
API; concurrent clients are served correctly; a mid-frame client
disconnect or a corrupt/oversized length prefix is answered (where the
stream still permits) with a ``protocol`` error frame and a closed
connection — never a listener or gateway death; the full error
taxonomy crosses the wire as the same exception classes; and the
control plane (load / canary / routes / report) works remotely.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster import (
    AsyncClusterClient,
    ClusterClient,
    ClusterConfig,
    ClusterListener,
    ClusterService,
    ProtocolError,
    parse_address,
)
from repro.errors import ServingError
from repro.faults import FaultPlan
from repro.serving import ModelRegistry

SPECS = ["nf_db<=1.6", "gain_db>=24"]


@pytest.fixture(scope="module")
def net_registry(tmp_path_factory, cluster_modelset) -> ModelRegistry:
    registry = ModelRegistry(tmp_path_factory.mktemp("net") / "registry")
    registry.push("lna", cluster_modelset)
    registry.push("lna", cluster_modelset)
    return registry


@pytest.fixture(scope="module")
def net_cluster(net_registry):
    service = ClusterService(
        net_registry,
        keys=["lna@v1"],
        config=ClusterConfig(n_shards=2),
    )
    with service:
        yield service


@pytest.fixture(scope="module")
def listener(net_cluster):
    with ClusterListener(net_cluster, "127.0.0.1:0") as ln:
        yield ln


@pytest.fixture()
def client(listener):
    with ClusterClient(listener.address) as c:
        yield c


@pytest.fixture()
def design(cluster_modelset):
    rng = np.random.default_rng(21)
    return rng.standard_normal((5, cluster_modelset.basis.n_variables))


class TestAddressParsing:
    def test_tcp(self):
        assert parse_address("127.0.0.1:9000") == (
            "tcp", ("127.0.0.1", 9000),
        )

    def test_ipv6_brackets(self):
        assert parse_address("[::1]:9000") == ("tcp", ("::1", 9000))

    def test_unix(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    @pytest.mark.parametrize(
        "bad",
        ["", "unix:", "nohost", ":9000", "host:notaport", "host:70000"],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestPredictOverTcp:
    def test_bit_identical_to_direct(
        self, client, cluster_modelset, design
    ):
        states = [0, 1, 2, 0, 1]
        results = client.predict_many("lna", design, states)
        assert len(results) == len(states)
        for row, (result, state) in enumerate(zip(results, states)):
            direct = cluster_modelset.predict(design[row:row + 1], state)
            assert result.version == 1
            for metric, value in result.values.items():
                assert abs(value - float(direct[metric][0])) <= 1e-15

    def test_single_point(self, client, cluster_modelset, design):
        result = client.predict("lna", design[0], 2)
        direct = cluster_modelset.predict(design[:1], 2)
        for metric, value in result.values.items():
            assert abs(value - float(direct[metric][0])) <= 1e-15

    def test_empty_batch(self, client, cluster_modelset):
        x = np.empty((0, cluster_modelset.basis.n_variables))
        assert client.predict_many("lna", x, []) == []

    def test_matches_in_process_api(
        self, client, net_cluster, design
    ):
        over_wire = client.predict_many("lna", design, [0] * len(design))
        in_process = net_cluster.predict_many(
            "lna", design, [0] * len(design)
        )
        assert [r.values for r in over_wire] == [
            r.values for r in in_process
        ]

    def test_concurrent_clients(
        self, listener, cluster_modelset, design
    ):
        errors, hits = [], []

        def hammer(state: int) -> None:
            try:
                with ClusterClient(listener.address) as c:
                    for _ in range(10):
                        results = c.predict_many(
                            "lna", design, [state] * len(design)
                        )
                        assert len(results) == len(design)
                        hits.append(state)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(hits) == 40

    def test_ping(self, client):
        assert client.ping() is True


class TestAsyncClient:
    def test_round_trip(self, listener, cluster_modelset, design):
        async def run():
            async with await AsyncClusterClient.connect(
                listener.address
            ) as c:
                assert await c.ping() is True
                return await c.predict_many(
                    "lna", design, [1] * len(design)
                )

        results = asyncio.run(run())
        direct = cluster_modelset.predict(design, 1)
        for row, result in enumerate(results):
            for metric, value in result.values.items():
                assert abs(value - float(direct[metric][row])) <= 1e-15


class TestUnixSocket:
    def test_round_trip(self, net_cluster, tmp_path, design):
        path = tmp_path / "cluster.sock"
        with ClusterListener(net_cluster, f"unix:{path}") as ln:
            assert ln.address == f"unix:{path}"
            with ClusterClient(ln.address) as c:
                results = c.predict_many("lna", design, [0] * len(design))
                assert len(results) == len(design)


class TestErrorTaxonomy:
    def test_unknown_name_is_serving_error(self, client, design):
        with pytest.raises(ServingError, match="no model named"):
            client.predict_many("nope", design, [0] * len(design))

    def test_states_mismatch_is_value_error(self, client, design):
        with pytest.raises(ValueError, match="states"):
            client.predict_many("lna", design, [0])

    def test_nonpositive_deadline_is_value_error(self, client, design):
        with pytest.raises(ValueError, match="deadline"):
            client.predict_many(
                "lna", design, [0] * len(design), deadline_s=0.0
            )

    def test_unknown_kind_is_protocol_error_and_keeps_connection(
        self, client
    ):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            client._roundtrip({"kind": "frobnicate"})
        assert client.ping() is True  # connection survived


class TestMalformedPeers:
    def _raw_connect(self, listener) -> socket.socket:
        host, port = parse_address(listener.address)[1]
        return socket.create_connection((host, port), timeout=10)

    def test_mid_frame_disconnect_leaves_gateway_serving(
        self, listener, design
    ):
        sock = self._raw_connect(listener)
        # Half a length prefix, then vanish mid-frame.
        sock.sendall(b"\x04\x00")
        sock.close()
        with ClusterClient(listener.address) as c:
            assert c.ping() is True

    def test_oversized_prefix_answered_with_protocol_frame(
        self, listener
    ):
        from repro.cluster.protocol import read_frame

        sock = self._raw_connect(listener)
        try:
            # Header length beyond MAX_FRAME_BYTES: must be answered
            # with a protocol error frame, then the connection closed.
            sock.sendall(struct.pack("<IQ", 1 << 31, 0))
            header, _ = read_frame(sock)
            assert header["kind"] == "error"
            assert header["etype"] == "protocol"
            with pytest.raises(EOFError):
                read_frame(sock)
        finally:
            sock.close()
        with ClusterClient(listener.address) as c:
            assert c.ping() is True

    def test_corrupt_header_bytes_answered_with_protocol_frame(
        self, listener
    ):
        from repro.cluster.protocol import read_frame

        sock = self._raw_connect(listener)
        try:
            garbage = b"\xff\x00garbage-not-json"
            sock.sendall(struct.pack("<IQ", len(garbage), 0))
            sock.sendall(garbage)
            header, _ = read_frame(sock)
            assert header["kind"] == "error"
            assert header["etype"] == "protocol"
        finally:
            sock.close()


class TestControlPlane:
    def test_routes(self, client):
        routes = client.describe_routes()
        assert routes["lna"]["stable"] == "lna@v1"
        assert isinstance(routes["lna"]["replicas"], list)

    def test_report(self, client):
        text = client.report()
        assert "CLUSTER REPORT" in text
        assert "lna@v1" in text

    def test_load_and_canary_cycle(self, client, net_cluster, design):
        try:
            assert client.load("lna@v2") == "lna@v2"
            result = client.predict("lna", design[0], 0)
            assert result.version == 2
            assert client.load("lna@v1") == "lna@v1"
            assert client.set_canary("lna", "lna@v2", 1.0) == "lna@v2"
            assert client.predict("lna", design[0], 0).version == 2
            client.clear_canary("lna")
            assert client.predict("lna", design[0], 0).version == 1
            client.set_canary("lna", "lna@v2", 0.5)
            assert client.promote("lna") == "lna@v2"
        finally:
            net_cluster.load("lna@v1")
            net_cluster.clear_canary("lna")

    def test_yield_report_matches_in_process(self, client, net_cluster):
        over_wire = client.yield_report(
            "lna", SPECS, n_samples=60, seed=7
        )
        in_process = net_cluster.yield_report(
            "lna", SPECS, n_samples=60, seed=7
        )
        assert over_wire["key"] == in_process["key"]
        assert over_wire["report"] == in_process["report"]


class TestNetFaults:
    def test_drop_closes_unanswered_and_recovers(
        self, net_cluster, design
    ):
        plan = FaultPlan.parse("net:drop@0")
        with ClusterListener(
            net_cluster, "127.0.0.1:0", faults=plan
        ) as ln:
            with ClusterClient(ln.address) as c:
                with pytest.raises((EOFError, ConnectionError, OSError)):
                    c.ping()
            with ClusterClient(ln.address) as c:
                assert c.ping() is True  # only frame 0 was dropped

    def test_slow_delays_but_answers(self, net_cluster, design):
        plan = FaultPlan.parse("net:slow@0:0.05")
        with ClusterListener(
            net_cluster, "127.0.0.1:0", faults=plan
        ) as ln:
            with ClusterClient(ln.address) as c:
                results = c.predict_many(
                    "lna", design, [0] * len(design)
                )
                assert len(results) == len(design)


class TestListenerLifecycle:
    def test_requires_started_service(self, net_registry):
        service = ClusterService(net_registry, keys=["lna@v1"])
        with pytest.raises(ServingError, match="not started"):
            ClusterListener(service).start()

    def test_double_start_refused(self, listener):
        with pytest.raises(ServingError, match="already started"):
            listener.start()

    def test_address_before_start(self, net_cluster):
        ln = ClusterListener(net_cluster)
        with pytest.raises(ServingError, match="not started"):
            _ = ln.address

    def test_bad_address_fails_fast(self, net_cluster):
        with pytest.raises(ValueError):
            ClusterListener(net_cluster, "not-an-address")

    def test_stop_is_idempotent(self, net_cluster):
        ln = ClusterListener(net_cluster, "127.0.0.1:0").start()
        ln.stop()
        ln.stop()
