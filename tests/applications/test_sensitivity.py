"""Tests for sensitivity ranking and analytic yield."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.applications.sensitivity import format_ranking, rank_sensitivities
from repro.applications.yield_estimation import (
    Specification,
    YieldEstimator,
    analytic_spec_yield,
)
from repro.basis.polynomial import LinearBasis, QuadraticBasis
from repro.core.frozen import FrozenModel


def planted_model(n_vars=6, n_states=2):
    """Frozen linear model with known coefficients."""
    coef = np.zeros((n_states, n_vars + 1))
    coef[0] = [10.0, 0.1, -3.0, 0.0, 1.0, 0.0, 0.5]
    coef[1] = [12.0, 0.2, -1.0, 0.0, 2.0, 0.0, 0.5]
    return FrozenModel(coef), LinearBasis(n_vars)


class TestRankSensitivities:
    def test_order_and_content(self):
        model, basis = planted_model()
        ranking = rank_sensitivities(model, basis, state=0, top=3)
        assert [e.index for e in ranking] == [1, 3, 5]  # |−3|, |1|, |0.5|
        assert ranking[0].coefficient == -3.0

    def test_custom_names(self):
        model, basis = planted_model()
        names = [f"dev{i}.vth" for i in range(6)]
        ranking = rank_sensitivities(
            model, basis, 0, variable_names=names, top=1
        )
        assert ranking[0].variable == "dev1.vth"

    def test_top_capped(self):
        model, basis = planted_model()
        ranking = rank_sensitivities(model, basis, 0, top=100)
        assert len(ranking) == 6

    def test_state_specific(self):
        model, basis = planted_model()
        r0 = rank_sensitivities(model, basis, 0, top=1)
        r1 = rank_sensitivities(model, basis, 1, top=1)
        assert r0[0].index == 1  # −3 dominates state 0
        assert r1[0].index == 3  # +2 dominates state 1

    def test_rejects_nonlinear_basis(self):
        model, _ = planted_model()
        with pytest.raises(TypeError, match="LinearBasis"):
            rank_sensitivities(model, QuadraticBasis(3), 0)

    def test_name_count_checked(self):
        model, basis = planted_model()
        with pytest.raises(ValueError, match="names"):
            rank_sensitivities(model, basis, 0, variable_names=["a"])

    def test_format(self):
        model, basis = planted_model()
        text = format_ranking(
            rank_sensitivities(model, basis, 0, top=3), unit="dB"
        )
        assert "variable" in text
        assert "-3" in text

    def test_lna_ranking_names_core_devices(self, tiny_lna, lna_dataset):
        """On the real LNA the top gain sensitivities should be physical
        (core/DAC/tank devices), not peripheral padding."""
        from repro.baselines.somp import SOMP

        train, _ = lna_dataset.split(30)
        basis = LinearBasis(lna_dataset.n_variables)
        model = SOMP(n_select=15, seed=0).fit(
            basis.expand_states(train.inputs()), train.targets("gain_db")
        )
        ranking = rank_sensitivities(
            model,
            basis,
            0,
            variable_names=tiny_lna.process_model.variable_names,
            top=5,
        )
        assert all("LNAPER" not in e.variable for e in ranking)


class TestAnalyticYield:
    def test_matches_normal_cdf(self):
        model, basis = planted_model()
        spec = Specification("m", 11.0, "max")
        sigma = np.linalg.norm(model.coef_[0][1:])
        expected = norm.cdf((11.0 - 10.0) / sigma)
        assert analytic_spec_yield(model, basis, spec, 0) == pytest.approx(
            expected
        )

    def test_min_spec(self):
        model, basis = planted_model()
        spec = Specification("m", 11.0, "min")
        a = analytic_spec_yield(model, basis, spec, 0)
        b = analytic_spec_yield(
            model, basis, Specification("m", 11.0, "max"), 0
        )
        assert a + b == pytest.approx(1.0)

    def test_matches_monte_carlo_estimator(self):
        model, basis = planted_model()
        spec = Specification("m", 11.0, "max")
        estimator = YieldEstimator({"m": model}, basis)
        mc = estimator.state_yields([spec], n_samples=200_000, seed=0)[0]
        exact = analytic_spec_yield(model, basis, spec, 0)
        assert mc == pytest.approx(exact, abs=0.01)

    def test_offsets_included(self):
        model, basis = planted_model()
        model.offsets_ = np.array([5.0, 0.0])
        spec = Specification("m", 16.0, "max")  # mean now 15
        sigma = np.linalg.norm(model.coef_[0][1:])
        assert analytic_spec_yield(model, basis, spec, 0) == pytest.approx(
            norm.cdf(1.0 / sigma)
        )

    def test_deterministic_model(self):
        model = FrozenModel(np.array([[7.0, 0.0, 0.0]]))
        basis = LinearBasis(2)
        assert analytic_spec_yield(
            model, basis, Specification("m", 8.0, "max"), 0
        ) == 1.0
        assert analytic_spec_yield(
            model, basis, Specification("m", 6.0, "max"), 0
        ) == 0.0

    def test_rejects_nonlinear_basis(self):
        model, _ = planted_model()
        with pytest.raises(TypeError):
            analytic_spec_yield(
                model, QuadraticBasis(3), Specification("m", 1.0), 0
            )
