"""Tests for the post-silicon tuning policy."""

import numpy as np
import pytest

from repro.applications.tuning import TuningPolicy
from repro.applications.yield_estimation import Specification
from repro.baselines.somp import SOMP
from repro.basis.polynomial import LinearBasis


@pytest.fixture(scope="module")
def policy(lna_dataset):
    train, _ = lna_dataset.split(30)
    basis = LinearBasis(lna_dataset.n_variables)
    designs = basis.expand_states(train.inputs())
    models = {
        metric: SOMP(n_select=20, seed=0).fit(designs, train.targets(metric))
        for metric in lna_dataset.metric_names
    }
    specs = [
        Specification("nf_db", 1.55, "max"),
        Specification("gain_db", 24.5, "min"),
    ]
    return TuningPolicy(models, basis, specs)


class TestSelectStates:
    def test_shape_and_range(self, policy):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((100, policy.basis.n_variables))
        choice = policy.select_states(x)
        assert choice.shape == (100,)
        assert np.all(choice >= -1)
        assert np.all(choice < policy.n_states)

    def test_deterministic(self, policy):
        x = np.random.default_rng(1).standard_normal(
            (20, policy.basis.n_variables)
        )
        assert np.array_equal(
            policy.select_states(x), policy.select_states(x)
        )

    def test_selected_state_actually_passes(self, policy):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, policy.basis.n_variables))
        choice = policy.select_states(x)
        passes = policy._estimator.pass_matrix(x, policy.specs)
        for row, state in enumerate(choice):
            if state >= 0:
                assert passes[row, state]
            else:
                assert not passes[row].any()


class TestSummarize:
    def test_tuned_at_least_fixed(self, policy):
        summary = policy.summarize(n_samples=3000, seed=0)
        assert summary.tuned_yield >= summary.best_fixed_yield - 1e-12
        assert summary.tuning_gain >= -1e-12

    def test_state_yields_consistent(self, policy):
        summary = policy.summarize(n_samples=3000, seed=1)
        assert summary.state_yields.shape == (policy.n_states,)
        best = summary.state_yields[summary.best_fixed_state]
        assert best == pytest.approx(summary.best_fixed_yield)
        assert best == summary.state_yields.max()

    def test_yields_in_unit_interval(self, policy):
        summary = policy.summarize(n_samples=1000, seed=2)
        assert 0.0 <= summary.best_fixed_yield <= 1.0
        assert 0.0 <= summary.tuned_yield <= 1.0


class TestValidation:
    def test_spec_metric_must_have_model(self, lna_dataset):
        train, _ = lna_dataset.split(30)
        basis = LinearBasis(lna_dataset.n_variables)
        designs = basis.expand_states(train.inputs())
        models = {
            "nf_db": SOMP(n_select=20, seed=0).fit(designs, train.targets("nf_db"))
        }
        with pytest.raises(KeyError):
            TuningPolicy(
                models, basis, [Specification("gain_db", 20.0, "min")]
            )
