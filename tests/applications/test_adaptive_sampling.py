"""Tests for uncertainty-driven adaptive sampling."""

import numpy as np
import pytest

from repro.applications.adaptive_sampling import AdaptiveSampler
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.8), sigma0_grid=(0.1, 0.3), n_basis_grid=(5, 10),
    n_folds=4,
)
FAST_EM = EmConfig(max_iterations=10)


def make_sampler(circuit, **overrides):
    defaults = dict(
        metric="gain_db",
        target_percent=1.0,
        batch_per_state=4,
        initial_per_state=8,
        max_rounds=3,
        n_probe=16,
        seed=0,
        init_config=FAST_INIT,
        em_config=FAST_EM,
    )
    defaults.update(overrides)
    return AdaptiveSampler(circuit, **defaults)


class TestAdaptiveSampler:
    def test_runs_and_accumulates(self, tiny_lna):
        result = make_sampler(tiny_lna, target_percent=1e-6).run()
        # Impossible target → runs all rounds, budget grows each round.
        assert not result.converged
        assert len(result.rounds) == 3
        budgets = [r.n_samples_total for r in result.rounds]
        assert budgets == sorted(budgets)
        assert budgets[1] - budgets[0] == 4 * tiny_lna.n_states
        assert result.n_samples_total == budgets[-1]

    def test_converges_on_loose_target(self, tiny_lna):
        result = make_sampler(tiny_lna, target_percent=50.0).run()
        assert result.converged
        assert len(result.rounds) == 1

    def test_predicted_error_decreases(self, tiny_lna):
        result = make_sampler(tiny_lna, target_percent=1e-6).run()
        errors = [r.predicted_error_percent for r in result.rounds]
        assert errors[-1] < errors[0]

    def test_model_usable(self, tiny_lna):
        result = make_sampler(tiny_lna, max_rounds=1).run()
        from repro.basis.polynomial import LinearBasis

        basis = LinearBasis(tiny_lna.n_variables)
        x = np.random.default_rng(0).standard_normal(
            (5, tiny_lna.n_variables)
        )
        prediction = result.model.predict(basis.expand(x), 0)
        assert prediction.shape == (5,)

    def test_rejects_unknown_metric(self, tiny_lna):
        with pytest.raises(KeyError, match="metric"):
            AdaptiveSampler(tiny_lna, "phase_noise")

    def test_rejects_bad_target(self, tiny_lna):
        with pytest.raises(ValueError):
            AdaptiveSampler(tiny_lna, "gain_db", target_percent=0.0)
