"""Tests for yield estimation."""

import numpy as np
import pytest

from repro.applications.yield_estimation import (
    Specification,
    YieldEstimator,
    monte_carlo_yield,
)
from repro.baselines.somp import SOMP
from repro.basis.polynomial import LinearBasis


class TestSpecification:
    def test_max_spec(self):
        spec = Specification("nf_db", 3.0, "max")
        assert spec.passes(np.array([2.0, 3.0, 4.0])).tolist() == [
            True,
            True,
            False,
        ]

    def test_min_spec(self):
        spec = Specification("gain_db", 15.0, "min")
        assert spec.passes(np.array([14.0, 16.0])).tolist() == [False, True]

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            Specification("nf_db", 3.0, "between")


@pytest.fixture(scope="module")
def fitted_models(lna_dataset):
    train, _ = lna_dataset.split(30)
    basis = LinearBasis(lna_dataset.n_variables)
    designs = basis.expand_states(train.inputs())
    models = {}
    for metric in lna_dataset.metric_names:
        models[metric] = SOMP(n_select=20, seed=0).fit(
            designs, train.targets(metric)
        )
    return models, basis


class TestYieldEstimator:
    def test_state_yields_in_unit_interval(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("nf_db", 1.6, "max")]
        yields = estimator.state_yields(specs, n_samples=2000, seed=0)
        assert yields.shape == (estimator.n_states,)
        assert np.all((0.0 <= yields) & (yields <= 1.0))

    def test_loose_spec_full_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("nf_db", 100.0, "max")]
        yields = estimator.state_yields(specs, n_samples=500, seed=1)
        assert np.allclose(yields, 1.0)

    def test_impossible_spec_zero_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("gain_db", 1000.0, "min")]
        yields = estimator.state_yields(specs, n_samples=500, seed=2)
        assert np.allclose(yields, 0.0)

    def test_tunable_yield_at_least_best_state(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [
            Specification("nf_db", 1.55, "max"),
            Specification("gain_db", 24.0, "min"),
        ]
        fixed = estimator.state_yields(specs, n_samples=3000, seed=3)
        tunable = estimator.tunable_yield(specs, n_samples=3000, seed=3)
        assert tunable >= fixed.max() - 1e-12

    def test_tighter_spec_lowers_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        loose = estimator.state_yields(
            [Specification("nf_db", 2.0, "max")], 2000, seed=4
        )
        tight = estimator.state_yields(
            [Specification("nf_db", 1.4, "max")], 2000, seed=4
        )
        assert np.all(tight <= loose + 1e-12)

    def test_unknown_metric_rejected(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        with pytest.raises(KeyError):
            estimator.state_yields(
                [Specification("zzz", 1.0, "max")], 100
            )

    def test_empty_specs_rejected(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        with pytest.raises(ValueError, match="at least one"):
            estimator.state_yields([], 100)

    def test_model_yield_matches_direct_mc(self, fitted_models, tiny_lna):
        """Model-based yield should track the simulator's own yield."""
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        spec = Specification("gain_db", 24.0, "min")
        model_yield = estimator.state_yields([spec], 4000, seed=5)[0]
        direct = monte_carlo_yield(tiny_lna, 0, [spec], 300, seed=5)
        assert abs(model_yield - direct) < 0.15


class TestMonteCarloYield:
    def test_bounds(self, tiny_lna):
        spec = Specification("nf_db", 100.0, "max")
        assert monte_carlo_yield(tiny_lna, 0, [spec], 20, seed=0) == 1.0

    def test_state_range_checked(self, tiny_lna):
        spec = Specification("nf_db", 3.0, "max")
        with pytest.raises(IndexError):
            monte_carlo_yield(tiny_lna, 99, [spec], 10)

    def test_empty_specs_rejected(self, tiny_lna):
        with pytest.raises(ValueError):
            monte_carlo_yield(tiny_lna, 0, [], 10)
