"""Tests for yield estimation."""

import numpy as np
import pytest

from repro.applications.yield_estimation import (
    Specification,
    YieldEstimator,
    analytic_spec_yield,
    monte_carlo_yield,
)
from repro.baselines.least_squares import LeastSquares
from repro.baselines.somp import SOMP
from repro.basis.polynomial import LinearBasis
from repro.errors import NumericalError


class TestSpecification:
    def test_max_spec(self):
        spec = Specification("nf_db", 3.0, "max")
        assert spec.passes(np.array([2.0, 3.0, 4.0])).tolist() == [
            True,
            True,
            False,
        ]

    def test_min_spec(self):
        spec = Specification("gain_db", 15.0, "min")
        assert spec.passes(np.array([14.0, 16.0])).tolist() == [False, True]

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            Specification("nf_db", 3.0, "between")

    def test_rejects_non_finite_bound(self):
        """A NaN/inf bound would silently pass or fail every sample."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                Specification("nf_db", bad, "max")


class TestSpecificationParse:
    def test_max(self):
        spec = Specification.parse("nf_db<=3.0")
        assert spec == Specification("nf_db", 3.0, "max")

    def test_min(self):
        spec = Specification.parse("gain_db>=15")
        assert spec == Specification("gain_db", 15.0, "min")

    def test_whitespace_tolerated(self):
        spec = Specification.parse("  s21_db >= 16.5 ")
        assert spec.metric == "s21_db"
        assert spec.bound == 16.5

    def test_negative_and_scientific_bounds(self):
        assert Specification.parse("iip3_dbm>=-5.5").bound == -5.5
        assert Specification.parse("leak<=1e-6").bound == 1e-6

    def test_missing_operator_rejected(self):
        with pytest.raises(ValueError, match="must look like"):
            Specification.parse("nf_db=3.0")

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError, match="empty metric"):
            Specification.parse("<=3.0")

    def test_non_numeric_bound_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            Specification.parse("nf_db<=low")

    def test_non_finite_bound_rejected_via_parse(self):
        with pytest.raises(ValueError, match="finite"):
            Specification.parse("nf_db<=inf")


@pytest.fixture(scope="module")
def fitted_models(lna_dataset):
    train, _ = lna_dataset.split(30)
    basis = LinearBasis(lna_dataset.n_variables)
    designs = basis.expand_states(train.inputs())
    models = {}
    for metric in lna_dataset.metric_names:
        models[metric] = SOMP(n_select=20, seed=0).fit(
            designs, train.targets(metric)
        )
    return models, basis


class TestYieldEstimator:
    def test_state_yields_in_unit_interval(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("nf_db", 1.6, "max")]
        yields = estimator.state_yields(specs, n_samples=2000, seed=0)
        assert yields.shape == (estimator.n_states,)
        assert np.all((0.0 <= yields) & (yields <= 1.0))

    def test_loose_spec_full_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("nf_db", 100.0, "max")]
        yields = estimator.state_yields(specs, n_samples=500, seed=1)
        assert np.allclose(yields, 1.0)

    def test_impossible_spec_zero_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [Specification("gain_db", 1000.0, "min")]
        yields = estimator.state_yields(specs, n_samples=500, seed=2)
        assert np.allclose(yields, 0.0)

    def test_tunable_yield_at_least_best_state(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        specs = [
            Specification("nf_db", 1.55, "max"),
            Specification("gain_db", 24.0, "min"),
        ]
        fixed = estimator.state_yields(specs, n_samples=3000, seed=3)
        tunable = estimator.tunable_yield(specs, n_samples=3000, seed=3)
        assert tunable >= fixed.max() - 1e-12

    def test_tighter_spec_lowers_yield(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        loose = estimator.state_yields(
            [Specification("nf_db", 2.0, "max")], 2000, seed=4
        )
        tight = estimator.state_yields(
            [Specification("nf_db", 1.4, "max")], 2000, seed=4
        )
        assert np.all(tight <= loose + 1e-12)

    def test_unknown_metric_rejected(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        with pytest.raises(KeyError):
            estimator.state_yields(
                [Specification("zzz", 1.0, "max")], 100
            )

    def test_empty_specs_rejected(self, fitted_models):
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        with pytest.raises(ValueError, match="at least one"):
            estimator.state_yields([], 100)

    def test_model_yield_matches_direct_mc(self, fitted_models, tiny_lna):
        """Model-based yield should track the simulator's own yield."""
        models, basis = fitted_models
        estimator = YieldEstimator(models, basis)
        spec = Specification("gain_db", 24.0, "min")
        model_yield = estimator.state_yields([spec], 4000, seed=5)[0]
        direct = monte_carlo_yield(tiny_lna, 0, [spec], 300, seed=5)
        assert abs(model_yield - direct) < 0.15


class _NanModel:
    """Stub estimator whose predictions go non-finite at one state."""

    n_states = 2

    def predict(self, design, state):
        values = np.ones(design.shape[0])
        if state == 1:
            values[0] = np.nan
        return values


class _LinearCircuit:
    """Duck-typed circuit whose metrics are exactly linear in x."""

    n_variables = 4
    states = ("s0", "s1", "s2")
    n_states = 3

    def __init__(self):
        rng = np.random.default_rng(17)
        self.intercepts = rng.normal(2.0, 0.3, self.n_states)
        self.weights = rng.normal(0.0, 0.5, (self.n_states, self.n_variables))

    def evaluate_x(self, x, state):
        k = self.states.index(state)
        return {
            "gain": float(self.intercepts[k] + self.weights[k] @ x)
        }


class TestNumericalErrors:
    def test_pass_matrix_rejects_non_finite_predictions(self):
        estimator = YieldEstimator({"m": _NanModel()}, LinearBasis(3))
        spec = Specification("m", 1.5, "max")
        with pytest.raises(NumericalError, match="'m'.*state 1"):
            estimator.pass_matrix(np.zeros((4, 3)), [spec])

    def test_monte_carlo_yield_rejects_non_finite_circuit_values(self):
        class NanCircuit(_LinearCircuit):
            def evaluate_x(self, x, state):
                return {"gain": float("nan")}

        spec = Specification("gain", 2.0, "min")
        with pytest.raises(NumericalError, match="non-finite 'gain'"):
            monte_carlo_yield(NanCircuit(), 0, [spec], 5, seed=0)


class TestLinearCircuitAgreement:
    """On an exactly-linear circuit the model fit is exact, so the
    model-based estimator, the direct circuit Monte Carlo and the
    closed-form normal-CDF yield must all agree tightly."""

    @pytest.fixture(scope="class")
    def fitted(self):
        circuit = _LinearCircuit()
        rng = np.random.default_rng(3)
        basis = LinearBasis(circuit.n_variables)
        inputs = [
            rng.standard_normal((60, circuit.n_variables))
            for _ in range(circuit.n_states)
        ]
        targets = [
            np.array([
                circuit.evaluate_x(row, circuit.states[k])["gain"]
                for row in x
            ])
            for k, x in enumerate(inputs)
        ]
        model = LeastSquares().fit(basis.expand_states(inputs), targets)
        return circuit, model, basis

    def test_estimator_matches_direct_mc(self, fitted):
        circuit, model, basis = fitted
        estimator = YieldEstimator({"gain": model}, basis)
        spec = Specification("gain", 2.0, "min")
        model_yields = estimator.state_yields([spec], 20_000, seed=5)
        for k in range(circuit.n_states):
            direct = monte_carlo_yield(circuit, k, [spec], 2_000, seed=5)
            assert abs(model_yields[k] - direct) < 0.04

    def test_estimator_matches_analytic(self, fitted):
        circuit, model, basis = fitted
        estimator = YieldEstimator({"gain": model}, basis)
        spec = Specification("gain", 2.0, "min")
        model_yields = estimator.state_yields([spec], 50_000, seed=6)
        for k in range(circuit.n_states):
            exact = analytic_spec_yield(model, basis, spec, k)
            assert abs(model_yields[k] - exact) < 0.015


class TestMonteCarloYield:
    def test_bounds(self, tiny_lna):
        spec = Specification("nf_db", 100.0, "max")
        assert monte_carlo_yield(tiny_lna, 0, [spec], 20, seed=0) == 1.0

    def test_state_range_checked(self, tiny_lna):
        spec = Specification("nf_db", 3.0, "max")
        with pytest.raises(IndexError):
            monte_carlo_yield(tiny_lna, 99, [spec], 10)

    def test_empty_specs_rejected(self, tiny_lna):
        with pytest.raises(ValueError):
            monte_carlo_yield(tiny_lna, 0, [], 10)
