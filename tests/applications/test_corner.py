"""Tests for worst-case corner extraction."""

import numpy as np
import pytest

from repro.applications.corner_extraction import extract_worst_case_corner
from repro.basis.polynomial import LinearBasis, QuadraticBasis
from repro.baselines.least_squares import Ridge


def fitted_linear_model(seed=0, n_vars=6, n_states=2):
    rng = np.random.default_rng(seed)
    basis = LinearBasis(n_vars)
    coef = rng.standard_normal((n_states, n_vars + 1))
    designs, targets = [], []
    for k in range(n_states):
        x = rng.standard_normal((50, n_vars))
        design = basis.expand(x)
        designs.append(design)
        targets.append(design @ coef[k])
    model = Ridge(alpha=1e-8).fit(designs, targets)
    return model, basis, coef


class TestLinearClosedForm:
    def test_corner_on_budget_sphere(self):
        model, basis, _ = fitted_linear_model()
        corner = extract_worst_case_corner(model, basis, 0, sigma_budget=3.0)
        assert corner.sigma_norm == pytest.approx(3.0)

    def test_max_corner_aligns_with_gradient(self):
        model, basis, coef = fitted_linear_model()
        corner = extract_worst_case_corner(model, basis, 0, direction="max")
        weights = coef[0][1:]
        cosine = corner.x @ weights / (
            np.linalg.norm(corner.x) * np.linalg.norm(weights)
        )
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_max_beats_random_points(self):
        model, basis, _ = fitted_linear_model(1)
        corner = extract_worst_case_corner(
            model, basis, 0, sigma_budget=3.0, direction="max"
        )
        rng = np.random.default_rng(2)
        for _ in range(50):
            x = rng.standard_normal(basis.n_variables)
            x *= 3.0 / np.linalg.norm(x)
            value = float(
                model.predict(basis.expand(x[None, :]), 0)[0]
            )
            assert value <= corner.value + 1e-9

    def test_min_is_negative_of_max_direction(self):
        model, basis, _ = fitted_linear_model(3)
        maximum = extract_worst_case_corner(model, basis, 0, direction="max")
        minimum = extract_worst_case_corner(model, basis, 0, direction="min")
        assert np.allclose(maximum.x, -minimum.x)
        assert minimum.value < maximum.value

    def test_per_state_corners_differ(self):
        model, basis, _ = fitted_linear_model(4)
        a = extract_worst_case_corner(model, basis, 0)
        b = extract_worst_case_corner(model, basis, 1)
        assert not np.allclose(a.x, b.x)

    def test_zero_gradient_stays_at_origin(self):
        basis = LinearBasis(4)
        model = Ridge(alpha=1.0)
        model.coef_ = np.zeros((1, 5))
        corner = extract_worst_case_corner(model, basis, 0)
        assert corner.sigma_norm == 0.0

    def test_rejects_bad_direction(self):
        model, basis, _ = fitted_linear_model(5)
        with pytest.raises(ValueError, match="direction"):
            extract_worst_case_corner(model, basis, 0, direction="sideways")

    def test_rejects_bad_budget(self):
        model, basis, _ = fitted_linear_model(6)
        with pytest.raises(ValueError):
            extract_worst_case_corner(model, basis, 0, sigma_budget=0.0)


class TestNonlinearRefinement:
    def test_quadratic_model_corner_inside_budget(self):
        rng = np.random.default_rng(7)
        basis = QuadraticBasis(3)
        x = rng.standard_normal((80, 3))
        design = basis.expand(x)
        target = design @ rng.standard_normal(basis.n_basis)
        model = Ridge(alpha=1e-6).fit([design], [target])
        corner = extract_worst_case_corner(
            model, basis, 0, sigma_budget=2.0, refine_steps=20
        )
        assert corner.sigma_norm <= 2.0 + 1e-9
        origin_value = float(
            model.predict(basis.expand(np.zeros((1, 3))), 0)[0]
        )
        assert corner.value >= origin_value
