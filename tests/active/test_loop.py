"""Tests for the budgeted, resumable active fit loop."""

import numpy as np
import pytest

from repro.active import (
    ActiveFitConfig,
    ActiveFitLoop,
    StoppingRule,
    push_result,
)
from repro.active.oracle import Oracle
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.serving import ModelRegistry
from repro.simulate.cost import CostModel

from tests.active.conftest import sparse_oracle

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(3, 6), n_folds=3
)
FAST_EM = EmConfig(max_iterations=10)


def make_config(**overrides):
    base = dict(
        metric="gain_db",
        strategy="variance",
        init_per_state=3,
        batch_per_round=4,
        n_candidates=16,
        holdout_per_state=12,
        stopping=StoppingRule(max_rounds=4),
        seed=123,
        init_config=FAST_INIT,
        em_config=FAST_EM,
    )
    base.update(overrides)
    return ActiveFitConfig(**base)


def strip_walltime(history):
    """History as a dict with the only nondeterministic field zeroed."""
    payload = history.to_dict()
    for entry in payload["rounds"]:
        entry["wall_seconds"] = 0.0
    return payload


class CrashingOracle(Oracle):
    """Wrapper that dies once a simulation budget is exceeded.

    Emulates the *process* being killed mid-acquisition — it raises
    ``KeyboardInterrupt``, the one failure the loop's retry/quarantine
    layer deliberately re-raises (an ordinary oracle exception would be
    retried and quarantined, not crash the run). Holdout (truth) calls
    do not count against the budget.
    """

    def __init__(self, inner, fail_after):
        self.inner = inner
        self.name = inner.name
        self.n_states = inner.n_states
        self.n_variables = inner.n_variables
        self.metric = inner.metric
        self.fail_after = fail_after
        self.seen = 0

    def observe(self, x, state):
        """Delegate, but die once ``fail_after`` samples were served."""
        self.seen += x.shape[0]
        if self.seen > self.fail_after:
            raise KeyboardInterrupt("simulator crashed")
        return self.inner.observe(x, state)

    def truth(self, x, state):
        """Delegate (free of charge: not a simulation)."""
        return self.inner.truth(x, state)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        config = make_config()
        first = ActiveFitLoop(sparse_oracle(), config).run()
        second = ActiveFitLoop(sparse_oracle(), config).run()
        assert strip_walltime(first.history) == strip_walltime(
            second.history
        )
        assert np.array_equal(first.model.coef_, second.model.coef_)
        assert first.ledger == second.ledger

    def test_seed_changes_trajectory(self):
        first = ActiveFitLoop(sparse_oracle(), make_config(seed=1)).run()
        second = ActiveFitLoop(sparse_oracle(), make_config(seed=2)).run()
        assert not np.array_equal(first.model.coef_, second.model.coef_)


class TestStoppingRules:
    def test_max_rounds(self):
        result = ActiveFitLoop(sparse_oracle(), make_config()).run()
        assert result.history.stop_reason == "max_rounds"
        assert result.history.n_rounds == 4
        # the stopping round buys nothing
        assert result.history.rounds[-1].n_added_per_state == (0, 0, 0)
        # earlier rounds each buy the batch
        assert sum(result.history.rounds[0].n_added_per_state) == 4

    def test_budget_exhausted_exactly(self):
        config = make_config(
            stopping=StoppingRule(max_rounds=10, max_samples=15)
        )
        result = ActiveFitLoop(sparse_oracle(), config).run()
        assert result.history.stop_reason == "budget"
        # init 3x3=9, then 4, then a shrunken batch of 2: exactly 15
        assert result.total_samples == 15
        assert result.dataset.n_samples_total == 15

    def test_plateau(self):
        config = make_config(
            stopping=StoppingRule(
                max_rounds=8, plateau_patience=1, plateau_rel_tol=0.01
            )
        )
        oracle = sparse_oracle(noise_std=0.0)  # exactly learnable
        result = ActiveFitLoop(oracle, config).run()
        assert result.history.stop_reason == "plateau"
        assert result.history.n_rounds < 8

    def test_std_collapse(self):
        config = make_config(
            stopping=StoppingRule(max_rounds=8, std_collapse=1e6)
        )
        result = ActiveFitLoop(sparse_oracle(), config).run()
        assert result.history.stop_reason == "std_collapse"
        assert result.history.n_rounds == 1

    def test_accuracy_improves_over_rounds(self):
        result = ActiveFitLoop(sparse_oracle(), make_config()).run()
        first = result.history.rounds[0].holdout_rmse
        assert result.history.best_rmse < first


class TestValidation:
    def test_init_per_state_floor(self):
        with pytest.raises(ValueError, match="init_per_state"):
            ActiveFitLoop(sparse_oracle(), make_config(init_per_state=1))

    def test_batch_floor(self):
        with pytest.raises(ValueError, match="batch_per_round"):
            ActiveFitLoop(sparse_oracle(), make_config(batch_per_round=0))

    def test_resume_requires_checkpoint_dir(self):
        loop = ActiveFitLoop(sparse_oracle(), make_config())
        with pytest.raises(ValueError, match="checkpoint_dir"):
            loop.run(resume=True)

    def test_resume_requires_existing_checkpoint(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path / "empty"))
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            ActiveFitLoop(sparse_oracle(), config).run(resume=True)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="unknown acquisition"):
            ActiveFitLoop(sparse_oracle(), make_config(strategy="magic"))


class TestCheckpointResume:
    def test_checkpoint_files_written(self, tmp_path):
        import json

        config = make_config(checkpoint_dir=str(tmp_path))
        ActiveFitLoop(sparse_oracle(), config).run()
        assert (tmp_path / "loop.json").exists()
        assert (tmp_path / "data.npz").exists()
        assert (tmp_path / "arrays.npz").exists()
        payload = json.loads((tmp_path / "loop.json").read_text())
        assert payload["finished"] is True
        assert payload["stop_reason"] == "max_rounds"

    def test_config_mismatch_rejected(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path))
        ActiveFitLoop(sparse_oracle(), config).run()
        changed = make_config(
            checkpoint_dir=str(tmp_path), batch_per_round=5
        )
        loop = ActiveFitLoop(sparse_oracle(), changed)
        with pytest.raises(ValueError, match="different configuration"):
            loop.run(resume=True)

    def test_interrupted_resume_equals_uninterrupted(self, tmp_path):
        """The headline guarantee: crash + resume = never crashed."""
        config_a = make_config(checkpoint_dir=str(tmp_path / "a"))
        reference = ActiveFitLoop(sparse_oracle(), config_a).run()

        # Crash during round 1's acquisition: init spends 9, round 0
        # buys 4 (13 total), round 1's batch crosses the 14 threshold.
        config_b = make_config(checkpoint_dir=str(tmp_path / "b"))
        crashing = CrashingOracle(sparse_oracle(), fail_after=14)
        with pytest.raises(KeyboardInterrupt, match="simulator crashed"):
            ActiveFitLoop(crashing, config_b).run()
        assert 15 <= crashing.seen <= 17  # it really died mid-round-1
        assert (tmp_path / "b" / "loop.json").exists()

        resumed = ActiveFitLoop(sparse_oracle(), config_b).run(resume=True)
        assert strip_walltime(resumed.history) == strip_walltime(
            reference.history
        )
        assert np.array_equal(resumed.model.coef_, reference.model.coef_)
        assert resumed.ledger == reference.ledger
        assert resumed.holdout_rmse == reference.holdout_rmse

    def test_resume_of_finished_run_keeps_history(self, tmp_path):
        """Resuming past the end must not append rounds or spend samples."""
        import json

        config = make_config(checkpoint_dir=str(tmp_path))
        finished = ActiveFitLoop(sparse_oracle(), config).run()

        counting = CrashingOracle(sparse_oracle(), fail_after=10**9)
        resumed = ActiveFitLoop(counting, config).run(resume=True)
        assert strip_walltime(resumed.history) == strip_walltime(
            finished.history
        )
        assert resumed.ledger == finished.ledger
        assert counting.seen == 0  # no new simulations were bought
        assert np.isfinite(resumed.holdout_rmse)
        assert resumed.model.coef_.shape == finished.model.coef_.shape

        # The checkpoint is untouched, so resuming again is idempotent.
        before = (tmp_path / "loop.json").read_text()
        again = ActiveFitLoop(sparse_oracle(), config).run(resume=True)
        assert (tmp_path / "loop.json").read_text() == before
        assert np.array_equal(again.model.coef_, resumed.model.coef_)
        assert json.loads(before)["finished"] is True


class TestPushResult:
    def test_manifest_records_acquisition(self, tmp_path):
        result = ActiveFitLoop(sparse_oracle(), make_config()).run()
        loop = ActiveFitLoop(sparse_oracle(), make_config())
        registry = ModelRegistry(tmp_path / "registry")
        entry = push_result(
            registry, "toy-active", result, loop.basis,
            cost_model=CostModel(2.0),
        )
        assert entry.key == "toy-active@v1"
        meta = entry.manifest["acquisition"]
        assert meta["strategy"] == "variance"
        assert meta["metric"] == "gain_db"
        assert meta["rounds"] == result.history.n_rounds
        assert meta["stop_reason"] == "max_rounds"
        assert meta["total_simulations"] == result.total_samples
        assert meta["simulations_per_state"] == list(
            result.ledger.per_state
        )
        assert meta["simulation_seconds"] == pytest.approx(
            2.0 * result.total_samples
        )

        served = registry.load(entry.key)
        x = np.zeros(result.model.coef_.shape[1] - 1)
        prediction = served.predict_point(x, state=0)
        assert np.isfinite(prediction["gain_db"])
