"""Shared fixtures for the active-learning subsystem tests."""

import numpy as np
import pytest

from repro.active.oracle import SyntheticOracle


def sparse_oracle(
    n_states=3, n_variables=8, n_active=3, noise_std=0.05, seed=0
):
    """A small sparse linear oracle with correlated per-state magnitudes."""
    rng = np.random.default_rng(seed)
    coef = np.zeros((n_states, n_variables + 1))
    coef[:, 0] = 5.0 + 0.3 * np.arange(n_states)
    template = rng.standard_normal(n_active) * 2.0
    for k in range(n_states):
        coef[k, 1 : n_active + 1] = template * (
            1.0 + 0.1 * k + 0.05 * rng.standard_normal(n_active)
        )
    return SyntheticOracle(
        coef, noise_std=noise_std, metric="gain_db", name="toy"
    )


@pytest.fixture
def oracle():
    """Default small oracle instance."""
    return sparse_oracle()
