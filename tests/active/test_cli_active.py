"""Tests for the ``active-fit`` CLI command."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["active-fit"])
        assert args.command == "active-fit"
        assert args.circuit == "lna"
        assert args.strategy == "variance"
        assert args.states == 4
        assert args.rounds == 6
        assert args.batch == 8
        assert args.explore == 0.25
        assert args.seed == 2016
        assert args.budget is None
        assert args.resume is False

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["active-fit", "--strategy", "magic"])

    def test_circuit_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["active-fit", "--circuit", "pll"])


TINY = [
    "active-fit",
    "--states", "3",
    "--rounds", "2",
    "--init", "3",
    "--batch", "4",
    "--candidates", "12",
    "--holdout", "8",
    "--seed", "7",
]


class TestEndToEnd:
    def test_run_and_push(self, capsys, tmp_path):
        registry_root = str(tmp_path / "registry")
        assert main(TINY + ["--registry", registry_root]) == 0
        out = capsys.readouterr().out
        assert "active-fit lna:" in out
        assert "strategy=variance" in out
        assert "stopped: max_rounds" in out
        assert "simulations: 13 " in out  # 3x3 init + one batch of 4
        assert "pushed lna@v1" in out

        # the printed manifest block parses and records the provenance
        meta = json.loads(out[out.index("{"):])
        assert meta["strategy"] == "variance"
        assert meta["rounds"] == 2
        assert meta["total_simulations"] == 13
        assert meta["stop_reason"] == "max_rounds"
        assert "simulation_seconds" in meta

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        argv = TINY + ["--checkpoint", checkpoint]
        assert main(argv) == 0
        capsys.readouterr()
        # rerunning with --resume picks the checkpoint up cleanly
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "active-fit lna:" in out

    def test_random_strategy(self, capsys):
        assert main(TINY + ["--strategy", "random"]) == 0
        out = capsys.readouterr().out
        assert "strategy=random" in out
