"""Tests for the acquisition strategies."""

import numpy as np
import pytest

from repro.active.acquisition import (
    CorrelationAwareAllocation,
    CostWeightedVariance,
    RandomAcquisition,
    VarianceAcquisition,
    YieldVarianceAcquisition,
)
from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.simulate.cost import CostModel

from tests.active.conftest import sparse_oracle

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(3, 6), n_folds=3
)
FAST_EM = EmConfig(max_iterations=10)


def fitted_model(oracle, n_per_state=12, seed=0):
    rng = np.random.default_rng(seed)
    basis = LinearBasis(oracle.n_variables)
    designs, targets = [], []
    for k in range(oracle.n_states):
        x = rng.standard_normal((n_per_state, oracle.n_variables))
        designs.append(basis.expand(x))
        targets.append(oracle.observe(x, k))
    model = CBMF(init_config=FAST_INIT, em_config=FAST_EM, seed=seed).fit(
        designs, targets
    )
    return model, basis


def make_pool(oracle, n_cand=20, seed=1):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal((n_cand, oracle.n_variables))
        for _ in range(oracle.n_states)
    ]


def check_picks(picks, candidates, n_select):
    """Shared contract: one valid, duplicate-free index array per state."""
    assert len(picks) == len(candidates)
    total = 0
    for pool, indices in zip(candidates, picks):
        indices = np.asarray(indices)
        assert indices.ndim == 1
        if indices.size:
            assert indices.dtype.kind == "i"
            assert indices.min() >= 0
            assert indices.max() < pool.shape[0]
            assert np.unique(indices).size == indices.size
        total += int(indices.size)
    assert total == n_select


class StubModel:
    """Constant-std stand-in for strategies that only call predict_std."""

    def __init__(self, scales):
        self.scales = scales

    def predict_std(self, design, state):
        """Constant std per state."""
        return np.full(design.shape[0], float(self.scales[state]))


@pytest.fixture(scope="module")
def fitted():
    oracle = sparse_oracle()
    model, basis = fitted_model(oracle)
    return oracle, model, basis


ALL_STRATEGIES = [
    RandomAcquisition(),
    VarianceAcquisition(),
    VarianceAcquisition(explore_fraction=0.0),
    CostWeightedVariance([1.0, 2.0, 3.0]),
    CorrelationAwareAllocation(),
]


class TestContract:
    @pytest.mark.parametrize(
        "strategy",
        ALL_STRATEGIES,
        ids=["random", "variance", "variance-greedy", "cost", "correlation"],
    )
    def test_valid_picks(self, fitted, strategy):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        rng = np.random.default_rng(3)
        picks = strategy.select(model, basis, candidates, 7, rng)
        check_picks(picks, candidates, 7)

    def test_pool_count_mismatch(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)[:-1]
        with pytest.raises(ValueError, match="candidate pools"):
            RandomAcquisition().select(
                model, basis, candidates, 4, np.random.default_rng(0)
            )

    def test_select_more_than_pool(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle, n_cand=2)
        with pytest.raises(ValueError, match="cannot select"):
            RandomAcquisition().select(
                model, basis, candidates, 100, np.random.default_rng(0)
            )

    def test_describe(self):
        assert RandomAcquisition().describe() == {"strategy": "random"}
        described = VarianceAcquisition(0.1).describe()
        assert described == {
            "strategy": "variance", "explore_fraction": 0.1
        }
        described = CostWeightedVariance([2.0, 4.0]).describe()
        assert described["strategy"] == "cost_weighted"
        assert described["state_costs"] == [2.0, 4.0]
        assert CorrelationAwareAllocation().describe() == {
            "strategy": "correlation"
        }


class TestRandomAcquisition:
    def test_even_allocation(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        picks = RandomAcquisition().select(
            model, basis, candidates, 9, np.random.default_rng(0)
        )
        assert [p.size for p in picks] == [3, 3, 3]

    def test_remainder_spread(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        picks = RandomAcquisition().select(
            model, basis, candidates, 8, np.random.default_rng(0)
        )
        sizes = sorted(p.size for p in picks)
        assert sizes == [2, 3, 3]

    def test_small_pool_shortfall_redistributed(self, fitted):
        oracle, model, basis = fitted
        rng = np.random.default_rng(4)
        candidates = [
            rng.standard_normal((size, oracle.n_variables))
            for size in (1, 1, 10)
        ]
        picks = RandomAcquisition().select(
            model, basis, candidates, 6, np.random.default_rng(0)
        )
        check_picks(picks, candidates, 6)
        assert picks[2].size >= 4


class TestVarianceAcquisition:
    def test_explore_fraction_validation(self):
        with pytest.raises(ValueError, match="explore_fraction"):
            VarianceAcquisition(explore_fraction=1.0)
        with pytest.raises(ValueError, match="explore_fraction"):
            VarianceAcquisition(explore_fraction=-0.1)

    def test_first_pick_is_global_argmax(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        predictor = model.predictor
        best = max(
            (
                (float(np.max(predictor.predict_std(basis.expand(p), k))), k,
                 int(np.argmax(predictor.predict_std(basis.expand(p), k))))
                for k, p in enumerate(candidates)
            )
        )
        _, best_state, best_index = best
        picks = VarianceAcquisition(explore_fraction=0.0).select(
            model, basis, candidates, 1, np.random.default_rng(0)
        )
        assert picks[best_state].tolist() == [best_index]

    def test_fantasy_conditioning_diversifies(self, fitted):
        """With conditioning, a batch never doubles down on one unknown:
        the greedy picks stay distinct even in a pool of near-duplicates."""
        oracle, model, basis = fitted
        rng = np.random.default_rng(5)
        base = rng.standard_normal(oracle.n_variables)
        near_duplicates = base + 1e-6 * rng.standard_normal(
            (15, oracle.n_variables)
        )
        candidates = [near_duplicates.copy() for _ in range(oracle.n_states)]
        picks = VarianceAcquisition(explore_fraction=0.0).select(
            model, basis, candidates, 6, np.random.default_rng(0)
        )
        check_picks(picks, candidates, 6)
        # without conditioning every pick would chase the same duplicate
        # point in the most-uncertain state; with it the batch spreads
        # across states (correlated-but-distinct unknowns)
        assert sum(1 for p in picks if p.size) >= 2


class TestCostWeightedVariance:
    def test_picks_flow_to_cheap_state(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        strategy = CostWeightedVariance(
            [1.0, 100.0, 100.0], explore_fraction=0.0
        )
        picks = strategy.select(
            model, basis, candidates, 4, np.random.default_rng(0)
        )
        check_picks(picks, candidates, 4)
        assert picks[0].size >= 3

    def test_accepts_cost_models(self):
        strategy = CostWeightedVariance([CostModel(2.0), CostModel(8.0)])
        assert strategy.state_costs == [2.0, 8.0]

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ValueError, match="positive"):
            CostWeightedVariance([1.0, 0.0])
        with pytest.raises(ValueError, match="positive"):
            CostWeightedVariance([])


class TestCorrelationAwareAllocation:
    def test_allocation_follows_uncertainty_mass(self):
        model = StubModel([1.0, 1.0, 10.0])
        basis = LinearBasis(4)
        rng = np.random.default_rng(0)
        candidates = [rng.standard_normal((20, 4)) for _ in range(3)]
        picks = CorrelationAwareAllocation().select(
            model, basis, candidates, 10, rng
        )
        check_picks(picks, candidates, 10)
        assert picks[2].size >= 8

    def test_pool_cap_overflow_redistributed(self):
        model = StubModel([1.0, 1.0, 10.0])
        basis = LinearBasis(4)
        rng = np.random.default_rng(0)
        candidates = [
            rng.standard_normal((size, 4)) for size in (10, 10, 3)
        ]
        picks = CorrelationAwareAllocation().select(
            model, basis, candidates, 9, rng
        )
        check_picks(picks, candidates, 9)
        assert picks[2].size == 3

    def test_degenerate_variance_falls_back_to_uniform(self):
        model = StubModel([0.0, 0.0, 0.0])
        basis = LinearBasis(4)
        rng = np.random.default_rng(0)
        candidates = [rng.standard_normal((20, 4)) for _ in range(3)]
        picks = CorrelationAwareAllocation().select(
            model, basis, candidates, 6, rng
        )
        assert [p.size for p in picks] == [2, 2, 2]

    def test_picks_are_top_variance(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        picks = CorrelationAwareAllocation().select(
            model, basis, candidates, 6, np.random.default_rng(0)
        )
        for k, pool in enumerate(candidates):
            if not picks[k].size:
                continue
            std = model.predict_std(basis.expand(pool), k)
            worst_picked = std[picks[k]].min()
            unpicked = np.setdiff1d(np.arange(pool.shape[0]), picks[k])
            assert worst_picked >= std[unpicked].max() - 1e-12


class YieldStubPredictor:
    """Predictor stub with controlled mean/std per state."""

    noise_var = 0.04

    def __init__(self, means, stds):
        self.means = means
        self.stds = stds

    def predict_mean(self, design, state):
        return np.full(design.shape[0], float(self.means[state]))

    def predict_std(self, design, state):
        return np.full(design.shape[0], float(self.stds[state]))


class YieldStubModel:
    def __init__(self, means, stds):
        self.n_states = len(means)
        self.predictor = YieldStubPredictor(means, stds)


class TestYieldVarianceAcquisition:
    def test_accepts_strings_and_objects(self):
        from repro.applications.yield_estimation import Specification

        strategy = YieldVarianceAcquisition(
            ["nf_db<=1.5", Specification("gain_db", 24.0, "min")]
        )
        assert [s.metric for s in strategy.specs] == ["nf_db", "gain_db"]
        assert strategy.describe() == {
            "strategy": "yield_variance",
            "specs": ["nf_db<=1.5", "gain_db>=24"],
        }

    def test_rejects_empty_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            YieldVarianceAcquisition([])

    def test_rejects_non_spec_entries(self):
        with pytest.raises(TypeError, match="Specification"):
            YieldVarianceAcquisition([3.5])

    def test_registered_in_factory(self):
        from repro.evaluation.methods import make_acquisition

        strategy = make_acquisition(
            "yield_variance", specs=["nf_db<=1.5"]
        )
        assert strategy.name == "yield_variance"

    def test_valid_picks_on_fitted_model(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)
        strategy = YieldVarianceAcquisition(["y<=0.5"])
        picks = strategy.select(
            model, basis, candidates, 7, np.random.default_rng(3)
        )
        check_picks(picks, candidates, 7)

    def test_budget_flows_to_boundary_state(self):
        """A state whose mean sits on the spec bound has maximal yield
        uncertainty; states that pass or fail with certainty score ~0."""
        model = YieldStubModel(
            means=[0.5, 10.0, -10.0], stds=[0.3, 0.3, 0.3]
        )
        basis = LinearBasis(4)
        rng = np.random.default_rng(0)
        candidates = [rng.standard_normal((20, 4)) for _ in range(3)]
        strategy = YieldVarianceAcquisition(["m<=0.5"])
        picks = strategy.select(model, basis, candidates, 9, rng)
        check_picks(picks, candidates, 9)
        assert picks[0].size >= 7
        assert not strategy.last_degraded

    def test_certain_everywhere_degrades_to_uniform(self):
        """All candidates pass with certainty -> zero score mass -> the
        strategy records its degradation and allocates uniformly."""
        model = YieldStubModel(
            means=[-50.0, -50.0, -50.0], stds=[0.1, 0.1, 0.1]
        )
        basis = LinearBasis(4)
        rng = np.random.default_rng(1)
        candidates = [rng.standard_normal((20, 4)) for _ in range(3)]
        strategy = YieldVarianceAcquisition(["m<=0.5"])
        picks = strategy.select(model, basis, candidates, 6, rng)
        check_picks(picks, candidates, 6)
        assert strategy.last_degraded == (
            "uniform_allocation:zero_yield_score_mass",
        )
        assert [p.size for p in picks] == [2, 2, 2]

    def test_numerical_error_degrades_to_uniform(self):
        from repro.errors import NumericalError

        class ExplodingPredictor(YieldStubPredictor):
            def predict_mean(self, design, state):
                raise NumericalError("synthetic failure")

        model = YieldStubModel([0.0, 0.0], [1.0, 1.0])
        model.predictor = ExplodingPredictor([0.0, 0.0], [1.0, 1.0])
        basis = LinearBasis(4)
        rng = np.random.default_rng(2)
        candidates = [rng.standard_normal((10, 4)) for _ in range(2)]
        strategy = YieldVarianceAcquisition(["m<=0.5"])
        picks = strategy.select(model, basis, candidates, 4, rng)
        check_picks(picks, candidates, 4)
        assert len(strategy.last_degraded) == 1
        assert "yield_score_failed" in strategy.last_degraded[0]

    def test_pool_count_mismatch_rejected(self, fitted):
        oracle, model, basis = fitted
        candidates = make_pool(oracle)[:-1]
        with pytest.raises(ValueError, match="candidate pools"):
            YieldVarianceAcquisition(["y<=0.5"]).select(
                model, basis, candidates, 4, np.random.default_rng(0)
            )
