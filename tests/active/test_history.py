"""Tests for the round-by-round fit history."""

import pytest

from repro.active.history import FitHistory, RoundRecord


def record(index, total=10, rmse=1.0, best=None, added=(2, 2)):
    return RoundRecord(
        round_index=index,
        n_samples_total=total,
        n_samples_per_state=(total // 2, total - total // 2),
        n_added_per_state=tuple(added),
        holdout_rmse=rmse,
        best_rmse=best if best is not None else rmse,
        noise_std=0.05,
        refit="warm" if index else "cold",
        wall_seconds=0.1,
    )


class TestRoundRecord:
    def test_round_trip(self):
        original = record(3, total=42, rmse=0.25)
        clone = RoundRecord.from_dict(original.to_dict())
        assert clone == original

    def test_dict_is_json_friendly(self):
        import json

        payload = record(0).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestFitHistory:
    def test_append_enforces_order(self):
        history = FitHistory(strategy="variance", metric="gain_db")
        history.append(record(0))
        with pytest.raises(ValueError, match="expected round 1"):
            history.append(record(2))
        history.append(record(1))
        assert history.n_rounds == 2

    def test_aggregates(self):
        history = FitHistory(strategy="variance", metric="gain_db")
        assert history.total_samples == 0
        assert history.best_rmse == float("inf")
        history.append(record(0, total=8, rmse=1.0))
        history.append(record(1, total=16, rmse=0.4))
        history.append(record(2, total=24, rmse=0.6))
        assert history.total_samples == 24
        assert history.best_rmse == 0.4

    def test_samples_to_reach(self):
        history = FitHistory(strategy="variance", metric="gain_db")
        history.append(record(0, total=8, rmse=1.0))
        history.append(record(1, total=16, rmse=0.4))
        history.append(record(2, total=24, rmse=0.1))
        assert history.samples_to_reach(0.5) == 16
        assert history.samples_to_reach(0.1) == 24
        assert history.samples_to_reach(0.01) is None

    def test_json_round_trip(self, tmp_path):
        history = FitHistory(
            strategy="random", metric="nf_db", stop_reason="budget"
        )
        history.append(record(0, total=6, rmse=0.9))
        history.append(record(1, total=12, rmse=0.5))

        from_text = FitHistory.from_json(history.to_json())
        assert from_text.to_dict() == history.to_dict()

        path = tmp_path / "history.json"
        history.to_json(path)
        from_file = FitHistory.from_json(path)
        assert from_file.to_dict() == history.to_dict()
        assert from_file.stop_reason == "budget"
        assert from_file.rounds[1].n_samples_total == 12
