"""Tests for the simulation oracles."""

import numpy as np
import pytest

from repro.active.oracle import (
    CircuitOracle,
    SyntheticOracle,
    linearized_surrogate,
)
from repro.circuits.lna import TunableLNA

from tests.active.conftest import sparse_oracle


class TestSyntheticOracle:
    def test_truth_is_linear_response(self):
        coef = np.array([[1.0, 2.0, 0.0], [0.5, -1.0, 3.0]])
        oracle = SyntheticOracle(coef)
        x = np.array([[1.0, 1.0], [0.0, 2.0]])
        assert np.allclose(oracle.truth(x, 0), [3.0, 1.0])
        assert np.allclose(oracle.truth(x, 1), [2.5, 6.5])

    def test_noiseless_observe_equals_truth(self):
        oracle = sparse_oracle(noise_std=0.0)
        x = np.random.default_rng(0).standard_normal(
            (5, oracle.n_variables)
        )
        assert np.array_equal(oracle.observe(x, 1), oracle.truth(x, 1))

    def test_observation_is_pure_function_of_the_point(self):
        """Same point, any call order or batch shape: same noisy value.

        This is what makes checkpoint resume bit-identical."""
        oracle = sparse_oracle(noise_std=0.1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, oracle.n_variables))
        whole = oracle.observe(x, 0)
        shuffled = oracle.observe(x[::-1].copy(), 0)[::-1]
        assert np.array_equal(whole, shuffled)
        # batching only changes the BLAS summation path of the latent
        # linear response, never the hash-seeded noise
        one_by_one = np.concatenate(
            [oracle.observe(x[i : i + 1], 0) for i in range(6)]
        )
        assert np.allclose(whole, one_by_one, rtol=0.0, atol=1e-12)

    def test_noise_differs_across_states_and_points(self):
        oracle = sparse_oracle(noise_std=0.1)
        x = np.random.default_rng(2).standard_normal(
            (4, oracle.n_variables)
        )
        noise0 = oracle.observe(x, 0) - oracle.truth(x, 0)
        noise1 = oracle.observe(x, 1) - oracle.truth(x, 1)
        assert not np.allclose(noise0, noise1)
        assert np.unique(np.round(noise0, 12)).size == 4

    def test_validation(self):
        coef = np.ones((2, 3))
        with pytest.raises(ValueError, match="noise_std"):
            SyntheticOracle(coef, noise_std=-0.1)
        with pytest.raises(IndexError):
            SyntheticOracle(coef).truth(np.zeros((1, 2)), 5)
        from repro.basis.polynomial import LinearBasis

        with pytest.raises(ValueError, match="basis"):
            SyntheticOracle(coef, basis=LinearBasis(5))


class TestCircuitOracle:
    def test_matches_engine_run(self):
        from repro.simulate.montecarlo import MonteCarloEngine

        lna = TunableLNA(n_states=3)
        oracle = CircuitOracle(lna, "gain_db")
        data = MonteCarloEngine(lna, seed=0).run(5)
        for k in range(3):
            x = data.states[k].x
            assert np.allclose(
                oracle.observe(x, k), data.states[k].y["gain_db"]
            )

    def test_shapes_and_metadata(self):
        lna = TunableLNA(n_states=3)
        oracle = CircuitOracle(lna, "nf_db")
        assert oracle.n_states == 3
        assert oracle.n_variables == lna.n_variables
        assert oracle.name == lna.name
        x = np.zeros((2, lna.n_variables))
        assert oracle.observe(x, 0).shape == (2,)

    def test_unknown_metric(self):
        with pytest.raises(KeyError, match="no metric"):
            CircuitOracle(TunableLNA(n_states=2), "ghost_db")


class TestLinearizedSurrogate:
    def test_sparse_padded_structure(self):
        lna = TunableLNA(n_states=3)
        oracle = linearized_surrogate(
            lna, "gain_db", n_keep=4, n_variables=10,
            n_reference_per_state=25, seed=3,
        )
        assert oracle.n_states == 3
        assert oracle.n_variables == 10
        assert oracle.coefficients.shape == (3, 11)
        # only the intercept and the first n_keep variables are active
        assert np.all(oracle.coefficients[:, 5:] == 0.0)
        assert np.any(oracle.coefficients[:, 1:5] != 0.0)
        assert oracle.name.endswith("-linearized")

    def test_validation(self):
        lna = TunableLNA(n_states=2)
        with pytest.raises(ValueError, match="n_keep"):
            linearized_surrogate(lna, "gain_db", n_keep=0)
        with pytest.raises(ValueError, match="n_keep"):
            linearized_surrogate(lna, "gain_db", n_keep=9, n_variables=4)
