"""Unit tests for the canonical experiment-configuration module."""

import pytest

from repro import paper
from repro.simulate.cost import LNA_COST_MODEL, MIXER_COST_MODEL


class TestCostModelFor:
    def test_lna(self):
        assert paper.cost_model_for("lna") is LNA_COST_MODEL

    def test_mixer(self):
        assert paper.cost_model_for("mixer") is MIXER_COST_MODEL


class TestPaperConstants:
    def test_table1_consistent_with_cost_model(self):
        """The recorded paper numbers agree with the calibrated rate."""
        somp = paper.PAPER_TABLE1["somp"]
        cost = LNA_COST_MODEL.cost(somp["n_samples"], 1.32)
        assert cost.simulation_hours == pytest.approx(2.72, abs=0.01)

    def test_table2_consistent_with_cost_model(self):
        cbmf = paper.PAPER_TABLE2["cbmf"]
        cost = MIXER_COST_MODEL.cost(cbmf["n_samples"], 407.10)
        assert cost.total_hours == pytest.approx(
            cbmf["overall_hours"], abs=0.02
        )

    def test_headline_ratios_above_two(self):
        for table in (paper.PAPER_TABLE1, paper.PAPER_TABLE2):
            ratio = (
                table["somp"]["overall_hours"]
                / table["cbmf"]["overall_hours"]
            )
            assert ratio > 2.0

    def test_metric_labels_cover_all_metrics(self):
        for table in (paper.PAPER_TABLE1, paper.PAPER_TABLE2):
            for entry in table.values():
                for key in entry:
                    if key.endswith(("_db", "_dbm")):
                        assert key in paper.METRIC_LABELS


class TestScaleDefinitions:
    def test_sweep_grids_within_pool(self):
        for scale in paper.SCALES.values():
            assert max(scale.sweep_grid) <= scale.pool_per_state
            assert scale.table_somp_per_state <= scale.pool_per_state
            assert scale.table_cbmf_per_state <= scale.pool_per_state

    def test_table_budgets_reflect_paper_ratio(self):
        """Every scale keeps the ~2.33× sample-reduction ratio."""
        for scale in paper.SCALES.values():
            ratio = scale.table_somp_per_state / scale.table_cbmf_per_state
            assert 2.0 <= ratio <= 2.5
