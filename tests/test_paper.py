"""Unit tests for the canonical experiment-configuration module."""

import pytest

from repro import paper
from repro.simulate.cost import LNA_COST_MODEL, MIXER_COST_MODEL


class TestCostModelFor:
    def test_lna(self):
        assert paper.cost_model_for("lna") is LNA_COST_MODEL

    def test_mixer(self):
        assert paper.cost_model_for("mixer") is MIXER_COST_MODEL


class TestPaperConstants:
    def test_table1_consistent_with_cost_model(self):
        """The recorded paper numbers agree with the calibrated rate."""
        somp = paper.PAPER_TABLE1["somp"]
        cost = LNA_COST_MODEL.cost(somp["n_samples"], 1.32)
        assert cost.simulation_hours == pytest.approx(2.72, abs=0.01)

    def test_table2_consistent_with_cost_model(self):
        cbmf = paper.PAPER_TABLE2["cbmf"]
        cost = MIXER_COST_MODEL.cost(cbmf["n_samples"], 407.10)
        assert cost.total_hours == pytest.approx(
            cbmf["overall_hours"], abs=0.02
        )

    def test_headline_ratios_above_two(self):
        for table in (paper.PAPER_TABLE1, paper.PAPER_TABLE2):
            ratio = (
                table["somp"]["overall_hours"]
                / table["cbmf"]["overall_hours"]
            )
            assert ratio > 2.0

    def test_metric_labels_cover_all_metrics(self):
        for table in (paper.PAPER_TABLE1, paper.PAPER_TABLE2):
            for entry in table.values():
                for key in entry:
                    if key.endswith(("_db", "_dbm")):
                        assert key in paper.METRIC_LABELS


class TestScaleDefinitions:
    def test_sweep_grids_within_pool(self):
        for scale in paper.SCALES.values():
            assert max(scale.sweep_grid) <= scale.pool_per_state
            assert scale.table_somp_per_state <= scale.pool_per_state
            assert scale.table_cbmf_per_state <= scale.pool_per_state

    def test_table_budgets_reflect_paper_ratio(self):
        """Every scale keeps the ~2.33× sample-reduction ratio."""
        for scale in paper.SCALES.values():
            ratio = scale.table_somp_per_state / scale.table_cbmf_per_state
            assert 2.0 <= ratio <= 2.5


class TestSweptWorkload:
    def test_lna_sweep_circuit_built_at_scale(self):
        scale = paper.SCALES["small"]
        circuit = paper.build_circuit("lna_sweep", scale)
        assert circuit.name == "lna_sweep"
        assert circuit.n_states == scale.sweep_points

    def test_lna_sweep_uses_lna_cost_model(self):
        assert paper.cost_model_for("lna_sweep") is LNA_COST_MODEL

    def test_paper_scale_is_the_vna_default(self):
        assert paper.SCALES["paper"].sweep_points == 201

    def test_simulate_sweep_caches_and_reloads(self, tmp_path, monkeypatch):
        first = paper.simulate_sweep(
            n_points=4, n_samples_per_state=3, seed=3, cache_dir=tmp_path
        )
        assert first.n_states == 4
        assert len(list(tmp_path.glob("*.npz"))) == 1

        # A second call must come from the cache, not the simulator.
        from repro.simulate.montecarlo import MonteCarloEngine

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: the engine re-ran")

        monkeypatch.setattr(MonteCarloEngine, "run", boom)
        again = paper.simulate_sweep(
            n_points=4, n_samples_per_state=3, seed=3, cache_dir=tmp_path
        )
        assert again.n_states == 4
        for x_first, x_again in zip(first.inputs(), again.inputs()):
            import numpy as np

            np.testing.assert_array_equal(x_first, x_again)

    def test_simulate_sweep_regenerates_corrupt_cache(self, tmp_path):
        dataset = paper.simulate_sweep(
            n_points=3, n_samples_per_state=2, seed=5, cache_dir=tmp_path
        )
        path = next(tmp_path.glob("*.npz"))
        path.write_bytes(b"not a zip archive")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            rebuilt = paper.simulate_sweep(
                n_points=3, n_samples_per_state=2, seed=5,
                cache_dir=tmp_path,
            )
        assert rebuilt.n_states == dataset.n_states
