"""Tests for the variation-space samplers."""

import numpy as np
import pytest
from scipy import stats

from repro.variation.sampling import latin_hypercube, standard_normal_samples


class TestStandardNormal:
    def test_shape(self):
        assert standard_normal_samples(5, 3, seed=0).shape == (5, 3)

    def test_reproducible(self):
        a = standard_normal_samples(4, 2, seed=1)
        b = standard_normal_samples(4, 2, seed=1)
        assert np.allclose(a, b)

    def test_distribution_moments(self):
        samples = standard_normal_samples(20_000, 2, seed=2)
        assert abs(samples.mean()) < 0.03
        assert abs(samples.std() - 1.0) < 0.03

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            standard_normal_samples(0, 3)

    def test_rejects_noninteger(self):
        with pytest.raises(TypeError):
            standard_normal_samples(2.5, 3)


class TestLatinHypercube:
    def test_shape(self):
        assert latin_hypercube(7, 4, seed=0).shape == (7, 4)

    def test_reproducible(self):
        assert np.allclose(
            latin_hypercube(6, 3, seed=5), latin_hypercube(6, 3, seed=5)
        )

    def test_stratification(self):
        """Each column has exactly one point per probability bin."""
        n = 16
        samples = latin_hypercube(n, 3, seed=3)
        uniforms = stats.norm.cdf(samples)
        for column in range(3):
            bins = np.floor(uniforms[:, column] * n).astype(int)
            assert sorted(bins) == list(range(n))

    def test_better_mean_than_mc_typically(self):
        """LHS column means are near zero by construction."""
        samples = latin_hypercube(64, 5, seed=4)
        assert np.all(np.abs(samples.mean(axis=0)) < 0.2)

    def test_finite(self):
        assert np.all(np.isfinite(latin_hypercube(3, 2, seed=6)))
