"""Tests for Pelgrom mismatch scaling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.variation.mismatch import (
    PelgromCoefficients,
    mismatch_sigma,
    mosfet_mismatch_specs,
)
from repro.variation.parameters import VariationKind


class TestMismatchSigma:
    def test_inverse_sqrt_area(self):
        small = mismatch_sigma(1.0, 1.0, 1.0)
        large = mismatch_sigma(1.0, 4.0, 1.0)
        assert large == pytest.approx(small / 2.0)

    def test_rejects_zero_geometry(self):
        with pytest.raises(ValueError, match="geometry"):
            mismatch_sigma(1.0, 0.0, 1.0)

    def test_exact_value(self):
        assert mismatch_sigma(2.5e-3, 4.0, 0.25) == pytest.approx(2.5e-3)


class TestPelgromCoefficients:
    def test_defaults_positive(self):
        coeffs = PelgromCoefficients()
        assert coeffs.a_vth > 0 and coeffs.a_beta > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PelgromCoefficients(a_vth=0.0)


class TestMosfetSpecs:
    def test_covers_six_channels(self):
        specs = mosfet_mismatch_specs(10.0, 0.03)
        kinds = {spec.kind for spec in specs}
        assert kinds == {
            VariationKind.VTH,
            VariationKind.BETA,
            VariationKind.LENGTH,
            VariationKind.CGS,
            VariationKind.CGD,
            VariationKind.RDS,
        }

    def test_small_device_has_more_mismatch(self):
        small = mosfet_mismatch_specs(1.0, 0.03)
        big = mosfet_mismatch_specs(100.0, 0.03)
        for spec_small, spec_big in zip(small, big):
            assert spec_small.sigma > spec_big.sigma

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.floats(0.1, 1000.0),
        length=st.floats(0.02, 10.0),
    )
    def test_property_scaling_law(self, width, length):
        """σ·sqrt(WL) is geometry-independent."""
        specs = mosfet_mismatch_specs(width, length)
        reference = mosfet_mismatch_specs(1.0, 1.0)
        for spec, ref in zip(specs, reference):
            assert spec.sigma * math.sqrt(width * length) == pytest.approx(
                ref.sigma, rel=1e-9
            )
