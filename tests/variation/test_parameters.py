"""Tests for variation-parameter declarations."""

import pytest

from repro.variation.parameters import (
    GLOBAL_PARAMETER_SET,
    ParameterSpec,
    VariationKind,
)


class TestVariationKind:
    def test_vth_is_absolute(self):
        assert not VariationKind.VTH.is_relative()

    def test_everything_else_is_relative(self):
        for kind in VariationKind:
            if kind is not VariationKind.VTH:
                assert kind.is_relative()

    def test_values_are_unique(self):
        values = [kind.value for kind in VariationKind]
        assert len(values) == len(set(values))


class TestParameterSpec:
    def test_unit_for_vth(self):
        assert ParameterSpec(VariationKind.VTH, 0.01).unit == "V"

    def test_unit_for_relative(self):
        assert ParameterSpec(VariationKind.BETA, 0.02).unit == "rel"

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            ParameterSpec(VariationKind.VTH, -0.1)

    def test_zero_sigma_allowed(self):
        assert ParameterSpec(VariationKind.VTH, 0.0).sigma == 0.0

    def test_frozen(self):
        spec = ParameterSpec(VariationKind.VTH, 0.01)
        with pytest.raises(Exception):
            spec.sigma = 0.2


class TestGlobalSet:
    def test_all_kinds_unique(self):
        kinds = [spec.kind for spec in GLOBAL_PARAMETER_SET]
        assert len(kinds) == len(set(kinds))

    def test_magnitudes_sane(self):
        for spec in GLOBAL_PARAMETER_SET:
            assert 0.0 < spec.sigma < 0.5

    def test_vth_in_millivolt_range(self):
        vth = next(
            spec
            for spec in GLOBAL_PARAMETER_SET
            if spec.kind is VariationKind.VTH
        )
        assert 0.005 <= vth.sigma <= 0.08
