"""Tests for the process model and sample realization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.variation.parameters import ParameterSpec, VariationKind
from repro.variation.process import DeviceVariation, ProcessModel


def small_model() -> ProcessModel:
    globals_ = (
        ParameterSpec(VariationKind.VTH, 0.02),
        ParameterSpec(VariationKind.BETA, 0.05),
    )
    devices = [
        DeviceVariation(
            "M1",
            (
                ParameterSpec(VariationKind.VTH, 0.003),
                ParameterSpec(VariationKind.BETA, 0.01),
            ),
        ),
        DeviceVariation(
            "R1", (ParameterSpec(VariationKind.RSHEET, 0.02),)
        ),
    ]
    return ProcessModel(devices, globals_)


class TestConstruction:
    def test_variable_count(self):
        model = small_model()
        assert model.n_variables == 2 + 2 + 1

    def test_variable_names_order(self):
        model = small_model()
        assert model.variable_names == (
            "global.vth",
            "global.beta",
            "M1.vth",
            "M1.beta",
            "R1.rsheet",
        )

    def test_rejects_duplicate_devices(self):
        spec = (ParameterSpec(VariationKind.VTH, 0.01),)
        with pytest.raises(ValueError, match="unique"):
            ProcessModel(
                [DeviceVariation("M1", spec), DeviceVariation("M1", spec)]
            )

    def test_rejects_duplicate_kind_in_device(self):
        with pytest.raises(ValueError, match="duplicate"):
            DeviceVariation(
                "M1",
                (
                    ParameterSpec(VariationKind.VTH, 0.01),
                    ParameterSpec(VariationKind.VTH, 0.02),
                ),
            )

    def test_rejects_duplicate_global_kinds(self):
        with pytest.raises(ValueError, match="unique"):
            ProcessModel(
                [],
                (
                    ParameterSpec(VariationKind.VTH, 0.01),
                    ParameterSpec(VariationKind.VTH, 0.02),
                ),
            )

    def test_rejects_empty_device_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            DeviceVariation("", (ParameterSpec(VariationKind.VTH, 0.01),))

    def test_index_lookup(self):
        model = small_model()
        assert model.global_variable_index(VariationKind.VTH) == 0
        assert model.local_variable_index("M1", VariationKind.BETA) == 3
        assert model.local_variable_index("R1", VariationKind.VTH) is None
        assert model.global_variable_index(VariationKind.GSUB) is None


class TestRealization:
    def test_zero_sample_gives_zero_deviation(self):
        model = small_model()
        sample = model.realize(np.zeros(model.n_variables))
        assert sample.deviation("M1", VariationKind.VTH) == 0.0
        assert sample.relative("R1", VariationKind.RSHEET) == 1.0

    def test_global_plus_local_composition(self):
        model = small_model()
        x = np.zeros(model.n_variables)
        x[0] = 1.0  # global vth
        x[2] = 2.0  # M1 local vth
        sample = model.realize(x)
        assert sample.deviation("M1", VariationKind.VTH) == pytest.approx(
            0.02 * 1.0 + 0.003 * 2.0
        )

    def test_global_applies_to_undeclared_device(self):
        model = small_model()
        x = np.zeros(model.n_variables)
        x[1] = 1.0  # global beta
        sample = model.realize(x)
        # R1 declares no beta mismatch but still sees the die-level shift.
        assert sample.deviation("R1", VariationKind.BETA) == pytest.approx(
            0.05
        )

    def test_relative_clipping(self):
        model = small_model()
        x = np.zeros(model.n_variables)
        x[4] = -1000.0  # extreme tail on R1 rsheet
        sample = model.realize(x)
        assert sample.relative("R1", VariationKind.RSHEET) == 0.05

    def test_relative_rejects_vth(self):
        model = small_model()
        sample = model.realize(np.zeros(model.n_variables))
        with pytest.raises(ValueError, match="absolute"):
            sample.relative("M1", VariationKind.VTH)

    def test_wrong_length_rejected(self):
        model = small_model()
        with pytest.raises(ValueError, match="length"):
            model.realize(np.zeros(3))

    def test_x_readonly_view(self):
        model = small_model()
        sample = model.realize(np.zeros(model.n_variables))
        with pytest.raises(ValueError):
            sample.x[0] = 1.0

    def test_realize_batch(self):
        model = small_model()
        batch = model.realize_batch(np.zeros((3, model.n_variables)))
        assert len(batch) == 3

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_deviation_linear_in_x(self, seed):
        """Deviations are linear: dev(a·x) = a·dev(x)."""
        model = small_model()
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(model.n_variables)
        s1 = model.realize(x)
        s2 = model.realize(2.0 * x)
        for device in ("M1", "R1"):
            d1 = s1.deviation(device, VariationKind.VTH)
            d2 = s2.deviation(device, VariationKind.VTH)
            assert d2 == pytest.approx(2.0 * d1, abs=1e-12)
