"""Tests for polynomial basis dictionaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis.polynomial import CrossTermBasis, LinearBasis, QuadraticBasis


class TestLinearBasis:
    def test_n_basis(self):
        assert LinearBasis(5).n_basis == 6

    def test_names(self):
        basis = LinearBasis(2)
        assert basis.names == ("1", "x1", "x2")

    def test_expansion_values(self):
        basis = LinearBasis(2)
        x = np.array([[3.0, -1.0]])
        design = basis.expand(x)
        assert np.allclose(design, [[1.0, 3.0, -1.0]])

    def test_expand_states(self):
        basis = LinearBasis(3)
        designs = basis.expand_states([np.zeros((2, 3)), np.ones((4, 3))])
        assert designs[0].shape == (2, 4)
        assert designs[1].shape == (4, 4)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            LinearBasis(3).expand(np.zeros((2, 4)))

    def test_rejects_zero_variables(self):
        with pytest.raises(ValueError):
            LinearBasis(0)


class TestQuadraticBasis:
    def test_n_basis(self):
        assert QuadraticBasis(4).n_basis == 9

    def test_centered_squares(self):
        basis = QuadraticBasis(1)
        design = basis.expand(np.array([[2.0]]))
        assert np.allclose(design, [[1.0, 2.0, 3.0]])  # x²−1 = 3

    def test_square_columns_zero_mean_under_normal(self):
        rng = np.random.default_rng(0)
        basis = QuadraticBasis(2)
        design = basis.expand(rng.standard_normal((50_000, 2)))
        square_columns = design[:, 3:]
        assert np.all(np.abs(square_columns.mean(axis=0)) < 0.05)


class TestCrossTermBasis:
    def test_names_and_values(self):
        basis = CrossTermBasis(3, pairs=[(0, 2)])
        assert basis.names[-1] == "x1*x3"
        design = basis.expand(np.array([[2.0, 5.0, 4.0]]))
        assert design[0, -1] == pytest.approx(8.0)

    def test_with_squares(self):
        basis = CrossTermBasis(2, pairs=[(0, 1)], include_squares=True)
        assert basis.n_basis == 1 + 2 + 2 + 1

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(ValueError, match="out of range"):
            CrossTermBasis(2, pairs=[(0, 5)])

    def test_rejects_square_pair(self):
        with pytest.raises(ValueError, match="square"):
            CrossTermBasis(3, pairs=[(1, 1)])

    def test_rejects_duplicate_pairs(self):
        with pytest.raises(ValueError, match="duplicate"):
            CrossTermBasis(3, pairs=[(0, 1), (1, 0)])

    def test_empty_pairs_is_linear(self):
        basis = CrossTermBasis(3, pairs=[])
        linear = LinearBasis(3)
        x = np.random.default_rng(1).standard_normal((4, 3))
        assert np.allclose(basis.expand(x), linear.expand(x))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_vars=st.integers(1, 6),
    n_samples=st.integers(1, 10),
)
def test_property_linearity_of_linear_basis(seed, n_vars, n_samples):
    """Linear basis commutes with affine input combinations (ex intercept)."""
    rng = np.random.default_rng(seed)
    basis = LinearBasis(n_vars)
    a = rng.standard_normal((n_samples, n_vars))
    b = rng.standard_normal((n_samples, n_vars))
    lhs = basis.expand(a + b)
    rhs = basis.expand(a) + basis.expand(b)
    # Intercept column doubles on the right; all others match.
    assert np.allclose(lhs[:, 1:], rhs[:, 1:])
    assert np.allclose(rhs[:, 0], 2.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n_vars=st.integers(1, 5))
def test_property_expansion_shape(seed, n_vars):
    rng = np.random.default_rng(seed)
    for basis in (LinearBasis(n_vars), QuadraticBasis(n_vars)):
        x = rng.standard_normal((7, n_vars))
        assert basis.expand(x).shape == (7, basis.n_basis)
        assert len(basis.names) == basis.n_basis
