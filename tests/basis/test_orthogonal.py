"""Tests for the normalized Hermite basis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis.orthogonal import HermiteBasis, hermite_normalized
from repro.basis.polynomial import LinearBasis


class TestHermiteNormalized:
    def test_degree_zero_is_one(self):
        assert np.allclose(hermite_normalized(np.array([3.0]), 0), 1.0)

    def test_degree_one_is_identity(self):
        x = np.array([-1.5, 0.0, 2.0])
        assert np.allclose(hermite_normalized(x, 1), x)

    def test_degree_two_value(self):
        assert hermite_normalized(np.array([2.0]), 2)[0] == pytest.approx(
            3.0 / math.sqrt(2.0)
        )

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            hermite_normalized(np.array([1.0]), 5)

    @settings(max_examples=10, deadline=None)
    @given(degree=st.integers(1, 4))
    def test_property_orthonormal_under_standard_normal(self, degree):
        """E[ĥ_d²] = 1 and E[ĥ_d ĥ_d'] = 0 under N(0,1)."""
        rng = np.random.default_rng(degree)
        x = rng.standard_normal(400_000)
        h_d = hermite_normalized(x, degree)
        assert np.mean(h_d * h_d) == pytest.approx(1.0, abs=0.05)
        for other in range(degree):
            h_o = hermite_normalized(x, other)
            assert abs(np.mean(h_d * h_o)) < 0.05


class TestHermiteBasis:
    def test_column_count(self):
        assert HermiteBasis(5, degree=3).n_basis == 1 + 3 * 5

    def test_names_grouped_by_degree(self):
        basis = HermiteBasis(2, degree=2)
        assert basis.names == (
            "1", "He1(x1)", "He1(x2)", "He2(x1)", "He2(x2)"
        )

    def test_degree_one_matches_linear_basis(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((10, 4))
        hermite = HermiteBasis(4, degree=1).expand(x)
        linear = LinearBasis(4).expand(x)
        assert np.allclose(hermite, linear)

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            HermiteBasis(3, degree=0)

    def test_columns_nearly_uncorrelated(self):
        """Empirical Gram of the non-constant columns ≈ identity."""
        rng = np.random.default_rng(1)
        basis = HermiteBasis(3, degree=3)
        design = basis.expand(rng.standard_normal((100_000, 3)))
        gram = design.T @ design / design.shape[0]
        assert np.allclose(gram, np.eye(basis.n_basis), atol=0.05)

    def test_better_conditioning_than_raw_monomials(self):
        """At degree 2 the Hermite design is better conditioned than the
        raw-square design on the same samples."""
        from repro.basis.polynomial import QuadraticBasis

        rng = np.random.default_rng(2)
        x = rng.standard_normal((400, 6))
        hermite = HermiteBasis(6, degree=2).expand(x)
        raw = np.hstack([np.ones((400, 1)), x, x * x])  # uncentered squares
        cond_h = np.linalg.cond(hermite)
        cond_raw = np.linalg.cond(raw)
        assert cond_h < cond_raw

    def test_usable_by_estimators(self):
        """End-to-end: C-BMF on a Hermite-expanded quadratic truth."""
        from repro.core.cbmf import CBMF
        from repro.core.em import EmConfig
        from repro.core.somp_init import InitConfig

        rng = np.random.default_rng(3)
        n_states, n_vars, n = 3, 10, 30
        basis = HermiteBasis(n_vars, degree=2)
        coef = np.zeros(basis.n_basis)
        coef[0], coef[2], coef[1 + n_vars + 4] = 5.0, 2.0, 1.5
        designs, targets = [], []
        for k in range(n_states):
            x = rng.standard_normal((n, n_vars))
            design = basis.expand(x)
            designs.append(design)
            targets.append(
                design @ (coef * (1 + 0.1 * k))
                + 0.02 * rng.standard_normal(n)
            )
        model = CBMF(
            init_config=InitConfig(
                r0_grid=(0.9,), sigma0_grid=(0.1,), n_basis_grid=(4,),
                n_folds=3,
            ),
            em_config=EmConfig(max_iterations=10),
            seed=0,
        ).fit(designs, targets)
        residual = model.predict(designs[0], 0) - targets[0]
        assert np.sqrt(np.mean(residual**2)) < 0.5
