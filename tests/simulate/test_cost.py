"""Tests for the modeling-cost model and the simulation ledger."""

import pytest

from repro.simulate.cost import (
    CostLedger,
    CostModel,
    LNA_COST_MODEL,
    MIXER_COST_MODEL,
    ModelingCost,
)


class TestCostModel:
    def test_simulation_cost_scales_with_samples(self):
        model = CostModel(10.0)
        cost = model.cost(360, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(1.0)

    def test_total_includes_fitting(self):
        model = CostModel(1.0)
        cost = model.cost(3600, fitting_seconds=1800.0)
        assert cost.total_hours == pytest.approx(1.5)

    def test_zero_samples(self):
        cost = CostModel(5.0).cost(0, fitting_seconds=2.0)
        assert cost.simulation_seconds == 0.0
        assert cost.total_seconds == 2.0

    def test_rejects_negative_fitting(self):
        with pytest.raises(ValueError):
            CostModel(1.0).cost(10, fitting_seconds=-1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            CostModel(0.0)


class TestPaperCalibration:
    def test_lna_matches_table1(self):
        """1120 samples → 2.72 simulated hours (paper Table 1)."""
        cost = LNA_COST_MODEL.cost(1120, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(2.72, abs=0.01)

    def test_mixer_matches_table2(self):
        cost = MIXER_COST_MODEL.cost(1120, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(17.20, abs=0.01)

    def test_cbmf_budget_halves_cost(self):
        """480 samples at the LNA rate ≈ the paper's 1.16 hours."""
        cost = LNA_COST_MODEL.cost(480, fitting_seconds=316.0)
        assert cost.simulation_hours == pytest.approx(1.17, abs=0.01)
        assert cost.total_hours == pytest.approx(1.25, abs=0.01)


class TestModelingCost:
    def test_properties(self):
        cost = ModelingCost(
            n_samples=10, simulation_seconds=7200.0, fitting_seconds=3600.0
        )
        assert cost.simulation_hours == 2.0
        assert cost.total_seconds == 10800.0
        assert cost.total_hours == 3.0


class TestCostLedger:
    def test_counts_per_state(self):
        ledger = CostLedger(3)
        assert ledger.n_states == 3
        assert ledger.per_state == (0, 0, 0)
        assert ledger.total == 0
        ledger.record(0, 5)
        ledger.record(2, 3)
        ledger.record(0)  # defaults to one sample
        assert ledger.per_state == (6, 0, 3)
        assert ledger.total == 9

    def test_round_trip(self):
        ledger = CostLedger(2)
        ledger.record(0, 4)
        ledger.record(1, 7)
        clone = CostLedger.from_dict(ledger.to_dict())
        assert clone == ledger
        assert clone.per_state == (4, 7)
        # equality is by content, not identity
        other = CostLedger(2)
        other.record(0, 4)
        assert other != ledger
        other.record(1, 7)
        assert other == ledger

    def test_dict_is_json_friendly(self):
        import json

        ledger = CostLedger(2)
        ledger.record(1, 3)
        payload = ledger.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_modeling_cost(self):
        ledger = CostLedger(2)
        ledger.record(0, 100)
        ledger.record(1, 260)
        cost = ledger.modeling_cost(CostModel(10.0), fitting_seconds=1800.0)
        assert cost.n_samples == 360
        assert cost.simulation_hours == pytest.approx(1.0)
        assert cost.total_hours == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostLedger(0)
        ledger = CostLedger(2)
        with pytest.raises(IndexError):
            ledger.record(5, 1)
        with pytest.raises(ValueError):
            ledger.record(0, -1)
