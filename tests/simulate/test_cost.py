"""Tests for the modeling-cost model."""

import pytest

from repro.simulate.cost import (
    CostModel,
    LNA_COST_MODEL,
    MIXER_COST_MODEL,
    ModelingCost,
)


class TestCostModel:
    def test_simulation_cost_scales_with_samples(self):
        model = CostModel(10.0)
        cost = model.cost(360, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(1.0)

    def test_total_includes_fitting(self):
        model = CostModel(1.0)
        cost = model.cost(3600, fitting_seconds=1800.0)
        assert cost.total_hours == pytest.approx(1.5)

    def test_zero_samples(self):
        cost = CostModel(5.0).cost(0, fitting_seconds=2.0)
        assert cost.simulation_seconds == 0.0
        assert cost.total_seconds == 2.0

    def test_rejects_negative_fitting(self):
        with pytest.raises(ValueError):
            CostModel(1.0).cost(10, fitting_seconds=-1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            CostModel(0.0)


class TestPaperCalibration:
    def test_lna_matches_table1(self):
        """1120 samples → 2.72 simulated hours (paper Table 1)."""
        cost = LNA_COST_MODEL.cost(1120, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(2.72, abs=0.01)

    def test_mixer_matches_table2(self):
        cost = MIXER_COST_MODEL.cost(1120, fitting_seconds=0.0)
        assert cost.simulation_hours == pytest.approx(17.20, abs=0.01)

    def test_cbmf_budget_halves_cost(self):
        """480 samples at the LNA rate ≈ the paper's 1.16 hours."""
        cost = LNA_COST_MODEL.cost(480, fitting_seconds=316.0)
        assert cost.simulation_hours == pytest.approx(1.17, abs=0.01)
        assert cost.total_hours == pytest.approx(1.25, abs=0.01)


class TestModelingCost:
    def test_properties(self):
        cost = ModelingCost(
            n_samples=10, simulation_seconds=7200.0, fitting_seconds=3600.0
        )
        assert cost.simulation_hours == 2.0
        assert cost.total_seconds == 10800.0
        assert cost.total_hours == 3.0
