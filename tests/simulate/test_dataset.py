"""Tests for dataset containers."""

import numpy as np
import pytest

from repro.simulate.dataset import Dataset, StateData


def make_state(n=10, n_vars=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, n_vars))
    return StateData(
        x=x, y={"a": x[:, 0] * 2.0, "b": np.arange(float(n))}
    )


def make_dataset(n_states=3, n=10):
    return Dataset(
        "test",
        [make_state(n=n, seed=k) for k in range(n_states)],
    )


class TestStateData:
    def test_n_samples(self):
        assert make_state(7).n_samples == 7

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="length"):
            StateData(x=np.zeros((3, 2)), y={"a": np.zeros(4)})

    def test_rejects_empty_metrics(self):
        with pytest.raises(ValueError, match="at least one metric"):
            StateData(x=np.zeros((3, 2)), y={})

    def test_head(self):
        head = make_state(10).head(4)
        assert head.n_samples == 4
        assert head.y["b"][-1] == 3.0

    def test_tail(self):
        tail = make_state(10).tail(4)
        assert tail.n_samples == 4
        assert tail.y["b"][0] == 6.0

    def test_head_range_checked(self):
        with pytest.raises(ValueError):
            make_state(5).head(6)
        with pytest.raises(ValueError):
            make_state(5).tail(0)

    def test_head_returns_copy(self):
        state = make_state(5)
        head = state.head(2)
        head.x[0, 0] = 999.0
        assert state.x[0, 0] != 999.0


class TestDataset:
    def test_basic_shape(self):
        data = make_dataset()
        assert data.n_states == 3
        assert data.n_samples_per_state == (10, 10, 10)
        assert data.n_samples_total == 30
        assert data.n_variables == 4

    def test_metric_names_sorted_by_default(self):
        assert make_dataset().metric_names == ("a", "b")

    def test_inputs_and_targets(self):
        data = make_dataset()
        assert len(data.inputs()) == 3
        assert len(data.targets("a")) == 3
        with pytest.raises(KeyError):
            data.targets("missing")

    def test_rejects_inconsistent_variables(self):
        states = [make_state(n_vars=4), make_state(n_vars=5)]
        with pytest.raises(ValueError, match="variables"):
            Dataset("bad", states)

    def test_rejects_missing_metric(self):
        good = make_state()
        bad = StateData(x=np.zeros((3, 4)), y={"a": np.zeros(3)})
        with pytest.raises(ValueError, match="missing metrics"):
            Dataset("bad", [good, bad])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one state"):
            Dataset("bad", [])

    def test_head(self):
        head = make_dataset(n=10).head(3)
        assert head.n_samples_per_state == (3, 3, 3)

    def test_split(self):
        train, test = make_dataset(n=10).split(6)
        assert train.n_samples_per_state == (6, 6, 6)
        assert test.n_samples_per_state == (4, 4, 4)
        # Disjoint: train is head, test is tail.
        assert train.states[0].y["b"][-1] == 5.0
        assert test.states[0].y["b"][0] == 6.0

    def test_split_range_checked(self):
        with pytest.raises(ValueError):
            make_dataset(n=10).split(10)
        with pytest.raises(ValueError):
            make_dataset(n=10).split(0)

    def test_concat(self):
        a = make_dataset(n=4)
        b = make_dataset(n=6)
        merged = Dataset.concat(a, b)
        assert merged.n_samples_per_state == (10, 10, 10)
        assert np.allclose(merged.states[0].x[:4], a.states[0].x)
        assert np.allclose(merged.states[0].x[4:], b.states[0].x)
        assert np.allclose(
            merged.states[1].y["a"],
            np.concatenate([a.states[1].y["a"], b.states[1].y["a"]]),
        )

    def test_concat_rejects_circuit_mismatch(self):
        a = make_dataset()
        b = Dataset("other", [make_state(seed=k) for k in range(3)])
        with pytest.raises(ValueError, match="circuit"):
            Dataset.concat(a, b)

    def test_concat_rejects_state_mismatch(self):
        a = make_dataset(n_states=3)
        b = make_dataset(n_states=2)
        with pytest.raises(ValueError, match="state-count"):
            Dataset.concat(a, b)

    def test_save_load_roundtrip(self, tmp_path):
        data = make_dataset()
        path = tmp_path / "data.npz"
        data.save(path)
        loaded = Dataset.load(path)
        assert loaded.circuit_name == data.circuit_name
        assert loaded.metric_names == data.metric_names
        assert loaded.n_states == data.n_states
        for a, b in zip(loaded.states, data.states):
            assert np.allclose(a.x, b.x)
            for metric in data.metric_names:
                assert np.allclose(a.y[metric], b.y[metric])
