"""Tests for the Monte Carlo engine."""

import numpy as np
import pytest

from repro.simulate.montecarlo import MonteCarloEngine


class TestRun:
    def test_shapes(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=0).run(5)
        assert data.n_states == tiny_lna.n_states
        assert data.n_samples_per_state == (5,) * tiny_lna.n_states
        assert data.n_variables == tiny_lna.n_variables
        assert data.metric_names == tiny_lna.metric_names

    def test_reproducible_with_seed(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=9).run(3)
        b = MonteCarloEngine(tiny_lna, seed=9).run(3)
        for sa, sb in zip(a.states, b.states):
            assert np.allclose(sa.x, sb.x)
            assert np.allclose(sa.y["gain_db"], sb.y["gain_db"])

    def test_different_seeds_differ(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=1).run(3)
        b = MonteCarloEngine(tiny_lna, seed=2).run(3)
        assert not np.allclose(a.states[0].x, b.states[0].x)

    def test_states_get_independent_samples(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=3).run(4)
        assert not np.allclose(data.states[0].x, data.states[1].x)

    def test_shared_samples_mode(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=4).run(
            4, shared_samples=True
        )
        assert np.allclose(data.states[0].x, data.states[1].x)
        # Same die, different knob → metrics still differ by state.
        assert not np.allclose(
            data.states[0].y["gain_db"], data.states[-1].y["gain_db"]
        )

    def test_targets_are_circuit_outputs(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=5).run(2)
        state = tiny_lna.states[1]
        expected = tiny_lna.evaluate_x(data.states[1].x[0], state)
        assert data.states[1].y["nf_db"][0] == pytest.approx(
            expected["nf_db"]
        )

    def test_rejects_zero_samples(self, tiny_lna):
        with pytest.raises(ValueError):
            MonteCarloEngine(tiny_lna).run(0)

    def test_lhs_sampler_stratified(self, tiny_lna):
        from scipy import stats

        data = MonteCarloEngine(tiny_lna, seed=7, sampler="lhs").run(16)
        uniforms = stats.norm.cdf(data.states[0].x[:, 0])
        bins = np.floor(uniforms * 16).astype(int)
        assert sorted(bins) == list(range(16))

    def test_lhs_reproducible(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=8, sampler="lhs").run(4)
        b = MonteCarloEngine(tiny_lna, seed=8, sampler="lhs").run(4)
        assert np.allclose(a.states[0].x, b.states[0].x)

    def test_unknown_sampler_rejected(self, tiny_lna):
        with pytest.raises(ValueError, match="sampler"):
            MonteCarloEngine(tiny_lna, sampler="sobol")

    def test_progress_callback(self, tiny_lna):
        seen = []
        MonteCarloEngine(tiny_lna, seed=6).run(
            2, progress=lambda index, total: seen.append((index, total))
        )
        assert len(seen) == tiny_lna.n_states


class TestEvaluatePoints:
    def test_matches_run_targets(self, tiny_lna):
        """Re-evaluating a run's own points reproduces its targets."""
        engine = MonteCarloEngine(tiny_lna, seed=11)
        data = engine.run(4)
        for k, state_data in enumerate(data.states):
            values = engine.evaluate_points(state_data.x, k)
            assert set(values) == set(tiny_lna.metric_names)
            for metric in tiny_lna.metric_names:
                assert np.allclose(values[metric], state_data.y[metric])

    def test_deterministic(self, tiny_lna):
        engine = MonteCarloEngine(tiny_lna, seed=12)
        x = np.random.default_rng(0).standard_normal(
            (3, tiny_lna.n_variables)
        )
        first = engine.evaluate_points(x, 0)
        second = engine.evaluate_points(x, 0)
        for metric in first:
            assert np.array_equal(first[metric], second[metric])

    def test_validation(self, tiny_lna):
        engine = MonteCarloEngine(tiny_lna)
        good = np.zeros((2, tiny_lna.n_variables))
        with pytest.raises(IndexError):
            engine.evaluate_points(good, 99)
        with pytest.raises(ValueError):
            engine.evaluate_points(np.zeros((2, 1)), 0)
