"""Tests for the Monte Carlo engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulate.montecarlo import MonteCarloEngine


class TestRun:
    def test_shapes(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=0).run(5)
        assert data.n_states == tiny_lna.n_states
        assert data.n_samples_per_state == (5,) * tiny_lna.n_states
        assert data.n_variables == tiny_lna.n_variables
        assert data.metric_names == tiny_lna.metric_names

    def test_reproducible_with_seed(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=9).run(3)
        b = MonteCarloEngine(tiny_lna, seed=9).run(3)
        for sa, sb in zip(a.states, b.states):
            assert np.allclose(sa.x, sb.x)
            assert np.allclose(sa.y["gain_db"], sb.y["gain_db"])

    def test_different_seeds_differ(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=1).run(3)
        b = MonteCarloEngine(tiny_lna, seed=2).run(3)
        assert not np.allclose(a.states[0].x, b.states[0].x)

    def test_states_get_independent_samples(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=3).run(4)
        assert not np.allclose(data.states[0].x, data.states[1].x)

    def test_shared_samples_mode(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=4).run(
            4, shared_samples=True
        )
        assert np.allclose(data.states[0].x, data.states[1].x)
        # Same die, different knob → metrics still differ by state.
        assert not np.allclose(
            data.states[0].y["gain_db"], data.states[-1].y["gain_db"]
        )

    def test_targets_are_circuit_outputs(self, tiny_lna):
        data = MonteCarloEngine(tiny_lna, seed=5).run(2)
        state = tiny_lna.states[1]
        expected = tiny_lna.evaluate_x(data.states[1].x[0], state)
        assert data.states[1].y["nf_db"][0] == pytest.approx(
            expected["nf_db"]
        )

    def test_rejects_zero_samples(self, tiny_lna):
        with pytest.raises(ValueError):
            MonteCarloEngine(tiny_lna).run(0)

    def test_lhs_sampler_stratified(self, tiny_lna):
        from scipy import stats

        data = MonteCarloEngine(tiny_lna, seed=7, sampler="lhs").run(16)
        uniforms = stats.norm.cdf(data.states[0].x[:, 0])
        bins = np.floor(uniforms * 16).astype(int)
        assert sorted(bins) == list(range(16))

    def test_lhs_reproducible(self, tiny_lna):
        a = MonteCarloEngine(tiny_lna, seed=8, sampler="lhs").run(4)
        b = MonteCarloEngine(tiny_lna, seed=8, sampler="lhs").run(4)
        assert np.allclose(a.states[0].x, b.states[0].x)

    def test_unknown_sampler_rejected(self, tiny_lna):
        with pytest.raises(ValueError, match="sampler"):
            MonteCarloEngine(tiny_lna, sampler="sobol")

    def test_progress_callback(self, tiny_lna):
        seen = []
        MonteCarloEngine(tiny_lna, seed=6).run(
            2, progress=lambda index, total: seen.append((index, total))
        )
        assert len(seen) == tiny_lna.n_states


class TestEvaluatePoints:
    def test_matches_run_targets(self, tiny_lna):
        """Re-evaluating a run's own points reproduces its targets."""
        engine = MonteCarloEngine(tiny_lna, seed=11)
        data = engine.run(4)
        for k, state_data in enumerate(data.states):
            values = engine.evaluate_points(state_data.x, k)
            assert set(values) == set(tiny_lna.metric_names)
            for metric in tiny_lna.metric_names:
                assert np.allclose(values[metric], state_data.y[metric])

    def test_deterministic(self, tiny_lna):
        engine = MonteCarloEngine(tiny_lna, seed=12)
        x = np.random.default_rng(0).standard_normal(
            (3, tiny_lna.n_variables)
        )
        first = engine.evaluate_points(x, 0)
        second = engine.evaluate_points(x, 0)
        for metric in first:
            assert np.array_equal(first[metric], second[metric])

    def test_validation(self, tiny_lna):
        engine = MonteCarloEngine(tiny_lna)
        good = np.zeros((2, tiny_lna.n_variables))
        with pytest.raises(IndexError):
            engine.evaluate_points(good, 99)
        with pytest.raises(ValueError):
            engine.evaluate_points(np.zeros((2, 1)), 0)


class FlakyCircuit:
    """Delegates to a base circuit; the first ``n_failures`` evaluations
    misbehave (raise, or poison one metric with NaN)."""

    def __init__(self, base, n_failures, mode="raise", consecutive=True):
        self._base = base
        self.remaining = n_failures
        self.mode = mode
        self.consecutive = consecutive
        self.calls = 0
        self._just_failed = False

    def __getattr__(self, name):
        return getattr(self._base, name)

    def _maybe_fail(self, values):
        self.calls += 1
        if self.remaining <= 0 or (
            self._just_failed and not self.consecutive
        ):
            self._just_failed = False
            return values
        self.remaining -= 1
        self._just_failed = True
        if self.mode == "raise":
            raise RuntimeError("simulator hiccup")
        if self.mode == "interrupt":
            raise KeyboardInterrupt("simulator killed")
        poisoned = dict(values)
        poisoned[next(iter(poisoned))] = float("nan")
        return poisoned

    def evaluate(self, sample, state):
        return self._maybe_fail(self._base.evaluate(sample, state))

    def evaluate_x(self, x, state):
        return self._maybe_fail(self._base.evaluate_x(x, state))


class TestRetry:
    def test_validation(self, tiny_lna):
        with pytest.raises(ValueError, match="max_retries"):
            MonteCarloEngine(tiny_lna, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            MonteCarloEngine(tiny_lna, retry_backoff=-0.1)

    def test_transient_raise_recovered_bit_identical(self, tiny_lna):
        """Failing once per row, every retry succeeds: the dataset is
        byte-for-byte the clean run — sampling never sees the faults."""
        flaky = FlakyCircuit(tiny_lna, n_failures=3, consecutive=False)
        recovered = MonteCarloEngine(flaky, seed=21, max_retries=1).run(4)
        clean = MonteCarloEngine(tiny_lna, seed=21).run(4)
        assert flaky.remaining == 0
        for got, want in zip(recovered.states, clean.states):
            assert np.array_equal(got.x, want.x)
            for metric in tiny_lna.metric_names:
                assert np.array_equal(got.y[metric], want.y[metric])

    def test_nonfinite_metric_triggers_retry(self, tiny_lna):
        flaky = FlakyCircuit(
            tiny_lna, n_failures=2, mode="nan", consecutive=False
        )
        data = MonteCarloEngine(flaky, seed=22, max_retries=1).run(3)
        for state_data in data.states:
            for metric in tiny_lna.metric_names:
                assert np.all(np.isfinite(state_data.y[metric]))

    def test_exhaustion_names_state_and_row(self, tiny_lna):
        flaky = FlakyCircuit(tiny_lna, n_failures=10)
        engine = MonteCarloEngine(flaky, seed=23, max_retries=1)
        with pytest.raises(SimulationError, match=r"state 0, row 0"):
            engine.run(2)
        engine = MonteCarloEngine(
            FlakyCircuit(tiny_lna, n_failures=10), max_retries=1
        )
        with pytest.raises(SimulationError, match=r"2 attempt\(s\)"):
            engine.run(2)

    def test_default_zero_retries_raises_on_nan(self, tiny_lna):
        flaky = FlakyCircuit(tiny_lna, n_failures=1, mode="nan")
        with pytest.raises(SimulationError, match="non-finite"):
            MonteCarloEngine(flaky, seed=24).run(2)

    def test_simulation_error_is_repro_error(self, tiny_lna):
        from repro.errors import ReproError

        flaky = FlakyCircuit(tiny_lna, n_failures=5)
        with pytest.raises(ReproError):
            MonteCarloEngine(flaky, seed=25).run(2)

    def test_keyboard_interrupt_never_retried(self, tiny_lna):
        flaky = FlakyCircuit(tiny_lna, n_failures=1, mode="interrupt")
        engine = MonteCarloEngine(flaky, seed=26, max_retries=5)
        with pytest.raises(KeyboardInterrupt):
            engine.run(2)
        assert flaky.calls == 1

    def test_evaluate_points_retries(self, tiny_lna):
        x = np.random.default_rng(0).standard_normal(
            (3, tiny_lna.n_variables)
        )
        flaky = FlakyCircuit(tiny_lna, n_failures=1, consecutive=False)
        values = MonteCarloEngine(flaky, max_retries=1).evaluate_points(x, 0)
        clean = MonteCarloEngine(tiny_lna).evaluate_points(x, 0)
        for metric in tiny_lna.metric_names:
            assert np.array_equal(values[metric], clean[metric])
