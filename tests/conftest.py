"""Shared fixtures: tiny circuits, cached datasets, synthetic problems.

Session-scoped fixtures cache the expensive pieces (circuit Monte Carlo)
so the several-hundred-test suite stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import pytest

from repro.circuits.lna import TunableLNA
from repro.circuits.mixer import TunableMixer
from repro.simulate.dataset import Dataset
from repro.simulate.montecarlo import MonteCarloEngine


@dataclass
class SyntheticProblem:
    """A multi-state sparse linear problem with known ground truth."""

    coef: np.ndarray  # (K, M) true coefficients
    support: np.ndarray  # true active basis indices
    correlation: np.ndarray  # (K, K) cross-state correlation used
    noise_std: float
    rng: np.random.Generator

    @property
    def n_states(self) -> int:
        return self.coef.shape[0]

    @property
    def n_basis(self) -> int:
        return self.coef.shape[1]

    def sample(
        self, n_per_state: int
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Draw per-state designs (intercept + gaussian columns) and targets."""
        designs, targets = [], []
        for k in range(self.n_states):
            design = self.rng.standard_normal((n_per_state, self.n_basis))
            design[:, 0] = 1.0
            noise = self.noise_std * self.rng.standard_normal(n_per_state)
            designs.append(design)
            targets.append(design @ self.coef[k] + noise)
        return designs, targets


def make_synthetic(
    seed: int = 0,
    n_states: int = 8,
    n_basis: int = 60,
    n_support: int = 5,
    r0: float = 0.9,
    noise_std: float = 0.05,
    intercept: float = 4.0,
) -> SyntheticProblem:
    """Build a correlated sparse ground truth (shared template)."""
    rng = np.random.default_rng(seed)
    support = rng.choice(np.arange(1, n_basis), n_support, replace=False)
    indexes = np.arange(n_states)
    correlation = r0 ** np.abs(indexes[:, None] - indexes[None, :])
    chol = np.linalg.cholesky(correlation)
    coef = np.zeros((n_states, n_basis))
    coef[:, 0] = intercept
    for m in support:
        coef[:, m] = (chol @ rng.standard_normal(n_states)) * rng.uniform(
            0.5, 2.0
        )
    return SyntheticProblem(
        coef=coef,
        support=np.sort(support),
        correlation=correlation,
        noise_std=noise_std,
        rng=rng,
    )


@pytest.fixture(scope="session")
def synthetic_problem() -> SyntheticProblem:
    """Default synthetic correlated-sparse problem."""
    return make_synthetic()


@pytest.fixture(scope="session")
def tiny_lna() -> TunableLNA:
    """6-state LNA without peripheral padding (fast)."""
    return TunableLNA(n_states=6, n_variables=None)


@pytest.fixture(scope="session")
def tiny_mixer() -> TunableMixer:
    """6-state mixer without peripheral padding (fast)."""
    return TunableMixer(n_states=6, n_variables=None)


@pytest.fixture(scope="session")
def lna_dataset(tiny_lna) -> Dataset:
    """40 samples/state of the tiny LNA (split by tests as needed)."""
    return MonteCarloEngine(tiny_lna, seed=123).run(40)


@pytest.fixture(scope="session")
def mixer_dataset(tiny_mixer) -> Dataset:
    """40 samples/state of the tiny mixer."""
    return MonteCarloEngine(tiny_mixer, seed=321).run(40)
