"""Tests for the linear noise analysis."""

import numpy as np
import pytest

from repro.circuits.devices import BOLTZMANN, ROOM_TEMPERATURE
from repro.circuits.mna import Circuit
from repro.circuits.noise import NoiseAnalysis, NoiseSource

FOUR_KT = 4.0 * BOLTZMANN * ROOM_TEMPERATURE


def resistive_divider_noise(rs: float, rl: float):
    """Source resistor + load resistor to ground; output across RL."""
    c = Circuit()
    c.add_resistor("RS", "in", "out", rs)
    c.add_resistor("RL", "out", "0", rl)
    # Input node driven by silent source → short 'in' to ground through RS:
    # here 'in' is grounded by making RS go to ground directly.
    c2 = Circuit()
    c2.add_resistor("RS", "out", "0", rs)
    c2.add_resistor("RL", "out", "0", rl)
    sources = [
        NoiseSource("RS", "0", "out", FOUR_KT / rs),
        NoiseSource("RL", "0", "out", FOUR_KT / rl),
    ]
    return c2, sources


class TestNoiseSource:
    def test_rejects_negative_psd(self):
        with pytest.raises(ValueError):
            NoiseSource("X", "a", "0", -1.0)

    def test_contribution_output_psd(self):
        from repro.circuits.noise import NoiseContribution

        c = NoiseContribution("X", input_psd=2.0, transfer_mag_squared=3.0)
        assert c.output_psd == 6.0


class TestResistiveAttenuatorNoise:
    def test_matched_attenuator_noise_factor(self):
        """A resistive divider's noise factor equals its attenuation.

        For Rs with shunt RL: F = 1 + Rs/RL (available-gain argument;
        here computed from voltage transfers, which agrees because both
        generators see the same output impedance).
        """
        rs, rl = 50.0, 150.0
        circuit, sources = resistive_divider_noise(rs, rl)
        analysis = NoiseAnalysis(circuit, "out")
        factor = analysis.noise_factor(1e6, sources, "RS")
        assert factor == pytest.approx(1.0 + rs / rl, rel=1e-9)

    def test_noise_figure_db(self):
        circuit, sources = resistive_divider_noise(50.0, 50.0)
        analysis = NoiseAnalysis(circuit, "out")
        nf = analysis.noise_figure_db(1e6, sources, "RS")
        assert nf == pytest.approx(3.0103, abs=1e-3)

    def test_output_psd_is_4ktr_parallel(self):
        """Total output noise of resistors to ground = 4kT·R_parallel."""
        rs, rl = 80.0, 120.0
        circuit, sources = resistive_divider_noise(rs, rl)
        analysis = NoiseAnalysis(circuit, "out")
        parallel = rs * rl / (rs + rl)
        assert analysis.output_psd(1e3, sources) == pytest.approx(
            FOUR_KT * parallel, rel=1e-9
        )


class TestErrors:
    def test_unknown_reference(self):
        circuit, sources = resistive_divider_noise(50.0, 50.0)
        analysis = NoiseAnalysis(circuit, "out")
        with pytest.raises(KeyError, match="nope"):
            analysis.noise_factor(1e6, sources, "nope")

    def test_empty_sources(self):
        circuit, _ = resistive_divider_noise(50.0, 50.0)
        with pytest.raises(ValueError, match="at least one"):
            NoiseAnalysis(circuit, "out").contributions(1e6, [])

    def test_zero_reference_contribution(self):
        """Reference that does not couple to the output is rejected."""
        c = Circuit()
        c.add_resistor("R1", "a", "0", 100.0)
        c.add_resistor("R2", "b", "0", 100.0)  # isolated from 'a'
        sources = [
            NoiseSource("REF", "0", "b", FOUR_KT / 100.0),
            NoiseSource("R1", "0", "a", FOUR_KT / 100.0),
        ]
        analysis = NoiseAnalysis(c, "a")
        with pytest.raises(ValueError, match="zero output noise"):
            analysis.noise_factor(1e6, sources, "REF")


class TestBudgetReport:
    def test_contains_all_sources_and_nf(self):
        circuit, sources = resistive_divider_noise(50.0, 150.0)
        analysis = NoiseAnalysis(circuit, "out")
        report = analysis.budget_report(1e6, sources, "RS")
        assert "RS" in report and "RL" in report
        assert "noise figure vs RS" in report
        assert "100" not in report.split("share")[0]  # header sane

    def test_sorted_by_contribution(self):
        circuit, sources = resistive_divider_noise(50.0, 500.0)
        analysis = NoiseAnalysis(circuit, "out")
        report = analysis.budget_report(1e6, sources, "RS")
        lines = report.splitlines()
        # RS (larger Norton current into the same impedance) ranks first.
        assert lines[2].startswith("RS")

    def test_shares_sum_to_one(self):
        circuit, sources = resistive_divider_noise(70.0, 130.0)
        analysis = NoiseAnalysis(circuit, "out")
        contributions = analysis.contributions(1e6, sources)
        total = sum(c.output_psd for c in contributions)
        shares = [c.output_psd / total for c in contributions]
        assert sum(shares) == pytest.approx(1.0)

    def test_lna_budget_text(self, tiny_lna):
        report = tiny_lna.noise_budget(tiny_lna.states[0])
        assert "RS" in report
        assert "M1.drain" in report
        assert "noise figure" in report


class TestAmplifierNoise:
    def test_ideal_amplifier_adds_no_noise(self):
        """Noiseless VCCS after the source: F = 1."""
        c = Circuit()
        c.add_resistor("RS", "g", "0", 50.0)
        c.add_vccs("GM", "d", "0", "g", "0", 0.02)
        c.add_resistor("RL", "d", "0", 1_000.0)
        sources = [NoiseSource("RS", "0", "g", FOUR_KT / 50.0)]
        analysis = NoiseAnalysis(c, "d")
        assert analysis.noise_factor(1e6, sources, "RS") == pytest.approx(1.0)

    def test_drain_noise_raises_factor_textbook(self):
        """CS stage: F = 1 + γ/(gm·Rs)."""
        gm, rs, gamma = 0.02, 50.0, 1.3
        c = Circuit()
        c.add_resistor("RS", "g", "0", rs)
        c.add_vccs("GM", "d", "0", "g", "0", gm)
        c.add_resistor("RL", "d", "0", 1_000.0)
        sources = [
            NoiseSource("RS", "0", "g", FOUR_KT / rs),
            NoiseSource("M.drain", "d", "0", FOUR_KT * gamma * gm),
        ]
        analysis = NoiseAnalysis(c, "d")
        expected = 1.0 + gamma / (gm * rs)
        assert analysis.noise_factor(1e6, sources, "RS") == pytest.approx(
            expected, rel=1e-9
        )
