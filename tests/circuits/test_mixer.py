"""Tests for the tunable mixer circuit model."""

import numpy as np
import pytest

from repro.circuits.mixer import PAPER_N_VARIABLES, TunableMixer


@pytest.fixture(scope="module")
def mixer():
    return TunableMixer(n_states=4, n_variables=None)


class TestConstruction:
    def test_paper_variable_count(self):
        assert TunableMixer().n_variables == PAPER_N_VARIABLES == 1303

    def test_paper_state_count(self):
        assert TunableMixer().n_states == 32

    def test_metrics(self, mixer):
        assert mixer.metric_names == ("nf_db", "gain_db", "i1db_dbm")

    def test_name(self, mixer):
        assert mixer.name == "mixer"

    def test_rejects_bad_lo_swing(self):
        with pytest.raises(ValueError):
            TunableMixer(lo_swing=0.0)

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError, match="knob_layout"):
            TunableMixer(knob_layout="diagonal")


class TestIndependentLayout:
    @pytest.fixture(scope="class")
    def mixer2(self):
        return TunableMixer(
            n_states=32, n_variables=None, knob_layout="independent"
        )

    def test_cross_product_states(self, mixer2):
        assert mixer2.n_states == 32
        codes = {(s.values["left_code"], s.values["right_code"])
                 for s in mixer2.states}
        assert len(codes) == 32

    def test_two_knobs_per_state(self, mixer2):
        assert set(mixer2.states[0].values) == {"left_code", "right_code"}

    def test_imbalance_costs_gain(self, mixer2):
        """Equal average load, different split: imbalanced loses gain."""
        by_codes = {
            (int(s.values["left_code"]), int(s.values["right_code"])): s
            for s in mixer2.states
        }
        balanced = by_codes[(1, 2)]
        imbalanced = by_codes[(0, 7)]
        rb = mixer2.load_resistances(balanced, None)
        ri = mixer2.load_resistances(imbalanced, None)
        # Compare at (roughly) matched average load.
        gain_balanced = mixer2.nominal(balanced)["gain_db"]
        gain_imbalanced = mixer2.nominal(imbalanced)["gain_db"]
        avg_b, avg_i = sum(rb) / 2, sum(ri) / 2
        # Normalize the load difference out: gain ∝ 20·log10(R_avg).
        import math

        adjusted = gain_imbalanced - 20 * math.log10(avg_i / avg_b)
        assert adjusted < gain_balanced

    def test_per_bank_codes_respected(self, mixer2):
        state = mixer2.states[9]
        left, right = mixer2.load_resistances(state, None)
        assert left == mixer2.load_left.resistance(
            int(state.values["left_code"]), None
        )
        assert right == mixer2.load_right.resistance(
            int(state.values["right_code"]), None
        )

    def test_modellable(self, mixer2):
        """The 2-D knob space still fits with the AR(1)-seeded prior."""
        from repro.basis.polynomial import LinearBasis
        from repro.core.cbmf import CBMF
        from repro.evaluation.error import modeling_error_percent
        from repro.simulate.montecarlo import MonteCarloEngine

        small = TunableMixer(
            n_states=8, n_variables=None, knob_layout="independent"
        )
        data = MonteCarloEngine(small, seed=4).run(30)
        train, test = data.split(15)
        basis = LinearBasis(small.n_variables)
        model = CBMF(seed=0).fit(
            basis.expand_states(train.inputs()), train.targets("gain_db")
        )
        predictions = [
            model.predict(basis.expand(test.states[k].x), k)
            for k in range(small.n_states)
        ]
        error = modeling_error_percent(predictions, test.targets("gain_db"))
        assert error < 5.0


class TestNominalBehaviour:
    def test_metrics_in_plausible_ranges(self, mixer):
        for state in mixer.states:
            values = mixer.nominal(state)
            assert 5.0 < values["nf_db"] < 20.0
            assert 5.0 < values["gain_db"] < 30.0
            assert -40.0 < values["i1db_dbm"] < 5.0

    def test_load_resistance_monotone_decreasing(self, mixer):
        loads = [
            mixer.load_resistance(state, None) for state in mixer.states
        ]
        assert all(b < a for a, b in zip(loads, loads[1:]))

    def test_gain_follows_load(self, mixer):
        """Lower load resistance → lower conversion gain."""
        gains = [mixer.nominal(s)["gain_db"] for s in mixer.states]
        assert all(b < a for a, b in zip(gains, gains[1:]))

    def test_compression_improves_as_gain_drops(self, mixer):
        i1db = [mixer.nominal(s)["i1db_dbm"] for s in mixer.states]
        assert i1db[-1] > i1db[0]

    def test_gain_compression_tradeoff_consistent(self, mixer):
        """Output-clipping model: gain + I1dB moves less than gain alone."""
        g = [mixer.nominal(s)["gain_db"] for s in mixer.states]
        p = [mixer.nominal(s)["i1db_dbm"] for s in mixer.states]
        gain_span = abs(g[-1] - g[0])
        sum_span = abs((g[-1] + p[-1]) - (g[0] + p[0]))
        assert sum_span < gain_span


class TestProcessResponse:
    def test_deterministic(self, mixer):
        x = np.random.default_rng(0).standard_normal(mixer.n_variables)
        assert mixer.evaluate_x(x, mixer.states[1]) == mixer.evaluate_x(
            x, mixer.states[1]
        )

    def test_variation_moves_metrics(self, mixer):
        x = np.random.default_rng(1).standard_normal(mixer.n_variables)
        nominal = mixer.nominal(mixer.states[0])
        shifted = mixer.evaluate_x(x, mixer.states[0])
        assert shifted["nf_db"] != pytest.approx(nominal["nf_db"], abs=1e-9)

    def test_quad_mismatch_degrades_gain(self, mixer):
        names = mixer.process_model.variable_names
        index = names.index("MSW1.vth")
        x = np.zeros(mixer.n_variables)
        x[index] = 4.0
        degraded = mixer.evaluate_x(x, mixer.states[0])["gain_db"]
        nominal = mixer.nominal(mixer.states[0])["gain_db"]
        assert degraded < nominal

    def test_load_mismatch_moves_gain(self, mixer):
        names = mixer.process_model.variable_names
        index = names.index("RLL_rbase.rsheet")
        x = np.zeros(mixer.n_variables)
        x[index] = 2.0
        shifted = mixer.evaluate_x(x, mixer.states[0])["gain_db"]
        assert shifted != pytest.approx(
            mixer.nominal(mixer.states[0])["gain_db"], abs=1e-9
        )

    def test_padding_has_no_effect(self):
        mixer = TunableMixer(n_states=2, n_variables=600)
        names = mixer.process_model.variable_names
        pad_index = next(
            i for i, n in enumerate(names) if n.startswith("MIXPER")
        )
        x = np.zeros(600)
        base = mixer.evaluate_x(x, mixer.states[0])
        x[pad_index] = 3.0
        assert mixer.evaluate_x(x, mixer.states[0]) == base

    def test_response_roughly_linear_for_small_x(self, mixer):
        rng = np.random.default_rng(4)
        x = 0.5 * rng.standard_normal(mixer.n_variables)
        state = mixer.states[2]
        base = mixer.nominal(state)["gain_db"]
        full = mixer.evaluate_x(x, state)["gain_db"] - base
        half = mixer.evaluate_x(0.5 * x, state)["gain_db"] - base
        assert half == pytest.approx(0.5 * full, rel=0.25)
