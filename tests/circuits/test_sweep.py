"""The swept-frequency LNA workload (``lna_sweep``)."""

import numpy as np
import pytest

from repro.circuits.sweep import DEFAULT_SWEEP_POINTS, SweptLNA
from repro.simulate.montecarlo import MonteCarloEngine


@pytest.fixture(scope="module")
def small_sweep():
    return SweptLNA(n_points=7)


class TestSweptLNAStructure:
    def test_states_are_the_frequency_grid(self, small_sweep):
        assert small_sweep.name == "lna_sweep"
        assert small_sweep.n_states == 7
        assert small_sweep.metric_names == ("s21_db", "nf_db")
        freqs = small_sweep.frequencies_hz
        assert freqs.shape == (7,)
        assert np.all(np.diff(freqs) > 0)
        assert freqs[0] == pytest.approx(1.8e9)
        assert freqs[-1] == pytest.approx(3.0e9)
        for state, frequency in zip(small_sweep.states, freqs):
            assert state.values["frequency_hz"] == pytest.approx(frequency)

    def test_default_is_the_vna_classic(self):
        assert DEFAULT_SWEEP_POINTS == 201
        assert SweptLNA().n_states == 201

    def test_sweep_circuits_share_samples(self, small_sweep):
        assert small_sweep.shared_samples is True

    def test_variation_space_is_the_physical_lna(self, small_sweep):
        # No peripheral padding: the sweep varies real devices only.
        assert small_sweep.n_variables == small_sweep.process_model.n_variables

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_points"):
            SweptLNA(n_points=1)
        with pytest.raises(ValueError, match="f_start_hz"):
            SweptLNA(f_start_hz=3.0e9, f_stop_hz=1.8e9)
        with pytest.raises(ValueError, match="bias_code"):
            SweptLNA(bias_code=99, n_bias_states=8)

    def test_bias_state_defaults_to_mid_code(self):
        sweep = SweptLNA(n_points=3, n_bias_states=8)
        assert sweep.bias_state.index == 4
        pinned = SweptLNA(n_points=3, bias_code=0)
        assert pinned.bias_state.index == 0


class TestSweptLNAEvaluation:
    def test_nominal_metrics_are_physical(self, small_sweep):
        sample = small_sweep.process_model.realize(
            np.zeros(small_sweep.n_variables)
        )
        curves = {
            metric: np.array([
                small_sweep.evaluate(sample, state)[metric]
                for state in small_sweep.states
            ])
            for metric in small_sweep.metric_names
        }
        assert np.all(np.isfinite(curves["s21_db"]))
        assert np.all(np.isfinite(curves["nf_db"]))
        # An amplifier around its band: positive gain with real frequency
        # shape (the tank resonance), and a noise figure above 0 dB.
        assert curves["s21_db"].max() > 5.0
        assert np.ptp(curves["s21_db"]) > 1.0
        assert np.all(curves["nf_db"] > 0.0)
        assert np.all(curves["nf_db"] < 20.0)

    def test_bias_code_changes_the_curves(self):
        low = SweptLNA(n_points=3, bias_code=1)
        high = SweptLNA(n_points=3, bias_code=7)
        sample = low.process_model.realize(np.zeros(low.n_variables))
        gain_low = low.evaluate(sample, low.states[1])["s21_db"]
        gain_high = high.evaluate(sample, high.states[1])["s21_db"]
        assert gain_low != pytest.approx(gain_high, abs=1e-9)


class TestSweptLNADatasets:
    def test_engine_produces_state_balanced_datasets(self):
        sweep = SweptLNA(n_points=5)
        dataset = MonteCarloEngine(sweep, seed=11).run(4)
        assert dataset.n_states == 5
        inputs = dataset.inputs()
        for x in inputs[1:]:
            np.testing.assert_array_equal(x, inputs[0])
        for metric in sweep.metric_names:
            for y in dataset.targets(metric):
                assert y.shape == (4,)
                assert np.all(np.isfinite(y))

    def test_shared_samples_can_be_overridden(self):
        sweep = SweptLNA(n_points=3)
        dataset = MonteCarloEngine(sweep, seed=11).run(
            3, shared_samples=False
        )
        inputs = dataset.inputs()
        assert not np.array_equal(inputs[0], inputs[1])
