"""Tests for tuning-knob enumeration."""

import pytest

from repro.circuits.knobs import KnobConfiguration, TuningKnob, enumerate_states


class TestTuningKnob:
    def test_value_lookup(self):
        knob = TuningKnob("bias", (1.0, 2.0, 3.0))
        assert knob.value(1) == 2.0
        assert knob.n_codes == 3

    def test_out_of_range(self):
        knob = TuningKnob("bias", (1.0, 2.0))
        with pytest.raises(IndexError):
            knob.value(2)
        with pytest.raises(IndexError):
            knob.value(-1)

    def test_needs_two_settings(self):
        with pytest.raises(ValueError, match="at least 2"):
            TuningKnob("bias", (1.0,))

    def test_needs_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            TuningKnob("", (1.0, 2.0))


class TestEnumerateStates:
    def test_single_knob_order(self):
        knob = TuningKnob("a", (10.0, 20.0, 30.0))
        states = enumerate_states([knob])
        assert [s.index for s in states] == [0, 1, 2]
        assert [s.values["a"] for s in states] == [10.0, 20.0, 30.0]

    def test_two_knob_cross_product(self):
        a = TuningKnob("a", (0.0, 1.0))
        b = TuningKnob("b", (0.0, 1.0, 2.0))
        states = enumerate_states([a, b])
        assert len(states) == 6
        # First knob slowest: codes (0,0),(0,1),(0,2),(1,0)...
        assert states[0].codes == (0, 0)
        assert states[2].codes == (0, 2)
        assert states[3].codes == (1, 0)

    def test_adjacent_states_differ_by_one_step(self):
        a = TuningKnob("a", tuple(float(i) for i in range(4)))
        states = enumerate_states([a])
        for s1, s2 in zip(states, states[1:]):
            assert s2.codes[0] - s1.codes[0] == 1

    def test_duplicate_knob_names_rejected(self):
        a = TuningKnob("a", (0.0, 1.0))
        with pytest.raises(ValueError, match="unique"):
            enumerate_states([a, a])

    def test_empty_knob_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            enumerate_states([])

    def test_str(self):
        state = KnobConfiguration(0, (1,), {"bias": 2.0})
        assert "bias=2" in str(state)
