"""Tests for two-port S-parameter extraction."""

import math

import numpy as np
import pytest

from repro.circuits.sparams import SParameters, TwoPortTestbench

Z0 = 50.0


def thru(circuit, p1, p2):
    circuit.add_resistor("RTHRU", p1, p2, 1e-6)


def series_resistor(value):
    def build(circuit, p1, p2):
        circuit.add_resistor("RSER", p1, p2, value)

    return build


def shunt_resistor(value):
    def build(circuit, p1, p2):
        circuit.add_resistor("RTHRU", p1, p2, 1e-6)
        circuit.add_resistor("RSH", p1, "0", value)

    return build


class TestKnownNetworks:
    def test_thru(self):
        s = TwoPortTestbench(thru).at(1e9)
        assert abs(s.s11) < 1e-4
        assert s.s21 == pytest.approx(1.0, abs=1e-4)
        assert s.is_reciprocal

    def test_series_resistor_formulas(self):
        r = 100.0
        s = TwoPortTestbench(series_resistor(r)).at(1e6)
        assert s.s11.real == pytest.approx(r / (r + 2 * Z0), rel=1e-9)
        assert s.s21.real == pytest.approx(2 * Z0 / (r + 2 * Z0), rel=1e-9)
        assert s.s22 == pytest.approx(s.s11)

    def test_shunt_resistor_formulas(self):
        r = 100.0
        y = 1.0 / r
        s = TwoPortTestbench(shunt_resistor(r)).at(1e6)
        expected_s11 = -y * Z0 / (2.0 + y * Z0)
        expected_s21 = 2.0 / (2.0 + y * Z0)
        assert s.s11.real == pytest.approx(expected_s11, abs=1e-6)
        assert s.s21.real == pytest.approx(expected_s21, abs=1e-6)

    def test_matched_pi_attenuator(self):
        """A 6 dB matched pi pad: S11 ≈ 0, |S21| ≈ −6 dB."""
        # Standard 6 dB pad values for 50 Ω: R_shunt=150.48, R_series=37.35.
        def build(circuit, p1, p2):
            circuit.add_resistor("RP1", p1, "0", 150.48)
            circuit.add_resistor("RS", p1, p2, 37.35)
            circuit.add_resistor("RP2", p2, "0", 150.48)

        s = TwoPortTestbench(build).at(1e6)
        assert abs(s.s11) < 0.01
        assert s.magnitude_db("s21") == pytest.approx(-6.0, abs=0.05)

    def test_rc_lowpass_rolls_off(self):
        def build(circuit, p1, p2):
            circuit.add_resistor("R", p1, p2, 100.0)
            circuit.add_capacitor("C", p2, "0", 10e-12)

        bench = TwoPortTestbench(build)
        low = bench.at(1e6).magnitude_db("s21")
        high = bench.at(5e9).magnitude_db("s21")
        assert high < low - 10.0

    def test_reciprocity_and_passivity_rlc(self):
        def build(circuit, p1, p2):
            circuit.add_inductor("L", p1, p2, 3e-9)
            circuit.add_capacitor("C", p2, "0", 1e-12)
            circuit.add_resistor("R", p2, "0", 200.0)

        for f in (0.5e9, 1e9, 3e9):
            s = TwoPortTestbench(build).at(f)
            assert s.is_reciprocal
            assert s.is_passive

    def test_active_network_not_passive(self):
        """A transconductor two-port amplifies: |S21| > 1."""
        def build(circuit, p1, p2):
            circuit.add_vccs("GM", p2, "0", p1, "0", 0.1)
            circuit.add_resistor("RIN", p1, "0", 1e4)

        s = TwoPortTestbench(build).at(1e6)
        assert abs(s.s21) > 1.0
        assert not s.is_passive
        assert not s.is_reciprocal

    def test_sweep(self):
        bench = TwoPortTestbench(thru)
        points = bench.sweep(np.array([1e6, 1e9]))
        assert len(points) == 2
        assert points[0].frequency_hz == 1e6

    def test_rejects_bad_z0_and_empty_sweep(self):
        with pytest.raises(ValueError):
            TwoPortTestbench(thru, z0=0.0)
        with pytest.raises(ValueError):
            TwoPortTestbench(thru).sweep([])
