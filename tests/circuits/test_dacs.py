"""Tests for the tuning DACs (current mirror and resistor bank)."""

import numpy as np
import pytest

from repro.circuits.dacs import (
    CurrentMirrorDac,
    FixedCurrentMirror,
    SwitchedResistorBank,
)
from repro.variation.parameters import VariationKind
from repro.variation.process import ProcessModel


class TestCurrentMirrorDac:
    def test_nominal_monotone_in_code(self):
        dac = CurrentMirrorDac("B", n_cells=8)
        currents = dac.nominal_currents()
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_code_range_enforced(self):
        dac = CurrentMirrorDac("B", n_cells=4)
        with pytest.raises(IndexError):
            dac.current(4)
        with pytest.raises(IndexError):
            dac.current(-1)

    def test_current_scale_milliamp(self):
        dac = CurrentMirrorDac("B", n_cells=32)
        assert 1e-3 < dac.current(0) < 5e-3
        assert dac.current(31) > 2 * dac.current(0)

    def test_global_vth_cancels_in_mirror(self):
        """Mirror currents track the reference: die-level ΔVTH cancels."""
        dac = CurrentMirrorDac("B", n_cells=4)
        model = ProcessModel(dac.device_variations())
        x = np.zeros(model.n_variables)
        x[model.global_variable_index(VariationKind.VTH)] = 3.0
        shifted = dac.current(3, model.realize(x))
        nominal = dac.current(3)
        assert shifted == pytest.approx(nominal, rel=1e-9)

    def test_cell_mismatch_moves_only_enabled_codes(self):
        dac = CurrentMirrorDac("B", n_cells=4)
        model = ProcessModel(dac.device_variations())
        x = np.zeros(model.n_variables)
        # Perturb cell 2's threshold: codes 0 and 1 (cells 0..1 enabled at
        # code 1) are unaffected; code 2 and above shift.
        x[model.local_variable_index("B_m2", VariationKind.VTH)] = 3.0
        sample = model.realize(x)
        assert dac.current(1, sample) == pytest.approx(
            dac.current(1), rel=1e-12
        )
        assert dac.current(2, sample) != pytest.approx(
            dac.current(2), rel=1e-6
        )

    def test_switch_resistance_reduces_cell_current(self):
        lossless = CurrentMirrorDac("A", n_cells=4, switch_r_on=1e-6)
        lossy = CurrentMirrorDac("B", n_cells=4, switch_r_on=200.0)
        delta_lossless = lossless.current(3) - lossless.current(0)
        delta_lossy = lossy.current(3) - lossy.current(0)
        assert delta_lossy < delta_lossless

    def test_transistor_inventory(self):
        dac = CurrentMirrorDac("B", n_cells=5)
        # ref + base + 4 groups of 5
        assert len(dac.transistors()) == 2 + 4 * 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CurrentMirrorDac("B", n_cells=1)
        with pytest.raises(ValueError):
            CurrentMirrorDac("B", reference_current=0.0)


class TestFixedCurrentMirror:
    def test_nominal_ratio(self):
        mirror = FixedCurrentMirror("T", 250e-6, ratio=8.0)
        assert mirror.current() == pytest.approx(8 * 250e-6, rel=0.05)

    def test_mismatch_moves_current(self):
        mirror = FixedCurrentMirror("T", 250e-6, ratio=4.0)
        model = ProcessModel(mirror.device_variations())
        x = np.zeros(model.n_variables)
        x[model.local_variable_index("T_out", VariationKind.VTH)] = 2.0
        assert mirror.current(model.realize(x)) != pytest.approx(
            mirror.current(), rel=1e-6
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FixedCurrentMirror("T", 0.0)
        with pytest.raises(ValueError):
            FixedCurrentMirror("T", 1e-3, ratio=-1.0)


class TestSwitchedResistorBank:
    def test_monotone_decreasing_with_code(self):
        bank = SwitchedResistorBank("L", 5, base_ohms=1000.0, leg_ohms=5000.0)
        values = [bank.resistance(code) for code in range(6)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_code_zero_is_base(self):
        bank = SwitchedResistorBank("L", 3, base_ohms=900.0, leg_ohms=5e3)
        assert bank.resistance(0) == pytest.approx(900.0)

    def test_full_code_parallel_formula(self):
        bank = SwitchedResistorBank(
            "L", 2, base_ohms=1000.0, leg_ohms=1000.0, switch_r_on=0.0
        )
        # This constructor forbids r_on=0? Use tiny instead.
        bank.switch_r_on = 1e-9
        expected = 1.0 / (1 / 1000.0 + 2 / 1000.0)
        assert bank.resistance(2) == pytest.approx(expected, rel=1e-6)

    def test_mismatch_moves_resistance(self):
        bank = SwitchedResistorBank("L", 3, base_ohms=900.0, leg_ohms=5e3)
        model = ProcessModel(bank.device_variations())
        x = np.zeros(model.n_variables)
        x[model.local_variable_index("L_rbase", VariationKind.RSHEET)] = 1.0
        assert bank.resistance(0, model.realize(x)) > bank.resistance(0)

    def test_code_range(self):
        bank = SwitchedResistorBank("L", 3, base_ohms=900.0, leg_ohms=5e3)
        with pytest.raises(IndexError):
            bank.resistance(4)

    def test_rejects_zero_legs(self):
        with pytest.raises(ValueError):
            SwitchedResistorBank("L", 0, base_ohms=900.0, leg_ohms=5e3)
