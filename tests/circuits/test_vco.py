"""Tests for the tunable VCO example circuit."""

import numpy as np
import pytest

from repro.circuits.vco import TunableVCO


@pytest.fixture(scope="module")
def vco():
    return TunableVCO(n_states=8)


class TestConstruction:
    def test_states_and_metrics(self, vco):
        assert vco.n_states == 8
        assert vco.metric_names == ("freq_ghz", "pnoise_dbc", "power_mw")
        assert vco.name == "vco"

    def test_padding_to_exact_count(self):
        vco = TunableVCO(n_states=4, n_variables=300)
        assert vco.n_variables == 300

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TunableVCO(n_states=1)
        with pytest.raises(ValueError):
            TunableVCO(offset_hz=0.0)


class TestNominal:
    def test_frequency_in_band(self, vco):
        for state in vco.states:
            values = vco.nominal(state)
            assert 2.0 < values["freq_ghz"] < 8.0

    def test_frequency_monotone_decreasing_with_code(self, vco):
        """More bank capacitance → lower frequency."""
        freqs = [vco.nominal(s)["freq_ghz"] for s in vco.states]
        assert all(b < a for a, b in zip(freqs, freqs[1:]))

    def test_phase_noise_plausible(self, vco):
        for state in vco.states:
            pn = vco.nominal(state)["pnoise_dbc"]
            assert -140.0 < pn < -80.0  # dBc/Hz at 1 MHz

    def test_power_plausible(self, vco):
        power = vco.nominal(vco.states[0])["power_mw"]
        assert 0.5 < power < 20.0

    def test_tank_capacitance_grows_with_code(self, vco):
        c0 = vco.tank_capacitance(vco.states[0], None)
        c7 = vco.tank_capacitance(vco.states[7], None)
        assert c7 > c0


class TestProcessResponse:
    def test_variation_moves_frequency(self, vco):
        x = np.random.default_rng(0).standard_normal(vco.n_variables)
        shifted = vco.evaluate_x(x, vco.states[2])
        nominal = vco.nominal(vco.states[2])
        assert shifted["freq_ghz"] != pytest.approx(
            nominal["freq_ghz"], abs=1e-9
        )

    def test_bank_cap_mismatch_state_selective(self, vco):
        """Cap 5's mismatch moves codes > 5 but not code 0."""
        names = vco.process_model.variable_names
        index = names.index("CB5.cdens")
        x = np.zeros(vco.n_variables)
        x[index] = 3.0
        sample_metrics0 = vco.evaluate_x(x, vco.states[0])
        assert sample_metrics0 == vco.nominal(vco.states[0])
        sample_metrics7 = vco.evaluate_x(x, vco.states[7])
        assert sample_metrics7["freq_ghz"] != pytest.approx(
            vco.nominal(vco.states[7])["freq_ghz"], abs=1e-12
        )

    def test_tail_mismatch_moves_power_and_noise(self, vco):
        names = vco.process_model.variable_names
        index = names.index("VTAIL_out.vth")
        x = np.zeros(vco.n_variables)
        x[index] = 2.0
        shifted = vco.evaluate_x(x, vco.states[0])
        nominal = vco.nominal(vco.states[0])
        assert shifted["power_mw"] != pytest.approx(
            nominal["power_mw"], abs=1e-12
        )
        assert shifted["pnoise_dbc"] != pytest.approx(
            nominal["pnoise_dbc"], abs=1e-12
        )

    def test_modellable_end_to_end(self, vco):
        """C-BMF fits VCO frequency to sub-percent error."""
        from repro.basis.polynomial import LinearBasis
        from repro.core.cbmf import CBMF
        from repro.evaluation.error import modeling_error_percent
        from repro.simulate.montecarlo import MonteCarloEngine

        data = MonteCarloEngine(vco, seed=5).run(30)
        train, test = data.split(15)
        basis = LinearBasis(vco.n_variables)
        model = CBMF(seed=0).fit(
            basis.expand_states(train.inputs()), train.targets("freq_ghz")
        )
        predictions = [
            model.predict(basis.expand(test.states[k].x), k)
            for k in range(vco.n_states)
        ]
        error = modeling_error_percent(
            predictions, test.targets("freq_ghz")
        )
        assert error < 1.0
