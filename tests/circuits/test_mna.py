"""Tests for the MNA AC solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.mna import Circuit


def divider() -> Circuit:
    c = Circuit()
    c.add_voltage_source("V", "a", "0", 1.0)
    c.add_resistor("R1", "a", "b", 100.0)
    c.add_resistor("R2", "b", "0", 300.0)
    return c


class TestConstruction:
    def test_duplicate_element_names_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            c.add_capacitor("R1", "a", "0", 1e-12)

    def test_nonpositive_values_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("R", "a", "0", 0.0)
        with pytest.raises(ValueError):
            c.add_capacitor("C", "a", "0", -1e-12)
        with pytest.raises(ValueError):
            c.add_inductor("L", "a", "0", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Circuit().add_resistor("", "a", "0", 1.0)

    def test_node_names(self):
        c = divider()
        assert set(c.node_names) == {"a", "b"}
        assert c.n_nodes == 2

    def test_empty_circuit_unsolvable(self):
        with pytest.raises(ValueError, match="no non-ground"):
            Circuit().solve(1.0)


class TestDcAndAc:
    def test_voltage_divider(self):
        sol = divider().solve(0.0)
        assert sol.voltage("b") == pytest.approx(0.75)

    def test_source_current(self):
        sol = divider().solve(0.0)
        # 1 V over 400 Ω total.
        assert abs(sol.source_currents["V"]) == pytest.approx(1.0 / 400.0)

    def test_rc_corner_frequency(self):
        c = Circuit()
        c.add_voltage_source("V", "in", "0", 1.0)
        c.add_resistor("R", "in", "out", 1_000.0)
        c.add_capacitor("C", "out", "0", 1e-9)
        f_corner = 1.0 / (2 * np.pi * 1_000.0 * 1e-9)
        sol = c.solve(f_corner)
        assert abs(sol.voltage("out")) == pytest.approx(
            1 / np.sqrt(2), rel=1e-9
        )
        assert sol.phase_deg("out") == pytest.approx(-45.0, abs=1e-6)

    def test_lc_resonance(self):
        """Parallel RLC driven by a current source peaks at resonance."""
        c = Circuit()
        c.add_current_source("I", "0", "t", 1.0)
        c.add_resistor("R", "t", "0", 500.0)
        c.add_inductor("L", "t", "0", 10e-9)
        c.add_capacitor("C", "t", "0", 1e-12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(10e-9 * 1e-12))
        at_f0 = abs(c.solve(f0).voltage("t"))
        below = abs(c.solve(0.5 * f0).voltage("t"))
        above = abs(c.solve(2.0 * f0).voltage("t"))
        assert at_f0 == pytest.approx(500.0, rel=1e-6)  # tank = R at ω0
        assert at_f0 > below and at_f0 > above

    def test_vccs_amplifier(self):
        """Common-source stage: gain = −gm·RL."""
        c = Circuit()
        c.add_voltage_source("V", "g", "0", 1.0)
        c.add_vccs("GM", "d", "0", "g", "0", 0.01)
        c.add_resistor("RL", "d", "0", 1_000.0)
        sol = c.solve(0.0)
        assert sol.voltage("d").real == pytest.approx(-10.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            divider().solve(-1.0)

    def test_floating_node_is_singular(self):
        c = Circuit()
        c.add_current_source("I", "0", "a", 1.0)
        c.add_capacitor("C", "b", "c", 1e-12)  # floating island
        with pytest.raises(ValueError, match="singular"):
            c.solve(1e9)

    def test_magnitude_db(self):
        sol = divider().solve(0.0)
        assert sol.magnitude_db("b") == pytest.approx(
            20 * np.log10(0.75)
        )

    def test_unknown_node_raises(self):
        sol = divider().solve(0.0)
        with pytest.raises(KeyError):
            sol.voltage("zz")

    def test_ground_voltage_is_zero(self):
        assert divider().solve(0.0).voltage("0") == 0.0


class TestFrequencyResponse:
    def test_rc_rolloff_20db_per_decade(self):
        c = Circuit()
        c.add_voltage_source("V", "in", "0", 1.0)
        c.add_resistor("R", "in", "out", 1_000.0)
        c.add_capacitor("C", "out", "0", 1e-9)
        f_corner = 1.0 / (2 * np.pi * 1_000.0 * 1e-9)
        freqs = np.array([10 * f_corner, 100 * f_corner])
        response = c.frequency_response(freqs, "out")
        ratio_db = 20 * np.log10(abs(response[0]) / abs(response[1]))
        assert ratio_db == pytest.approx(20.0, abs=0.1)

    def test_tank_peaks_at_resonance(self):
        c = Circuit()
        c.add_current_source("I", "0", "t", 1.0)
        c.add_resistor("R", "t", "0", 1_000.0)
        c.add_inductor("L", "t", "0", 5e-9)
        c.add_capacitor("C", "t", "0", 2e-12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(5e-9 * 2e-12))
        freqs = np.linspace(0.5 * f0, 1.5 * f0, 41)
        response = np.abs(c.frequency_response(freqs, "t"))
        peak_index = int(np.argmax(response))
        assert freqs[peak_index] == pytest.approx(f0, rel=0.03)

    def test_differential_response(self):
        sol = divider().solve(0.0)
        c = divider()
        response = c.frequency_response(np.array([0.0]), "a", "b")
        assert response[0] == pytest.approx(
            sol.voltage("a") - sol.voltage("b")
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            divider().frequency_response(np.array([]), "a")


class TestInjection:
    def test_injection_matches_current_source(self):
        """Unit injection == adding an explicit 1 A source."""
        base = Circuit()
        base.add_resistor("R1", "a", "0", 50.0)
        base.add_resistor("R2", "a", "b", 100.0)
        base.add_resistor("R3", "b", "0", 200.0)
        inj = base.solve_with_current_injection(0.0, "0", "b")

        explicit = Circuit()
        explicit.add_resistor("R1", "a", "0", 50.0)
        explicit.add_resistor("R2", "a", "b", 100.0)
        explicit.add_resistor("R3", "b", "0", 200.0)
        explicit.add_current_source("I", "0", "b", 1.0)
        direct = explicit.solve(0.0)
        assert inj.voltage("b") == pytest.approx(direct.voltage("b"))
        assert inj.voltage("a") == pytest.approx(direct.voltage("a"))

    def test_solve_injections_batch_matches_single(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 50.0)
        c.add_resistor("R2", "a", "b", 100.0)
        c.add_capacitor("C", "b", "0", 1e-12)
        pairs = [("0", "a"), ("a", "b"), ("0", "b")]
        batch = c.solve_injections(1e9, pairs)
        for pair, sol in zip(pairs, batch):
            single = c.solve_with_current_injection(1e9, *pair)
            assert np.allclose(sol.voltages, single.voltages)

    def test_unknown_injection_node(self):
        c = divider()
        with pytest.raises(KeyError):
            c.solve_with_current_injection(0.0, "zz", "0")

    def test_reciprocity(self):
        """A reciprocal (RLC-only) network: v_j from i_i equals v_i from i_j."""
        c = Circuit()
        c.add_resistor("R1", "a", "b", 70.0)
        c.add_resistor("R2", "b", "0", 110.0)
        c.add_capacitor("C1", "a", "0", 2e-12)
        c.add_inductor("L1", "b", "c", 3e-9)
        c.add_resistor("R3", "c", "0", 45.0)
        f = 1.1e9
        v_c_from_a = c.solve_with_current_injection(f, "0", "a").voltage("c")
        v_a_from_c = c.solve_with_current_injection(f, "0", "c").voltage("a")
        assert v_c_from_a == pytest.approx(v_a_from_c)


@settings(max_examples=20, deadline=None)
@given(
    r1=st.floats(10.0, 1e4),
    r2=st.floats(10.0, 1e4),
    volts=st.floats(0.1, 10.0),
)
def test_property_divider_formula(r1, r2, volts):
    c = Circuit()
    c.add_voltage_source("V", "a", "0", volts)
    c.add_resistor("R1", "a", "b", r1)
    c.add_resistor("R2", "b", "0", r2)
    sol = c.solve(0.0)
    assert sol.voltage("b").real == pytest.approx(
        volts * r2 / (r1 + r2), rel=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(scale=st.floats(0.1, 10.0))
def test_property_source_linearity(scale):
    """Scaling the source scales every node voltage (linear network)."""
    def build(amplitude):
        c = Circuit()
        c.add_voltage_source("V", "in", "0", amplitude)
        c.add_resistor("R", "in", "out", 1_000.0)
        c.add_capacitor("C", "out", "0", 1e-9)
        return c.solve(2e5).voltage("out")

    base = build(1.0)
    scaled = build(scale)
    assert scaled == pytest.approx(scale * base, rel=1e-9)
