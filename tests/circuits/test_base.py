"""Tests for the tunable-circuit scaffolding (base helpers, padding)."""

import numpy as np
import pytest

from repro.circuits.base import peripheral_padding
from repro.variation.parameters import GLOBAL_PARAMETER_SET
from repro.variation.process import ProcessModel


class TestPeripheralPadding:
    def test_exact_fill_with_cells_and_wires(self):
        declarations = peripheral_padding("PAD", 100, 60)
        total = sum(len(d.specs) for d in declarations)
        assert total == 40
        # 4 nine-parameter cells + 4 single-parameter wires.
        cells = [d for d in declarations if "cell" in d.device]
        wires = [d for d in declarations if "wire" in d.device]
        assert len(cells) == 4 and len(wires) == 4

    def test_zero_padding(self):
        assert peripheral_padding("PAD", 50, 50) == []

    def test_overshoot_rejected(self):
        with pytest.raises(ValueError, match="more than"):
            peripheral_padding("PAD", 10, 20)

    def test_unique_device_names(self):
        declarations = peripheral_padding("PAD", 200, 0)
        names = [d.device for d in declarations]
        assert len(names) == len(set(names))

    def test_usable_in_process_model(self):
        declarations = peripheral_padding("PAD", 64, 12)
        model = ProcessModel(declarations, GLOBAL_PARAMETER_SET)
        assert model.n_variables == 12 + 52


class TestCircuitHelpers:
    def test_evaluate_x_equals_evaluate(self, tiny_lna):
        x = np.random.default_rng(0).standard_normal(tiny_lna.n_variables)
        via_x = tiny_lna.evaluate_x(x, tiny_lna.states[0])
        via_sample = tiny_lna.evaluate(
            tiny_lna.process_model.realize(x), tiny_lna.states[0]
        )
        assert via_x == via_sample

    def test_nominal_is_zero_sample(self, tiny_lna):
        nominal = tiny_lna.nominal(tiny_lna.states[1])
        zero = tiny_lna.evaluate_x(
            np.zeros(tiny_lna.n_variables), tiny_lna.states[1]
        )
        assert nominal == zero

    def test_counts(self, tiny_lna):
        assert tiny_lna.n_states == len(tiny_lna.states)
        assert tiny_lna.n_variables == tiny_lna.process_model.n_variables


class TestMixerSubmodels:
    def test_lo_swing_responds_to_buffer_strength(self, tiny_mixer):
        from repro.variation.parameters import VariationKind

        names = tiny_mixer.process_model.variable_names
        x = np.zeros(tiny_mixer.n_variables)
        x[names.index("MLO1.beta")] = 3.0
        sample = tiny_mixer.process_model.realize(x)
        assert tiny_mixer.lo_swing(sample) != pytest.approx(
            tiny_mixer.lo_swing(None), abs=1e-9
        )

    def test_lo_swing_compressed_response(self, tiny_mixer):
        """The buffer clips: swing moves less than drive strength."""
        names = tiny_mixer.process_model.variable_names
        x = np.zeros(tiny_mixer.n_variables)
        for i in range(1, 5):
            x[names.index(f"MLO{i}.beta")] = 2.0
        sample = tiny_mixer.process_model.realize(x)
        gm_ratio = (
            tiny_mixer._lo_buffer_gm(sample) / tiny_mixer._lo_gm_nominal
        )
        swing_ratio = tiny_mixer.lo_swing(sample) / tiny_mixer.lo_swing(None)
        assert 1.0 < swing_ratio < gm_ratio

    def test_quad_imbalance_is_one_nominal(self, tiny_mixer):
        assert tiny_mixer._quad_imbalance(None) == 1.0

    def test_quad_imbalance_below_one_with_mismatch(self, tiny_mixer):
        names = tiny_mixer.process_model.variable_names
        x = np.zeros(tiny_mixer.n_variables)
        x[names.index("MSW1.vth")] = 4.0
        sample = tiny_mixer.process_model.realize(x)
        factor = tiny_mixer._quad_imbalance(sample)
        assert 0.1 <= factor < 1.0
