"""Tests for RF metric math."""

import math

import pytest

from repro.circuits import metrics


class TestDbConversions:
    def test_db_of_ten(self):
        assert metrics.db(10.0) == pytest.approx(20.0)

    def test_db10_of_ten(self):
        assert metrics.db10(10.0) == pytest.approx(10.0)

    def test_roundtrip_db(self):
        assert metrics.undb(metrics.db(3.7)) == pytest.approx(3.7)

    def test_roundtrip_db10(self):
        assert metrics.undb10(metrics.db10(0.42)) == pytest.approx(0.42)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            metrics.db(0.0)
        with pytest.raises(ValueError):
            metrics.db10(-1.0)


class TestPowerConversions:
    def test_zero_dbm_reference(self):
        """0 dBm into 50 Ω is ~223.6 mV RMS."""
        vrms = metrics.vrms_from_dbm(0.0)
        assert vrms == pytest.approx(math.sqrt(1e-3 * 50.0))

    def test_roundtrip(self):
        assert metrics.dbm_from_vrms(
            metrics.vrms_from_dbm(-7.3)
        ) == pytest.approx(-7.3)

    def test_custom_reference(self):
        v50 = metrics.vrms_from_dbm(0.0, 50.0)
        v100 = metrics.vrms_from_dbm(0.0, 100.0)
        assert v100 == pytest.approx(v50 * math.sqrt(2.0))

    def test_rejects_nonpositive_vrms(self):
        with pytest.raises(ValueError):
            metrics.dbm_from_vrms(0.0)


class TestInterceptPoints:
    def test_iip3_known_value(self):
        """g1=1, g3=1 → A_peak = sqrt(4/3)."""
        expected = metrics.dbm_from_vrms(math.sqrt(4.0 / 3.0 / 2.0))
        assert metrics.iip3_dbm_from_series(1.0, 1.0) == pytest.approx(
            expected
        )

    def test_iip3_improves_with_smaller_g3(self):
        assert metrics.iip3_dbm_from_series(
            1.0, 0.01
        ) > metrics.iip3_dbm_from_series(1.0, 1.0)

    def test_p1db_below_iip3(self):
        """Rule of thumb: P1dB ≈ IIP3 − 9.6 dB."""
        iip3 = metrics.iip3_dbm_from_series(1.0, 0.1)
        p1db = metrics.input_p1db_dbm_from_series(1.0, 0.1)
        assert iip3 - p1db == pytest.approx(9.636, abs=0.05)

    def test_rejects_zero_coefficients(self):
        with pytest.raises(ValueError):
            metrics.iip3_dbm_from_series(0.0, 1.0)
        with pytest.raises(ValueError):
            metrics.input_p1db_dbm_from_series(1.0, 0.0)


class TestNoiseFigure:
    def test_unity_factor(self):
        assert metrics.noise_figure_db(1.0) == 0.0

    def test_factor_two_is_3db(self):
        assert metrics.noise_figure_db(2.0) == pytest.approx(3.0103, abs=1e-3)

    def test_tiny_roundoff_clamped(self):
        assert metrics.noise_figure_db(1.0 - 1e-12) == 0.0

    def test_real_violation_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            metrics.noise_figure_db(0.5)
