"""Tests for the tunable LNA circuit model."""

import numpy as np
import pytest

from repro.circuits.lna import PAPER_N_VARIABLES, TunableLNA


@pytest.fixture(scope="module")
def lna():
    return TunableLNA(n_states=4, n_variables=None)


class TestConstruction:
    def test_paper_variable_count(self):
        assert TunableLNA().n_variables == PAPER_N_VARIABLES == 1264

    def test_paper_state_count(self):
        assert TunableLNA().n_states == 32

    def test_natural_count_without_padding(self, lna):
        assert lna.n_variables < PAPER_N_VARIABLES
        assert lna.n_variables > 100

    def test_metrics(self, lna):
        assert lna.metric_names == ("nf_db", "gain_db", "iip3_dbm")

    def test_rejects_single_state(self):
        with pytest.raises(ValueError):
            TunableLNA(n_states=1)

    def test_name(self, lna):
        assert lna.name == "lna"


class TestNominalBehaviour:
    def test_metrics_in_plausible_rf_ranges(self, lna):
        for state in lna.states:
            values = lna.nominal(state)
            assert 0.5 < values["nf_db"] < 6.0
            assert 10.0 < values["gain_db"] < 35.0
            assert -20.0 < values["iip3_dbm"] < 15.0

    def test_bias_current_monotone_in_state(self, lna):
        currents = [lna.bias_current(state) for state in lna.states]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_neighboring_states_are_similar(self, lna):
        """Adjacent knob codes produce closer metrics than distant ones."""
        g = [lna.nominal(s)["gain_db"] for s in lna.states]
        assert abs(g[1] - g[0]) < abs(g[-1] - g[0])

    def test_deterministic(self, lna):
        x = np.random.default_rng(0).standard_normal(lna.n_variables)
        a = lna.evaluate_x(x, lna.states[2])
        b = lna.evaluate_x(x, lna.states[2])
        assert a == b


class TestProcessResponse:
    def test_variation_moves_metrics(self, lna):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(lna.n_variables)
        nominal = lna.nominal(lna.states[1])
        shifted = lna.evaluate_x(x, lna.states[1])
        assert shifted["gain_db"] != pytest.approx(
            nominal["gain_db"], abs=1e-6
        )

    def test_response_roughly_linear_for_small_x(self, lna):
        """Half the perturbation ≈ half the metric shift (linear regime)."""
        rng = np.random.default_rng(2)
        x = 0.5 * rng.standard_normal(lna.n_variables)
        state = lna.states[1]
        base = lna.nominal(state)["gain_db"]
        full = lna.evaluate_x(x, state)["gain_db"] - base
        half = lna.evaluate_x(0.5 * x, state)["gain_db"] - base
        assert half == pytest.approx(0.5 * full, rel=0.25)

    def test_padding_variables_have_no_effect(self):
        """Peripheral variables exist but do not move the metrics."""
        lna = TunableLNA(n_states=2, n_variables=400)
        x = np.zeros(400)
        base = lna.evaluate_x(x, lna.states[0])
        names = lna.process_model.variable_names
        pad_index = next(
            i for i, n in enumerate(names) if n.startswith("LNAPER")
        )
        x[pad_index] = 3.0
        shifted = lna.evaluate_x(x, lna.states[0])
        assert shifted == base

    def test_core_vth_variable_has_effect(self, lna):
        names = lna.process_model.variable_names
        index = names.index("M1.vth")
        x = np.zeros(lna.n_variables)
        x[index] = 3.0
        base = lna.nominal(lna.states[0])
        shifted = lna.evaluate_x(x, lna.states[0])
        assert shifted["gain_db"] != pytest.approx(
            base["gain_db"], abs=1e-9
        )

    def test_variation_scale_subpercent_errors_feasible(self, lna):
        """Metric spread across MC should be small relative to the mean
        (the paper's sub-percent modeling errors presuppose this)."""
        rng = np.random.default_rng(3)
        values = [
            lna.evaluate_x(
                rng.standard_normal(lna.n_variables), lna.states[0]
            )["nf_db"]
            for _ in range(40)
        ]
        spread = np.std(values) / abs(np.mean(values))
        assert spread < 0.2
