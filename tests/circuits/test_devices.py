"""Tests for the analytic MOSFET and passive models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.devices import Mosfet, MosfetParameters, Passive
from repro.variation.parameters import VariationKind
from repro.variation.process import ProcessModel


def model_for(*components) -> ProcessModel:
    return ProcessModel([c.variation() for c in components])


class TestMosfetBias:
    def test_current_vov_roundtrip(self):
        fet = Mosfet("M1")
        vov = fet.solve_vov_for_current(1e-3)
        assert fet.current_for_vov(vov) == pytest.approx(1e-3, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(current=st.floats(1e-5, 3e-2))
    def test_property_roundtrip_over_decades(self, current):
        fet = Mosfet("M1")
        vov = fet.solve_vov_for_current(current)
        assert vov > 0
        assert fet.current_for_vov(vov) == pytest.approx(current, rel=1e-9)

    def test_more_current_needs_more_overdrive(self):
        fet = Mosfet("M1")
        assert fet.solve_vov_for_current(4e-3) > fet.solve_vov_for_current(
            1e-3
        )

    def test_rejects_nonpositive_current(self):
        with pytest.raises(ValueError):
            Mosfet("M1").solve_vov_for_current(0.0)

    def test_rejects_nonpositive_vov(self):
        with pytest.raises(ValueError):
            Mosfet("M1").current_for_vov(-0.1)


class TestMosfetSmallSignal:
    def test_gm_is_numerical_derivative(self):
        fet = Mosfet("M1")
        ss = fet.small_signal(2e-3)
        eps = 1e-6
        i_plus = fet.current_for_vov(ss.vov + eps)
        i_minus = fet.current_for_vov(ss.vov - eps)
        assert ss.gm == pytest.approx((i_plus - i_minus) / (2 * eps), rel=1e-5)

    def test_gm2_gm3_are_derivatives(self):
        fet = Mosfet("M1")
        ss = fet.small_signal(2e-3)
        eps = 1e-4
        v = ss.vov
        i = fet.current_for_vov
        d2 = (i(v + eps) - 2 * i(v) + i(v - eps)) / eps**2
        d3 = (
            i(v + 2 * eps) - 2 * i(v + eps) + 2 * i(v - eps) - i(v - 2 * eps)
        ) / (2 * eps**3)
        assert ss.gm2 == pytest.approx(d2 / 2.0, rel=1e-3)
        assert ss.gm3 == pytest.approx(d3 / 6.0, rel=1e-2)

    def test_gm_increases_with_current(self):
        fet = Mosfet("M1")
        assert fet.small_signal(4e-3).gm > fet.small_signal(1e-3).gm

    def test_capacitances_positive_femto_scale(self):
        ss = Mosfet("M1").small_signal(2e-3)
        assert 1e-15 < ss.cgs < 1e-12
        assert 1e-16 < ss.cgd < 1e-12

    def test_ft_in_rf_range(self):
        ss = Mosfet("M1").small_signal(3e-3)
        assert 1e10 < ss.ft_hz < 1e12  # tens to hundreds of GHz

    def test_noise_psd_positive_and_4ktgamma(self):
        ss = Mosfet("M1").small_signal(2e-3)
        expected = 4 * 1.380649e-23 * 300.0 * 1.2 * ss.gm
        assert ss.drain_noise_psd == pytest.approx(expected)

    def test_gm3_negative_with_velocity_saturation(self):
        """Short-channel compression: g3 < 0."""
        ss = Mosfet("M1").small_signal(2e-3)
        assert ss.gm3 < 0


class TestMosfetVariation:
    def test_vth_shift_moves_vov(self):
        fet = Mosfet("M1")
        model = model_for(fet)
        x = np.zeros(model.n_variables)
        i = model.local_variable_index("M1", VariationKind.VTH)
        x[i] = 3.0
        # At fixed current the overdrive solution is set by beta, not vth.
        # Instead check the current at fixed Vgs: more vth → less current.
        sample = model.realize(x)
        nominal = fet.current_for_vov(0.2)
        # Sample only moves vth, and current_for_vov takes vov directly, so
        # beta-dependent current is unchanged:
        assert fet.current_for_vov(0.2, sample) == pytest.approx(
            nominal, rel=0.05
        )

    def test_beta_shift_scales_current(self):
        fet = Mosfet("M1")
        model = model_for(fet)
        x = np.zeros(model.n_variables)
        i = model.local_variable_index("M1", VariationKind.BETA)
        x[i] = 1.0
        sample = model.realize(x)
        sigma = model.local_sigma("M1", VariationKind.BETA)
        assert fet.current_for_vov(0.2, sample) == pytest.approx(
            fet.current_for_vov(0.2) * (1.0 + sigma), rel=1e-6
        )

    def test_small_signal_responds_smoothly(self):
        fet = Mosfet("M1")
        model = model_for(fet)
        rng = np.random.default_rng(0)
        x = 0.5 * rng.standard_normal(model.n_variables)
        gm_shift = (
            fet.small_signal(2e-3, model.realize(x)).gm
            - fet.small_signal(2e-3).gm
        )
        assert abs(gm_shift) / fet.small_signal(2e-3).gm < 0.3


class TestMosfetParameters:
    def test_beta_formula(self):
        params = MosfetParameters(width_um=20.0, length_um=0.04, kprime=4e-4)
        assert params.beta == pytest.approx(4e-4 * 500.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MosfetParameters(width_um=0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Mosfet("")


class TestPassive:
    def test_nominal_value(self):
        assert Passive("R1", "resistor", 100.0).value() == 100.0

    def test_variation_scales_value(self):
        r = Passive("R1", "resistor", 100.0, mismatch_sigma=0.1)
        model = model_for(r)
        x = np.zeros(model.n_variables)
        x[model.local_variable_index("R1", VariationKind.RSHEET)] = 1.0
        value = r.value(model.realize(x))
        # Local (0.1) plus the global rsheet shift of 0 → exactly +10%.
        assert value == pytest.approx(110.0)

    def test_thermal_noise(self):
        r = Passive("R1", "resistor", 1000.0)
        assert r.thermal_noise_psd() == pytest.approx(
            4 * 1.380649e-23 * 300.0 / 1000.0
        )

    def test_capacitor_has_no_thermal_noise(self):
        with pytest.raises(ValueError, match="resistor"):
            Passive("C1", "capacitor", 1e-12).thermal_noise_psd()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Passive("X1", "memristor", 1.0)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError, match="nominal"):
            Passive("R1", "resistor", 0.0)
