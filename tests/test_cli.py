"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.seed == 2016
        assert args.scale is None

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])

    def test_fig_metric_flag(self):
        args = build_parser().parse_args(["fig2", "--metric", "nf_db"])
        assert args.metric == "nf_db"

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_all_command_parses(self):
        args = build_parser().parse_args(["all", "--scale", "medium"])
        assert args.command == "all"
        assert args.scale == "medium"

    def test_table2_and_fig3_parse(self):
        assert build_parser().parse_args(["table2"]).command == "table2"
        args = build_parser().parse_args(
            ["fig3", "--metric", "i1db_dbm", "--seed", "7"]
        )
        assert args.command == "fig3"
        assert args.metric == "i1db_dbm"
        assert args.seed == 7

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.command == "serve-bench"
        assert args.requests == 10_000
        assert args.method == "cbmf"
        assert args.batch_size == 64

    def test_sweep_fit_defaults(self):
        args = build_parser().parse_args(["sweep-fit"])
        assert args.command == "sweep-fit"
        assert args.points == 201
        assert args.train == 10
        assert args.metric is None
        assert args.name == "lna_sweep"

    def test_sweep_fit_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep-fit", "--metric", "zzz"])

    def test_bench_suite_flag(self):
        args = build_parser().parse_args(["bench", "--suite", "kron"])
        assert args.suite == "kron"
        assert build_parser().parse_args(["bench"]).suite == "all"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--suite", "turbo"])

    def test_registry_subcommands_parse(self):
        args = build_parser().parse_args(
            ["registry", "list", "--root", "/tmp/r"]
        )
        assert (args.command, args.registry_command) == ("registry", "list")
        args = build_parser().parse_args(
            ["registry", "push", "lna", "some/dir", "--root", "/tmp/r"]
        )
        assert args.name == "lna" and args.path == "some/dir"
        args = build_parser().parse_args(
            ["registry", "get", "lna@v2", "--root", "/tmp/r",
             "--dest", "out"]
        )
        assert args.key == "lna@v2" and args.dest == "out"

    def test_registry_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.circuit is None
        assert args.batches == 12
        assert args.push_every == 1
        assert args.drift_shift is None
        assert args.refit_window is None

    def test_stream_flags(self):
        args = build_parser().parse_args([
            "stream", "--drift-shift", "4.0", "--drift-at", "5",
            "--refit-window", "4", "--fault-plan", "stream:nan@2",
            "--record", "s.npz", "--name", "lna-live",
        ])
        assert args.drift_shift == 4.0
        assert args.drift_at == 5
        assert args.refit_window == 4
        assert args.fault_plan == "stream:nan@2"
        assert args.record == "s.npz"
        assert args.name == "lna-live"


class TestInfo:
    def test_info_output(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "C-BMF" in out
        assert "small" in out and "paper" in out
        assert "cbmf" in out


class TestTableCommand:
    def test_table1_small(self, capsys, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        assert main(["table1", "--scale", "small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Modeling error for NF" in out
        assert "cost reduction" in out

    def test_fig2_single_metric(self, capsys, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        assert main(
            ["fig2", "--scale", "small", "--seed", "5", "--metric", "nf_db"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "NF" in out

    def test_fig2_unknown_metric(self, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["fig2", "--scale", "small", "--metric", "zzz"])


class TestServeBench:
    def test_small_run(self, capsys):
        # Tiny but complete: fit -> push -> serve -> verify bit-identity.
        assert main([
            "serve-bench", "--requests", "400", "--pool", "80",
            "--states", "3", "--train", "10", "--method", "somp",
            "--trials", "1", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "pushed lna@v1" in out
        assert "bit-identical       True" in out
        assert "cache hit rate" in out
        assert "speedup" in out


class TestSweepFit:
    def test_small_end_to_end(self, capsys, tmp_path, monkeypatch):
        """Tiny sweep through the full path: simulate -> Kronecker-mode
        fit -> registry push -> reload -> prediction parity."""
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        assert main([
            "sweep-fit", "--points", "24", "--train", "6",
            "--metric", "s21_db", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "s21_db=kron" in out
        assert "pushed lna_sweep@v1" in out
        assert "parity=ok" in out


class TestStreamCommand:
    def test_short_stream_with_fault_and_drift(self, capsys, tmp_path):
        """CLI smoke: drift-injected stream with a poisoned batch runs
        to completion, refits at least once, and ends serving."""
        recording = tmp_path / "stream.npz"
        assert main([
            "stream", "--batches", "10", "--batch-size", "8",
            "--train", "15", "--variables", "6",
            "--drift-shift", "4.0", "--drift-at", "4",
            "--refit-window", "4", "--fault-plan", "stream:nan@2",
            "--record", str(recording),
            "--registry", str(tmp_path / "registry"), "--seed", "11",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault injection active" in out
        assert "quarantined 1" in out
        assert "drift refits" in out
        assert "0 failed" in out
        assert recording.exists()

    def test_replay_round_trip(self, capsys, tmp_path):
        recording = tmp_path / "stream.npz"
        common = [
            "--batches", "5", "--batch-size", "5", "--train", "12",
            "--variables", "5", "--seed", "3",
        ]
        assert main(
            ["stream", *common, "--record", str(recording)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["stream", *common, "--replay", str(recording)]
        ) == 0
        out = capsys.readouterr().out
        assert "replaying 5 batches" in out
        assert "absorbed 5" in out


class TestRegistryCommands:
    @pytest.fixture()
    def model_dir(self, tmp_path, lna_dataset):
        from repro.modelset import PerformanceModelSet

        train, _ = lna_dataset.split(20)
        models = PerformanceModelSet.fit_dataset(
            train, method="somp", seed=0
        )
        directory = tmp_path / "models"
        models.save_dir(directory)
        return directory

    def test_push_list_get_roundtrip(self, capsys, tmp_path, model_dir):
        root = str(tmp_path / "registry")
        assert main(
            ["registry", "push", "lna", str(model_dir), "--root", root]
        ) == 0
        assert "pushed lna@v1" in capsys.readouterr().out

        assert main(["registry", "list", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "lna@v1" in out and "modelset" in out

        dest = tmp_path / "export"
        assert main(
            ["registry", "get", "lna@latest", "--root", root,
             "--dest", str(dest)]
        ) == 0
        out = capsys.readouterr().out
        assert '"kind": "modelset"' in out
        assert (dest / "manifest.json").exists()

    def test_push_frozen_npz(self, capsys, tmp_path, model_dir):
        root = str(tmp_path / "registry")
        npz = next(model_dir.glob("*.npz"))
        assert main(
            ["registry", "push", "solo", str(npz), "--root", root]
        ) == 0
        assert main(["registry", "list", "--root", root]) == 0
        assert "frozen" in capsys.readouterr().out

    def test_get_unknown_key_fails_cleanly(self, tmp_path):
        root = str(tmp_path / "registry")
        with pytest.raises(SystemExit, match="registry error"):
            main(["registry", "get", "ghost", "--root", root])

    def test_empty_list(self, capsys, tmp_path):
        assert main(
            ["registry", "list", "--root", str(tmp_path / "registry")]
        ) == 0
        assert "empty registry" in capsys.readouterr().out


class TestYieldReport:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["yield-report"])
        assert args.command == "yield-report"
        assert args.points == 201
        assert args.train == 10
        assert args.samples == 400
        assert args.confidence == 0.95
        assert args.spec is None
        assert args.key is None

    def test_parser_spec_accumulates(self):
        args = build_parser().parse_args([
            "yield-report", "--spec", "s21_db>=16.5",
            "--spec", "nf_db<=1.55",
        ])
        assert args.spec == ["s21_db>=16.5", "nf_db<=1.55"]

    def test_key_without_spec_rejected(self, capsys, tmp_path):
        assert main([
            "yield-report", "--registry", str(tmp_path), "--key", "x@v1",
        ]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_key_without_registry_rejected(self, capsys):
        assert main([
            "yield-report", "--key", "x@v1", "--spec", "nf_db<=1.5",
        ]) == 2
        assert "--registry" in capsys.readouterr().err

    def test_registry_end_to_end(self, capsys, tmp_path, lna_dataset):
        """Full path against a pushed model set: report table, JSON
        artifact, and the independent-fallback warning for a
        correlation-free (SOMP) fit."""
        import json as json_module

        from repro.modelset import PerformanceModelSet
        from repro.serving import ModelRegistry

        train, _ = lna_dataset.split(20)
        models = PerformanceModelSet.fit_dataset(
            train, method="somp", seed=0
        )
        ModelRegistry(tmp_path / "reg").push("lna", models)
        out_json = tmp_path / "report.json"
        assert main([
            "yield-report", "--registry", str(tmp_path / "reg"),
            "--key", "lna@v1", "--spec", "nf_db<=1.6",
            "--samples", "200", "--json", str(out_json),
        ]) == 0
        captured = capsys.readouterr()
        assert "loaded lna@v1" in captured.out
        assert "independent" in captured.out
        assert "warning: no learned correlation" in captured.err
        payload = json_module.loads(out_json.read_text())
        assert payload["n_states"] == models.n_states
        assert len(payload["yield_shrunk"]) == models.n_states

    def test_bad_spec_text_surfaces(self, tmp_path):
        with pytest.raises(ValueError, match="must look like"):
            main(["yield-report", "--spec", "nf_db=1.5"])


class TestActiveFitYieldStrategy:
    def test_strategy_choice_parses_with_specs(self):
        args = build_parser().parse_args([
            "active-fit", "--strategy", "yield_variance",
            "--spec", "nf_db<=1.5",
        ])
        assert args.strategy == "yield_variance"
        assert args.spec == ["nf_db<=1.5"]

    def test_yield_variance_requires_spec(self, capsys):
        assert main([
            "active-fit", "--strategy", "yield_variance",
            "--states", "3", "--rounds", "1",
        ]) == 2
        assert "--spec" in capsys.readouterr().err
