"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.seed == 2016
        assert args.scale is None

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])

    def test_fig_metric_flag(self):
        args = build_parser().parse_args(["fig2", "--metric", "nf_db"])
        assert args.metric == "nf_db"

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_all_command_parses(self):
        args = build_parser().parse_args(["all", "--scale", "medium"])
        assert args.command == "all"
        assert args.scale == "medium"

    def test_table2_and_fig3_parse(self):
        assert build_parser().parse_args(["table2"]).command == "table2"
        args = build_parser().parse_args(
            ["fig3", "--metric", "i1db_dbm", "--seed", "7"]
        )
        assert args.command == "fig3"
        assert args.metric == "i1db_dbm"
        assert args.seed == 7


class TestInfo:
    def test_info_output(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "C-BMF" in out
        assert "small" in out and "paper" in out
        assert "cbmf" in out


class TestTableCommand:
    def test_table1_small(self, capsys, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        assert main(["table1", "--scale", "small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Modeling error for NF" in out
        assert "cost reduction" in out

    def test_fig2_single_metric(self, capsys, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        assert main(
            ["fig2", "--scale", "small", "--seed", "5", "--metric", "nf_db"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "NF" in out

    def test_fig2_unknown_metric(self, tmp_path, monkeypatch):
        import repro.paper as paper

        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["fig2", "--scale", "small", "--metric", "zzz"])
