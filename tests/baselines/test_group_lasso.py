"""Tests for the group-lasso baseline."""

import numpy as np
import pytest

from repro.baselines.group_lasso import GroupLasso, _group_soft_threshold
from repro.baselines.least_squares import LeastSquares


def shared_problem(seed=0, n_states=3, n_basis=25, n=30):
    rng = np.random.default_rng(seed)
    support = [4, 11, 19]
    designs, targets = [], []
    coefs = np.zeros((n_states, n_basis))
    for k in range(n_states):
        coefs[k, support] = rng.uniform(1.0, 2.0, 3)
        design = rng.standard_normal((n, n_basis))
        designs.append(design)
        targets.append(design @ coefs[k] + 0.02 * rng.standard_normal(n))
    return designs, targets, support, coefs


class TestGroupSoftThreshold:
    def test_zeroes_small_groups(self):
        coef = np.array([[0.1, 0.1], [3.0, 4.0]])
        out = _group_soft_threshold(coef, 1.0)
        assert np.allclose(out[0], 0.0)
        assert np.linalg.norm(out[1]) == pytest.approx(4.0)  # 5 − 1

    def test_preserves_direction(self):
        coef = np.array([[3.0, 4.0]])
        out = _group_soft_threshold(coef, 1.0)
        assert out[0, 1] / out[0, 0] == pytest.approx(4.0 / 3.0)

    def test_zero_threshold_identity(self):
        coef = np.random.default_rng(0).standard_normal((4, 3))
        assert np.allclose(_group_soft_threshold(coef, 0.0), coef)


class TestGroupLasso:
    def test_penalty_max_zeroes_solution(self):
        designs, targets, _, _ = shared_problem()
        lam_max = GroupLasso.penalty_max(designs, targets)
        model = GroupLasso(penalty=lam_max * 1.001).fit(designs, targets)
        assert np.allclose(model.coef_, 0.0, atol=1e-8)

    def test_small_penalty_approaches_least_squares(self):
        designs, targets, _, _ = shared_problem(1)
        lam_max = GroupLasso.penalty_max(designs, targets)
        model = GroupLasso(
            penalty=lam_max * 1e-6, max_iterations=3000, tolerance=1e-14
        ).fit(designs, targets)
        ls = LeastSquares().fit(designs, targets)
        assert np.allclose(model.coef_, ls.coef_, atol=0.02)

    def test_group_sparsity_pattern_shared(self):
        """Zero groups are zero in *every* state simultaneously."""
        designs, targets, support, _ = shared_problem(2)
        lam_max = GroupLasso.penalty_max(designs, targets)
        model = GroupLasso(penalty=0.2 * lam_max).fit(designs, targets)
        norms = np.linalg.norm(model.coef_, axis=0)
        active = set(np.flatnonzero(norms > 1e-8))
        assert set(support).issubset(active)
        # Per-column: either all states zero or the group survives jointly.
        for m in range(model.coef_.shape[1]):
            column = model.coef_[:, m]
            assert np.all(column == 0.0) or np.linalg.norm(column) > 1e-8

    def test_cv_mode_runs(self):
        designs, targets, support, _ = shared_problem(3)
        model = GroupLasso(
            penalty="cv", penalty_grid=(0.3, 0.03), n_folds=3, seed=0
        ).fit(designs, targets)
        assert model.penalty_used_ > 0.0
        active = set(np.flatnonzero(np.linalg.norm(model.coef_, axis=0)))
        assert set(support).issubset(active)

    def test_objective_decreases(self):
        """More FISTA iterations cannot worsen the training objective."""
        designs, targets, _, _ = shared_problem(4)
        lam = 0.1 * GroupLasso.penalty_max(designs, targets)

        def objective(coef):
            value = lam * np.sum(np.linalg.norm(coef, axis=0))
            for k, (d, t) in enumerate(zip(designs, targets)):
                r = d @ coef[k] - t
                value += 0.5 * float(r @ r)
            return value

        short = GroupLasso(penalty=lam, max_iterations=5).fit(
            designs, targets
        )
        long = GroupLasso(penalty=lam, max_iterations=400).fit(
            designs, targets
        )
        assert objective(long.coef_) <= objective(short.coef_) + 1e-6

    def test_rejects_bad_penalty(self):
        with pytest.raises(ValueError):
            GroupLasso(penalty=0.0)
        with pytest.raises(ValueError, match="cv"):
            GroupLasso(penalty="auto")
