"""Tests for per-state OMP."""

import numpy as np
import pytest

from repro.baselines.omp import OMP, omp_select


def sparse_problem(seed=0, n_states=3, n_basis=40, n=25):
    rng = np.random.default_rng(seed)
    supports = [
        sorted(rng.choice(n_basis, 3, replace=False)) for _ in range(n_states)
    ]
    designs, targets = [], []
    for k in range(n_states):
        coef = np.zeros(n_basis)
        coef[supports[k]] = rng.uniform(1.0, 3.0, 3)
        design = rng.standard_normal((n, n_basis))
        designs.append(design)
        targets.append(design @ coef + 0.01 * rng.standard_normal(n))
    return designs, targets, supports


class TestOmpSelect:
    def test_recovers_support(self):
        designs, targets, supports = sparse_problem()
        support, _ = omp_select(designs[0], targets[0], 3)
        assert sorted(support) == supports[0]

    def test_rejects_bad_size(self):
        designs, targets, _ = sparse_problem()
        with pytest.raises(ValueError):
            omp_select(designs[0], targets[0], 0)
        with pytest.raises(ValueError):
            omp_select(designs[0], targets[0], 999)

    def test_no_duplicates(self):
        designs, targets, _ = sparse_problem(1)
        support, _ = omp_select(designs[0], targets[0], 10)
        assert len(set(support)) == 10


class TestOMP:
    def test_fixed_size_recovery(self):
        designs, targets, supports = sparse_problem(2)
        model = OMP(n_select=3).fit(designs, targets)
        for k in range(3):
            found = sorted(np.flatnonzero(model.coef_[k]))
            assert found == supports[k]

    def test_states_can_have_different_supports(self):
        designs, targets, supports = sparse_problem(3)
        model = OMP(n_select=3).fit(designs, targets)
        assert model.supports_ is not None
        assert sorted(model.supports_[0]) == supports[0]
        assert sorted(model.supports_[1]) == supports[1]

    def test_cv_mode_runs(self):
        designs, targets, supports = sparse_problem(4)
        model = OMP(n_select="cv", n_select_grid=(3, 6), seed=0).fit(
            designs, targets
        )
        for k in range(3):
            found = set(np.flatnonzero(model.coef_[k]))
            assert set(supports[k]).issubset(found)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="cv"):
            OMP(n_select="auto")

    def test_rejects_bad_grid_types(self):
        with pytest.raises(TypeError):
            OMP(n_select=2.5)

    def test_size_capped_by_samples(self):
        rng = np.random.default_rng(5)
        design = rng.standard_normal((4, 20))
        target = rng.standard_normal(4)
        model = OMP(n_select=10).fit([design], [target])
        assert np.count_nonzero(model.coef_[0]) <= 4
