"""Tests for the S-OMP baseline."""

import numpy as np
import pytest

from repro.baselines.omp import OMP
from repro.baselines.somp import SOMP


def shared_problem(seed=0, n_states=4, n_basis=50, n=22):
    rng = np.random.default_rng(seed)
    support = sorted(rng.choice(n_basis, 4, replace=False))
    designs, targets = [], []
    coefs = np.zeros((n_states, n_basis))
    for k in range(n_states):
        coefs[k, support] = rng.uniform(1.0, 3.0, 4) * rng.choice([-1, 1], 4)
        design = rng.standard_normal((n, n_basis))
        designs.append(design)
        targets.append(design @ coefs[k] + 0.02 * rng.standard_normal(n))
    return designs, targets, support, coefs


class TestSOMP:
    def test_recovers_shared_support(self):
        designs, targets, support, _ = shared_problem()
        model = SOMP(n_select=4).fit(designs, targets)
        assert sorted(model.support_order_) == support

    def test_support_identical_across_states(self):
        designs, targets, _, _ = shared_problem(1)
        model = SOMP(n_select=5).fit(designs, targets)
        patterns = [set(np.flatnonzero(row)) for row in model.coef_]
        for pattern in patterns[1:]:
            assert pattern <= patterns[0] | pattern  # same template
            assert np.flatnonzero(model.coef_[0]).size == 5

    def test_magnitudes_fit_per_state(self):
        designs, targets, support, coefs = shared_problem(2)
        model = SOMP(n_select=4).fit(designs, targets)
        assert np.allclose(
            model.coef_[:, support], coefs[:, support], atol=0.05
        )

    def test_cv_mode_selects_reasonable_size(self):
        designs, targets, support, _ = shared_problem(3)
        model = SOMP(n_select="cv", n_select_grid=(2, 4, 8), seed=0).fit(
            designs, targets
        )
        assert model.n_select_used_ in (4, 8)
        found = set(model.support_order_)
        assert set(support).issubset(found)

    def test_shared_template_beats_per_state_omp_at_low_n(self):
        """Pooling the selection across states is S-OMP's whole point."""
        designs, targets, support, coefs = shared_problem(4, n=7)
        test_rng = np.random.default_rng(99)
        test_designs = [
            test_rng.standard_normal((200, 50)) for _ in range(4)
        ]
        test_targets = [d @ coefs[k] for k, d in enumerate(test_designs)]

        def error(model):
            total = 0.0
            for k in range(4):
                p = model.predict(test_designs[k], k)
                total += float(np.mean((p - test_targets[k]) ** 2))
            return total

        somp = SOMP(n_select=4).fit(designs, targets)
        omp = OMP(n_select=4).fit(designs, targets)
        assert error(somp) < error(omp)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="cv"):
            SOMP(n_select="auto")

    def test_size_capped(self):
        designs, targets, _, _ = shared_problem(5, n=6)
        model = SOMP(n_select=50).fit(designs, targets)
        assert model.n_select_used_ <= 6
