"""Tests for the uncorrelated-BMF ablation estimator."""

import numpy as np

from repro.baselines.bmf import UncorrelatedBMF
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig

from tests.conftest import make_synthetic

FAST_INIT = InitConfig(
    r0_grid=(0.0, 0.9), sigma0_grid=(0.1,), n_basis_grid=(4, 8), n_folds=4
)
FAST_EM = EmConfig(max_iterations=15)


class TestUncorrelatedBMF:
    def test_correlation_stays_diagonal(self):
        problem = make_synthetic(seed=0)
        designs, targets = problem.sample(15)
        model = UncorrelatedBMF(
            init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        r = model.prior_.correlation
        assert np.allclose(r, np.diag(np.diag(r)))

    def test_r0_grid_collapsed_to_identity(self):
        model = UncorrelatedBMF(init_config=FAST_INIT)
        assert model.init_config.r0_grid == (0.0,)

    def test_fits_and_predicts(self):
        problem = make_synthetic(seed=1)
        designs, targets = problem.sample(20)
        model = UncorrelatedBMF(
            init_config=FAST_INIT, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        assert np.allclose(model.coef_, problem.coef, atol=0.4)

    def test_cbmf_beats_bmf_on_strongly_correlated_truth(self):
        """The ablation the paper's argument rests on: adding magnitude
        correlation helps when coefficients really are correlated."""
        problem = make_synthetic(
            seed=2, n_states=12, n_basis=80, n_support=6, r0=0.97
        )
        designs, targets = problem.sample(8)
        test_d, test_t = problem.sample(200)

        def error(model):
            num = den = 0.0
            for k in range(problem.n_states):
                p = model.predict(test_d[k], k)
                num += float(np.sum((p - test_t[k]) ** 2))
                den += float(np.sum((test_t[k] - test_t[k].mean()) ** 2))
            return float(np.sqrt(num / den))

        shared_init = InitConfig(
            r0_grid=(0.0, 0.95),
            sigma0_grid=(0.05, 0.2),
            n_basis_grid=(4, 8),
            n_folds=4,
        )
        cbmf = CBMF(
            init_config=shared_init, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        bmf = UncorrelatedBMF(
            init_config=shared_init, em_config=FAST_EM, seed=0
        ).fit(designs, targets)
        assert error(cbmf) < error(bmf)

    def test_preserves_custom_em_flags(self):
        em = EmConfig(max_iterations=7, update_noise=False)
        model = UncorrelatedBMF(em_config=em)
        assert model.em_config.max_iterations == 7
        assert model.em_config.diagonal_r is True
        assert model.em_config.update_noise is False
