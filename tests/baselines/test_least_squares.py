"""Tests for per-state least squares and ridge."""

import numpy as np
import pytest

from repro.baselines.least_squares import LeastSquares, Ridge


def exact_problem(seed=0, n_states=3, n_basis=5, n=20):
    rng = np.random.default_rng(seed)
    coef = rng.standard_normal((n_states, n_basis))
    designs = [rng.standard_normal((n, n_basis)) for _ in range(n_states)]
    targets = [d @ coef[k] for k, d in enumerate(designs)]
    return designs, targets, coef


class TestLeastSquares:
    def test_exact_recovery_noiseless(self):
        designs, targets, coef = exact_problem()
        model = LeastSquares().fit(designs, targets)
        assert np.allclose(model.coef_, coef, atol=1e-9)

    def test_predict(self):
        designs, targets, _ = exact_problem(1)
        model = LeastSquares().fit(designs, targets)
        assert np.allclose(model.predict(designs[1], 1), targets[1])

    def test_states_independent(self):
        """Changing one state's data must not move another's fit."""
        designs, targets, _ = exact_problem(2)
        base = LeastSquares().fit(designs, targets).coef_
        targets2 = list(targets)
        targets2[0] = targets2[0] + 100.0
        other = LeastSquares().fit(designs, targets2).coef_
        assert np.allclose(base[1:], other[1:])
        assert not np.allclose(base[0], other[0])

    def test_underdetermined_returns_min_norm(self):
        rng = np.random.default_rng(3)
        design = rng.standard_normal((4, 10))
        target = rng.standard_normal(4)
        model = LeastSquares().fit([design], [target])
        # Min-norm solution interpolates the training data.
        assert np.allclose(design @ model.coef_[0], target, atol=1e-9)

    def test_n_states_property(self):
        designs, targets, _ = exact_problem(4)
        model = LeastSquares().fit(designs, targets)
        assert model.n_states == 3
        assert model.n_basis == 5


class TestRidge:
    def test_matches_closed_form(self):
        designs, targets, _ = exact_problem(5)
        alpha = 2.0
        model = Ridge(alpha=alpha).fit(designs, targets)
        for k, (design, target) in enumerate(zip(designs, targets)):
            expected = np.linalg.solve(
                design.T @ design + alpha * np.eye(5), design.T @ target
            )
            assert np.allclose(model.coef_[k], expected)

    def test_shrinks_toward_zero(self):
        designs, targets, _ = exact_problem(6)
        weak = Ridge(alpha=1e-6).fit(designs, targets).coef_
        strong = Ridge(alpha=1e6).fit(designs, targets).coef_
        assert np.linalg.norm(strong) < 1e-3 * np.linalg.norm(weak)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            Ridge(alpha=0.0)

    def test_handles_underdetermined(self):
        rng = np.random.default_rng(7)
        design = rng.standard_normal((3, 12))
        target = rng.standard_normal(3)
        model = Ridge(alpha=0.5).fit([design], [target])
        assert np.all(np.isfinite(model.coef_))
