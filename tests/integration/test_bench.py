"""Tests for the benchmark regression harness (logic only — no timing)."""

import argparse
import json
from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_THRESHOLD,
    KRON_MIN_SPEEDUP,
    KRON_PARITY_RTOL,
    SUITES,
    add_bench_parser,
    YIELD_PEAK_FRACTION,
    check_kron_gates,
    check_regression,
    check_yield_gates,
)


def report(cbmf_fit=1.0, em=0.5, scale="small", kind="fit"):
    return {
        "kind": kind,
        "config": {
            "circuit": "lna",
            "scale": scale,
            "n_states": 6,
            "n_basis": 190,
            "repeats": 3,
        },
        "env": {"python": "3.11", "numpy": "2.0", "machine": "x86_64"},
        "timings_seconds": {"cbmf_fit": cbmf_fit, "em": em},
    }


class TestCheckRegression:
    def test_identical_passes(self):
        assert check_regression(report(), report()) == []

    def test_faster_passes(self):
        assert check_regression(report(cbmf_fit=0.5), report()) == []

    def test_within_gate_passes(self):
        current = report(cbmf_fit=1.4)
        assert check_regression(current, report()) == []

    def test_beyond_gate_fails(self):
        current = report(cbmf_fit=1.6)
        problems = check_regression(current, report())
        assert len(problems) == 1
        assert "cbmf_fit" in problems[0]
        assert "1.60" in problems[0]

    def test_custom_threshold(self):
        current = report(cbmf_fit=1.2)
        assert check_regression(current, report(), threshold=1.1)

    def test_multiple_regressions_all_reported(self):
        current = report(cbmf_fit=2.0, em=2.0)
        problems = check_regression(current, report())
        assert len(problems) == 2

    def test_config_mismatch_reported_not_compared(self):
        current = report(cbmf_fit=100.0, scale="medium")
        problems = check_regression(current, report())
        assert len(problems) == 1
        assert "config mismatch" in problems[0]
        assert "scale" in problems[0]

    def test_repeats_not_part_of_fingerprint(self):
        current = report()
        current["config"]["repeats"] = 99
        assert check_regression(current, report()) == []

    def test_missing_timing_reported(self):
        current = report()
        del current["timings_seconds"]["em"]
        problems = check_regression(current, report())
        assert problems and "missing" in problems[0]

    def test_environment_differences_ignored(self):
        current = report()
        current["env"] = {"python": "3.99", "numpy": "9.9", "machine": "arm"}
        assert check_regression(current, report()) == []

    def test_roundtrips_through_json(self):
        baseline = json.loads(json.dumps(report()))
        assert check_regression(report(), baseline) == []


def kron_report(
    speedup=10.0,
    coef_parity=1e-12,
    kron_dense=1e-10,
    dual_dense=1e-10,
    solver="kron",
):
    return {
        "kind": "kron",
        "config": {"circuit": "lna_sweep", "n_points": 201},
        "timings_seconds": {
            "kron_fit_k201": 0.5, "dual_fit_k201": 0.5 * speedup,
        },
        "details": {
            "speedup_vs_dual": speedup,
            "coef_parity_vs_dual": coef_parity,
            "kron_vs_dense_parity": kron_dense,
            "dual_vs_dense_parity": dual_dense,
            "solver_used": solver,
        },
    }


class TestCheckKronGates:
    """Absolute gates — enforced with or without a committed baseline."""

    def test_healthy_report_passes(self):
        assert check_kron_gates(kron_report()) == []

    def test_speedup_below_gate_fails(self):
        problems = check_kron_gates(
            kron_report(speedup=KRON_MIN_SPEEDUP - 0.1)
        )
        assert problems and "speedup" in problems[0]

    def test_each_parity_gate_enforced(self):
        for key in ("coef_parity", "kron_dense", "dual_dense"):
            problems = check_kron_gates(
                kron_report(**{key: 10 * KRON_PARITY_RTOL})
            )
            assert problems, f"{key} beyond rtol must fail the gate"

    def test_missing_parity_fails_loudly(self):
        broken = kron_report()
        broken["details"]["coef_parity_vs_dual"] = None
        assert check_kron_gates(broken)

    def test_wrong_solver_fails(self):
        problems = check_kron_gates(kron_report(solver="dual"))
        assert problems and "solver" in problems[0]

    def test_committed_baseline_satisfies_its_own_gates(self):
        """The repo's committed BENCH_kron.json must pass the absolute
        gates — otherwise CI's perf-smoke would be red from the start."""
        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines" / "BENCH_kron.json"
        )
        baseline = json.loads(path.read_text())
        assert baseline["kind"] == "kron"
        assert check_kron_gates(baseline) == []
        curve = baseline["details"]["k_scaling"]
        assert [point["k"] for point in curve] == [32, 64, 128, 201]


class TestSuiteRegistry:
    def test_kron_is_a_selectable_suite(self):
        assert "kron" in SUITES


class TestBenchParser:
    def parse(self, argv):
        parser = argparse.ArgumentParser()
        sub = parser.add_subparsers(dest="command")
        add_bench_parser(sub)
        return parser.parse_args(argv)

    def test_defaults(self):
        args = self.parse(["bench"])
        assert not args.quick
        assert not args.check
        assert args.scale == "medium"
        assert args.threshold == DEFAULT_THRESHOLD

    def test_quick_check_flags(self):
        args = self.parse(["bench", "--quick", "--check"])
        assert args.quick and args.check

    def test_cli_exposes_bench(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick"])
        assert args.command == "bench"
        assert args.quick


def yield_report(
    rmse_independent=0.012,
    rmse_shrunk=0.010,
    correlation_shared=True,
    peak_bytes=2_000_000,
    dense_bytes=18_000_000_000,
):
    return {
        "kind": "yield",
        "config": {"circuit": "lna_sweep", "n_points": 201},
        "timings_seconds": {"fit": 1.0, "estimate": 0.1},
        "details": {
            "rmse_independent": rmse_independent,
            "rmse_shrunk": rmse_shrunk,
            "correlation_shared": correlation_shared,
            "cluster_peak_bytes": peak_bytes,
            "dense_cov_bytes": dense_bytes,
        },
    }


class TestCheckYieldGates:
    """Absolute gates of the yield suite — baseline-free acceptance."""

    def test_healthy_report_passes(self):
        assert check_yield_gates(yield_report()) == []

    def test_shrunk_must_beat_independent(self):
        problems = check_yield_gates(yield_report(rmse_shrunk=0.013))
        assert problems and "does not beat" in problems[0]
        # A tie is not a win either.
        assert check_yield_gates(
            yield_report(rmse_shrunk=0.012, rmse_independent=0.012)
        )

    def test_missing_rmse_fails_loudly(self):
        broken = yield_report()
        del broken["details"]["rmse_shrunk"]
        assert check_yield_gates(broken)

    def test_independent_fallback_fails(self):
        problems = check_yield_gates(
            yield_report(correlation_shared=False)
        )
        assert problems and "correlation_shared" in problems[0]

    def test_densified_covariance_fails(self):
        problems = check_yield_gates(
            yield_report(peak_bytes=18_000_000_000)
        )
        assert problems and "dense" in problems[0]

    def test_peak_gate_is_a_strict_fraction(self):
        dense = 1_000_000_000
        at_gate = int(dense * YIELD_PEAK_FRACTION)
        assert check_yield_gates(
            yield_report(peak_bytes=at_gate, dense_bytes=dense)
        )
        assert check_yield_gates(
            yield_report(peak_bytes=at_gate - 1, dense_bytes=dense)
        ) == []

    def test_committed_baseline_satisfies_its_own_gates(self):
        """The repo's committed BENCH_yield.json must pass the absolute
        gates — otherwise CI's yield-smoke would be red from the start."""
        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines" / "BENCH_yield.json"
        )
        baseline = json.loads(path.read_text())
        assert baseline["kind"] == "yield"
        assert check_yield_gates(baseline) == []
        assert baseline["config"]["mc_samples"] >= 100_000

    def test_yield_is_a_selectable_suite(self):
        assert "yield" in SUITES
