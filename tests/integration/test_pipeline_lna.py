"""Integration: simulate LNA → basis-expand → fit → score.

Exercises the full paper pipeline at small scale and asserts the *shape*
of the headline result (C-BMF at or below S-OMP with fewer samples).
"""

import numpy as np
import pytest

from repro.basis.polynomial import LinearBasis
from repro.evaluation.error import modeling_error_percent
from repro.evaluation.experiment import ModelingExperiment
from repro.simulate.cost import LNA_COST_MODEL


@pytest.fixture(scope="module")
def harness(lna_dataset):
    pool, test = lna_dataset.split(25)
    basis = LinearBasis(lna_dataset.n_variables)
    return pool, test, basis


class TestLnaPipeline:
    def test_cbmf_matches_somp_with_fewer_samples(self, harness):
        """The paper's headline, scaled to the tiny fixture: C-BMF at half of
        S-OMP's budget lands at comparable (within 2×) error on every
        metric. (At the paper's K=32 the reduction reaches 2.3× with no
        accuracy loss — exercised by the paper-scale benchmarks.)"""
        pool, test, basis = harness
        big = ModelingExperiment(pool.head(24), test, basis)
        small = ModelingExperiment(pool.head(12), test, basis)
        somp = big.run("somp", seed=0)
        cbmf = small.run("cbmf", seed=0)
        for metric in pool.metric_names:
            assert cbmf.errors[metric] < 2.0 * somp.errors[metric]

    def test_cbmf_beats_somp_at_equal_budget(self, harness):
        pool, test, basis = harness
        experiment = ModelingExperiment(pool.head(12), test, basis)
        somp = experiment.run("somp", metrics=("gain_db",), seed=0)
        cbmf = experiment.run("cbmf", metrics=("gain_db",), seed=0)
        assert cbmf.errors["gain_db"] <= somp.errors["gain_db"] * 1.05

    def test_errors_decrease_with_budget(self, harness):
        pool, test, basis = harness
        small = ModelingExperiment(pool.head(8), test, basis).run(
            "somp", metrics=("nf_db",), seed=0
        )
        large = ModelingExperiment(pool.head(25), test, basis).run(
            "somp", metrics=("nf_db",), seed=0
        )
        assert large.errors["nf_db"] < small.errors["nf_db"]

    def test_cost_accounting_shape(self, harness):
        """Fewer samples → proportionally lower overall cost (simulation
        dominates, as in the paper)."""
        pool, test, basis = harness
        big = ModelingExperiment(pool.head(25), test, basis, LNA_COST_MODEL)
        small = ModelingExperiment(pool.head(10), test, basis, LNA_COST_MODEL)
        somp = big.run("somp", metrics=("nf_db",), seed=0)
        cbmf = small.run("cbmf", metrics=("nf_db",), seed=0)
        ratio = somp.cost.total_hours / cbmf.cost.total_hours
        assert ratio > 1.5
        # Simulation dominates both:
        assert somp.cost.simulation_seconds > somp.cost.fitting_seconds

    def test_model_predictions_track_simulator(self, harness):
        pool, test, basis = harness
        experiment = ModelingExperiment(pool.head(20), test, basis)
        result = experiment.run("cbmf", metrics=("gain_db",), seed=0)
        assert result.errors["gain_db"] < 5.0  # percent
