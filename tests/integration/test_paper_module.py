"""Integration tests for the canonical experiment configurations."""

import numpy as np
import pytest

from repro import paper
from repro.simulate.dataset import Dataset


class TestScales:
    def test_known_scales(self):
        assert set(paper.SCALES) == {"small", "medium", "paper"}

    def test_paper_scale_matches_paper(self):
        scale = paper.SCALES["paper"]
        assert scale.n_states == 32
        assert scale.n_variables_lna == 1264
        assert scale.n_variables_mixer == 1303
        assert scale.n_test_per_state == 50
        # Table budgets: 35×32 = 1120 (S-OMP), 15×32 = 480 (C-BMF).
        assert scale.table_somp_per_state * 32 == 1120
        assert scale.table_cbmf_per_state * 32 == 480

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert paper.resolve_scale().name == "small"

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert paper.resolve_scale().name == "medium"

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert paper.resolve_scale("small").name == "small"

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            paper.resolve_scale("galactic")


class TestBuildCircuit:
    def test_lna(self):
        scale = paper.SCALES["small"]
        circuit = paper.build_circuit("lna", scale)
        assert circuit.name == "lna"
        assert circuit.n_states == scale.n_states

    def test_mixer(self):
        circuit = paper.build_circuit("mixer", paper.SCALES["small"])
        assert circuit.name == "mixer"

    def test_unknown(self):
        with pytest.raises(KeyError):
            paper.build_circuit("vco", paper.SCALES["small"])


class TestLoadOrSimulate:
    def test_cache_roundtrip(self, tmp_path):
        scale = paper.SCALES["small"]
        pool1, test1 = paper.load_or_simulate(
            "lna", scale, seed=7, cache_dir=tmp_path
        )
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["lna_small_seed7_pool.npz", "lna_small_seed7_test.npz"]
        pool2, test2 = paper.load_or_simulate(
            "lna", scale, seed=7, cache_dir=tmp_path
        )
        assert np.allclose(pool1.states[0].x, pool2.states[0].x)
        assert pool1.n_samples_per_state == (scale.pool_per_state,) * scale.n_states
        assert test1.n_samples_per_state == (scale.n_test_per_state,) * scale.n_states

    def test_pool_and_test_disjoint(self, tmp_path):
        scale = paper.SCALES["small"]
        pool, test = paper.load_or_simulate(
            "lna", scale, seed=8, cache_dir=tmp_path
        )
        # Pool is the head, test the tail of one simulation run; with
        # continuous sampling a shared row would be a bug.
        assert not np.allclose(pool.states[0].x[0], test.states[0].x[0])


class TestRunCostTable:
    def test_small_scale_shape(self, tmp_path, monkeypatch):
        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        results = paper.run_cost_table(
            "lna", paper.SCALES["small"], seed=9
        )
        assert set(results) == {"somp", "cbmf"}
        somp, cbmf = results["somp"], results["cbmf"]
        # The budget ratio drives the headline cost ratio.
        assert somp.n_train_total > 2 * cbmf.n_train_total
        assert somp.cost.total_hours > 2 * cbmf.cost.total_hours
        # Accuracy comparable at the tiny scale: within 2× on every
        # metric (the paper-scale run reaches parity; see EXPERIMENTS.md).
        for metric in somp.errors:
            assert cbmf.errors[metric] < 2.0 * somp.errors[metric]


class TestRunFigureSweep:
    def test_small_sweep_shape(self, tmp_path, monkeypatch):
        monkeypatch.setattr(paper, "DEFAULT_CACHE_DIR", tmp_path)
        scale = paper.SCALES["small"]
        sweep = paper.run_figure_sweep("lna", scale, seed=10)
        assert set(sweep.results) == {"somp", "cbmf"}
        for metric in sweep.metric_names:
            somp = sweep.errors("somp", metric)
            cbmf = sweep.errors("cbmf", metric)
            # Figure 2 observation 1: error decreases with samples.
            assert somp[-1] < somp[0]
            # Figure 2 observation 2: C-BMF at or below S-OMP on most of
            # the grid (allow one noisy crossover point).
            wins = sum(c <= s * 1.05 for c, s in zip(cbmf, somp))
            assert wins >= len(somp) - 1
