"""Integration: the mixer pipeline (paper Section 4.2 shape)."""

import pytest

from repro.basis.polynomial import LinearBasis
from repro.evaluation.experiment import ModelingExperiment
from repro.simulate.cost import MIXER_COST_MODEL


@pytest.fixture(scope="module")
def harness(mixer_dataset):
    pool, test = mixer_dataset.split(25)
    basis = LinearBasis(mixer_dataset.n_variables)
    return pool, test, basis


class TestMixerPipeline:
    def test_cbmf_matches_somp_with_fewer_samples(self, harness):
        pool, test, basis = harness
        somp = ModelingExperiment(pool.head(24), test, basis).run(
            "somp", seed=0
        )
        cbmf = ModelingExperiment(pool.head(12), test, basis).run(
            "cbmf", seed=0
        )
        for metric in pool.metric_names:
            assert cbmf.errors[metric] < 2.0 * somp.errors[metric]

    def test_all_metrics_modellable(self, harness):
        pool, test, basis = harness
        result = ModelingExperiment(pool.head(20), test, basis).run(
            "cbmf", seed=0
        )
        for metric, error in result.errors.items():
            assert error < 10.0, metric

    def test_cost_reduction(self, harness):
        pool, test, basis = harness
        somp = ModelingExperiment(
            pool.head(25), test, basis, MIXER_COST_MODEL
        ).run("somp", metrics=("nf_db",), seed=0)
        cbmf = ModelingExperiment(
            pool.head(10), test, basis, MIXER_COST_MODEL
        ).run("cbmf", metrics=("nf_db",), seed=0)
        assert somp.cost.total_hours / cbmf.cost.total_hours > 1.5
