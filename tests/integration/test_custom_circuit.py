"""A user-defined circuit through the whole pipeline.

Demonstrates (and pins down) the ``TunableCircuit`` extension contract:
anything that provides a process model, a state list and ``evaluate`` gets
Monte Carlo, fitting, sweeps and yield estimation for free. The toy here
is a tunable RC filter — deliberately minimal and fully analytic.
"""

import math
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.basis.polynomial import LinearBasis
from repro.circuits.base import TunableCircuit
from repro.circuits.devices import Passive
from repro.circuits.knobs import KnobConfiguration, TuningKnob, enumerate_states
from repro.evaluation.experiment import ModelingExperiment
from repro.simulate.montecarlo import MonteCarloEngine
from repro.variation.process import ProcessModel, ProcessSample


class TunableRCFilter(TunableCircuit):
    """First-order RC low-pass with a switched-capacitor corner knob."""

    def __init__(self, n_states: int = 4) -> None:
        self.r = Passive("RF", "resistor", 10e3, 0.02)
        self.c_base = Passive("CF", "capacitor", 1e-12, 0.02)
        self.c_units = tuple(
            Passive(f"CU{i}", "capacitor", 0.5e-12, 0.03)
            for i in range(n_states - 1)
        )
        declarations = [self.r.variation(), self.c_base.variation()]
        declarations.extend(c.variation() for c in self.c_units)
        self._model = ProcessModel(declarations)
        knob = TuningKnob(
            "cap_code", tuple(float(i) for i in range(n_states))
        )
        self._states = tuple(enumerate_states([knob]))

    @property
    def name(self) -> str:
        """Circuit identifier."""
        return "rcfilter"

    @property
    def process_model(self) -> ProcessModel:
        """The filter's variation space."""
        return self._model

    @property
    def states(self) -> Tuple[KnobConfiguration, ...]:
        """Ordered knob configurations."""
        return self._states

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Corner frequency (MHz) and droop at the 5 MHz band edge (dB)."""
        return ("fc_mhz", "droop_db")

    def evaluate(
        self, sample: ProcessSample, state: KnobConfiguration
    ) -> Dict[str, float]:
        """Closed-form metrics of the RC corner."""
        code = int(state.values["cap_code"])
        resistance = self.r.value(sample)
        capacitance = self.c_base.value(sample) + sum(
            self.c_units[i].value(sample) for i in range(code)
        )
        fc = 1.0 / (2.0 * math.pi * resistance * capacitance)
        ratio = 5e6 / fc
        droop = -10.0 * math.log10(1.0 + ratio * ratio)
        return {"fc_mhz": fc / 1e6, "droop_db": droop}


@pytest.fixture(scope="module")
def rc_filter():
    return TunableRCFilter()


class TestCustomCircuit:
    def test_contract_surface(self, rc_filter):
        assert rc_filter.n_states == 4
        assert rc_filter.n_variables == 2 + 3 + len(
            rc_filter.process_model.global_specs
        ) - 0  # 12 globals + 5 locals
        nominal = rc_filter.nominal(rc_filter.states[0])
        assert 5.0 < nominal["fc_mhz"] < 30.0

    def test_knob_moves_corner_down(self, rc_filter):
        fcs = [rc_filter.nominal(s)["fc_mhz"] for s in rc_filter.states]
        assert all(b < a for a, b in zip(fcs, fcs[1:]))

    def test_full_pipeline(self, rc_filter):
        """Simulate → fit C-BMF → error well under 1 % on both metrics."""
        data = MonteCarloEngine(rc_filter, seed=1).run(30)
        train, test = data.split(15)
        experiment = ModelingExperiment(
            train, test, LinearBasis(rc_filter.n_variables)
        )
        result = experiment.run("cbmf", seed=0)
        for metric, error in result.errors.items():
            assert error < 5.0, metric

    def test_yield_application_works(self, rc_filter):
        from repro.applications import Specification
        from repro.modelset import PerformanceModelSet

        data = MonteCarloEngine(rc_filter, seed=2).run(25)
        models = PerformanceModelSet.fit_dataset(
            data, method="somp", seed=0
        )
        from repro.applications import YieldEstimator

        estimator = YieldEstimator(models.as_mapping(), models.basis)
        nominal_fc = rc_filter.nominal(rc_filter.states[0])["fc_mhz"]
        yields = estimator.state_yields(
            [Specification("fc_mhz", nominal_fc, "max")],
            n_samples=2000,
            seed=0,
        )
        # The spec sits at state 0's median → ~50 % there, ~100 % at the
        # lower-corner states.
        assert yields[0] == pytest.approx(0.5, abs=0.15)
        assert yields[-1] > 0.9
