"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ServingError, SimulationError
from repro.faults import (
    Fault,
    FaultPlan,
    FaultyOracle,
    raise_serving_fault,
    shard_faults,
)

from tests.active.conftest import sparse_oracle


class TestFault:
    def test_calls_schedule(self):
        fault = Fault("oracle", "raise", calls=(1, 3))
        assert [fault.matches(i) for i in range(5)] == [
            False, True, False, True, False,
        ]

    def test_every_schedule(self):
        fault = Fault("oracle", "nan", every=2)
        assert [fault.matches(i) for i in range(5)] == [
            True, False, True, False, True,
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            Fault("oracle", "explode")
        with pytest.raises(ValueError, match="every"):
            Fault("oracle", "raise", every=0)
        with pytest.raises(ValueError, match="stall_seconds"):
            Fault("oracle", "stall", stall_seconds=-1.0)


class TestFaultPlan:
    def test_fire_counts_per_site(self):
        plan = FaultPlan([Fault("oracle", "raise", calls=(1,))])
        assert plan.fire("oracle") is None  # call 0
        assert plan.fire("swap") is None  # independent counter
        assert plan.fire("oracle") is not None  # call 1
        assert plan.calls("oracle") == 2
        assert plan.calls("swap") == 1

    def test_reset(self):
        plan = FaultPlan([Fault("oracle", "raise", calls=(0,))])
        assert plan.fire("oracle") is not None
        plan.reset()
        assert plan.calls("oracle") == 0
        assert plan.fire("oracle") is not None

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "oracle:raise@2,5; swap:raise@0; oracle:nan@*3; "
            "oracle:stall@1:0.2",
            seed=4,
        )
        assert plan.seed == 4
        assert len(plan.faults) == 4
        raise_f, swap_f, nan_f, stall_f = plan.faults
        assert raise_f.calls == (2, 5)
        assert swap_f.site == "swap" and swap_f.calls == (0,)
        assert nan_f.every == 3
        assert stall_f.stall_seconds == 0.2 and stall_f.calls == (1,)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid fault spec"):
            FaultPlan.parse("oracle-raise-2")
        with pytest.raises(ValueError, match="invalid fault spec"):
            FaultPlan.parse("oracle:explode@1")

    def test_parse_empty_spec(self):
        assert FaultPlan.parse("").faults == ()

    def test_nan_rng_deterministic(self):
        a = FaultPlan(seed=3).nan_rng("oracle").integers(1000)
        b = FaultPlan(seed=3).nan_rng("oracle").integers(1000)
        assert a == b


class TestFaultyOracle:
    def test_raise_mode(self):
        plan = FaultPlan([Fault("oracle", "raise", calls=(0,))])
        oracle = FaultyOracle(sparse_oracle(), plan)
        x = np.zeros((2, oracle.n_variables))
        with pytest.raises(SimulationError, match="injected"):
            oracle.observe(x, 0)
        # Second call is clean and matches the base oracle exactly.
        base = sparse_oracle()
        assert np.array_equal(oracle.observe(x, 0), base.observe(x, 0))

    def test_nan_mode_poisons_one_row(self):
        plan = FaultPlan([Fault("oracle", "nan", every=1)], seed=1)
        oracle = FaultyOracle(sparse_oracle(), plan)
        x = np.random.default_rng(0).standard_normal(
            (5, oracle.n_variables)
        )
        values = oracle.observe(x, 0)
        assert np.isnan(values).sum() == 1

    def test_truth_never_faulted(self):
        plan = FaultPlan([Fault("oracle", "raise", every=1)])
        oracle = FaultyOracle(sparse_oracle(), plan)
        x = np.zeros((2, oracle.n_variables))
        assert np.all(np.isfinite(oracle.truth(x, 0)))
        assert plan.calls("oracle") == 0

    def test_metadata_mirrors_base(self):
        base = sparse_oracle()
        oracle = FaultyOracle(base, FaultPlan())
        assert oracle.name == base.name
        assert oracle.metric == base.metric
        assert oracle.n_states == base.n_states
        assert oracle.n_variables == base.n_variables


class TestShardFaults:
    def test_parse_kill_and_hang(self):
        plan = FaultPlan.parse("shard:kill@1; shard:hang@0")
        kill, hang = plan.faults
        assert kill.site == "shard" and kill.mode == "kill"
        assert kill.calls == (1,)
        assert hang.site == "shard" and hang.mode == "hang"
        assert hang.calls == (0,)

    def test_shard_faults_extraction(self):
        plan = FaultPlan.parse("shard:kill@1,3; shard:hang@0")
        assert shard_faults(plan) == {0: "hang", 1: "kill", 3: "kill"}

    def test_first_spec_wins_on_conflict(self):
        plan = FaultPlan.parse("shard:hang@2; shard:kill@2")
        assert shard_faults(plan) == {2: "hang"}

    def test_none_plan_and_non_shard_sites_ignored(self):
        assert shard_faults(None) == {}
        plan = FaultPlan.parse("oracle:raise@0")
        assert shard_faults(plan) == {}

    def test_kill_hang_are_shard_only(self):
        with pytest.raises(ValueError, match="shard-only"):
            Fault("oracle", "kill", calls=(0,))
        with pytest.raises(ValueError, match="shard-only"):
            Fault("swap", "hang", calls=(1,))


class TestServingFaultHelper:
    def test_none_plan_noop(self):
        raise_serving_fault(None)

    def test_raises_on_schedule(self):
        plan = FaultPlan([Fault("swap", "raise", calls=(1,))])
        raise_serving_fault(plan)  # call 0: clean
        with pytest.raises(ServingError, match="injected"):
            raise_serving_fault(plan)
