"""Chaos tests for checkpoint atomicity and consistency detection.

``loop.json`` is written last (atomically) and records a sha256 checksum
of every npz — a crash *between* the npz writes and the state write, or
any later corruption, must surface on resume as a
:class:`~repro.errors.CheckpointError` naming the inconsistent file,
never as a silent resume from mixed rounds.
"""

import pytest

from repro.active import ActiveFitLoop
from repro.errors import CheckpointError

from tests.active.conftest import sparse_oracle
from tests.active.test_loop import make_config


class CrashBetweenWrites(ActiveFitLoop):
    """Dies after the npz checkpoint writes, before ``loop.json``."""

    def __init__(self, *args, crash_on_checkpoint=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.crash_on_checkpoint = crash_on_checkpoint
        self._checkpoints = 0

    def _write_checkpoint_state(self, *args, **kwargs):
        self._checkpoints += 1
        if self._checkpoints == self.crash_on_checkpoint:
            raise RuntimeError("crashed between checkpoint writes")
        super()._write_checkpoint_state(*args, **kwargs)


class TestCrashBetweenWrites:
    def test_detected_on_resume_naming_file(self, tmp_path):
        """Acceptance: npz written, json not — resume must refuse."""
        config = make_config(checkpoint_dir=str(tmp_path))
        loop = CrashBetweenWrites(
            sparse_oracle(), config, crash_on_checkpoint=2
        )
        with pytest.raises(RuntimeError, match="between checkpoint"):
            loop.run()
        # Round 0's loop.json survived; round 1's npz files are newer.
        assert (tmp_path / "loop.json").exists()

        with pytest.raises(CheckpointError) as excinfo:
            ActiveFitLoop(sparse_oracle(), config).run(resume=True)
        assert excinfo.value.path is not None
        assert excinfo.value.path.endswith(".npz")
        assert excinfo.value.path in str(excinfo.value)


class TestCorruption:
    def _finished_checkpoint(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path))
        ActiveFitLoop(sparse_oracle(), config).run()
        return config

    @pytest.mark.parametrize("victim", ["data.npz", "arrays.npz"])
    def test_truncated_npz_detected(self, tmp_path, victim):
        config = self._finished_checkpoint(tmp_path)
        target = tmp_path / victim
        target.write_bytes(target.read_bytes()[:50])
        with pytest.raises(CheckpointError, match=victim):
            ActiveFitLoop(sparse_oracle(), config).run(resume=True)

    @pytest.mark.parametrize("victim", ["data.npz", "arrays.npz"])
    def test_missing_npz_detected(self, tmp_path, victim):
        config = self._finished_checkpoint(tmp_path)
        (tmp_path / victim).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            ActiveFitLoop(sparse_oracle(), config).run(resume=True)

    def test_checkpoint_error_is_catchable_as_repro_error(self, tmp_path):
        from repro.errors import ReproError

        config = self._finished_checkpoint(tmp_path)
        (tmp_path / "data.npz").unlink()
        with pytest.raises(ReproError):
            ActiveFitLoop(sparse_oracle(), config).run(resume=True)


class TestAtomicity:
    def test_no_stray_tmp_files(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path))
        ActiveFitLoop(sparse_oracle(), config).run()
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "arrays.npz", "data.npz", "loop.json",
        ]

    def test_checksums_recorded(self, tmp_path):
        import hashlib
        import json

        config = make_config(checkpoint_dir=str(tmp_path))
        ActiveFitLoop(sparse_oracle(), config).run()
        payload = json.loads((tmp_path / "loop.json").read_text())
        assert set(payload["checksums"]) == {"data.npz", "arrays.npz"}
        for name, expected in payload["checksums"].items():
            actual = hashlib.sha256(
                (tmp_path / name).read_bytes()
            ).hexdigest()
            assert actual == expected
