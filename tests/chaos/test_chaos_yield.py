"""Chaos tests for the cluster yield endpoint: kills and hot swaps.

Acceptance: a yield request caught by a shard kill fails only with the
structured error taxonomy and the endpoint recovers after respawn; a
hot swap changes the *served* yield atomically — because the per-state
sample streams are deterministic, every legitimate reply equals exactly
one version's vector, never a torn blend of two models.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.applications.yield_estimation import Specification
from repro.cluster import ClusterConfig, ClusterService
from repro.errors import (
    DeadlineError,
    ServingError,
    ShardCrashError,
    ShedError,
)
from repro.faults import FaultPlan
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry
from repro.yields import compute_yield_report

_TAXONOMY = (ShedError, DeadlineError, ShardCrashError)

# Tight enough that the SOMP and LS fits serve visibly different
# yield vectors (both saturate at 1.0 for looser bounds).
SPECS = [Specification("nf_db", 1.35, "max")]
N_SAMPLES = 120
SEED = 7


@pytest.fixture(scope="module")
def modelset_v1(lna_dataset) -> PerformanceModelSet:
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture(scope="module")
def modelset_v2(lna_dataset) -> PerformanceModelSet:
    """A genuinely different fit, so v1 and v2 serve different yields."""
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="ls", seed=0)


@pytest.fixture()
def registry(tmp_path, modelset_v1, modelset_v2) -> ModelRegistry:
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("lna", modelset_v1)
    registry.push("lna", modelset_v2)
    return registry


def expected_vector(modelset) -> np.ndarray:
    """The deterministic yield vector one version must serve."""
    report = compute_yield_report(
        modelset.freeze(),
        modelset.basis,
        SPECS,
        n_samples=N_SAMPLES,
        seed=SEED,
    )
    return report.yield_shrunk


class TestKillRespawn:
    def test_yield_endpoint_survives_shard_kill(
        self, registry, modelset_v1
    ):
        """kill@owner → taxonomy-only failures, then a correct answer
        from the respawned shard."""
        deadline = 10.0
        config = ClusterConfig(n_shards=2, default_deadline_s=deadline)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            first = cluster.yield_report(
                "lna", SPECS, n_samples=N_SAMPLES, seed=SEED
            )
            assert first["version"] == 1
            owner = cluster.describe_routes()["lna"]["shard"]
            applied = cluster.inject_faults(
                FaultPlan.parse(f"shard:kill@{owner}")
            )
            assert applied == {owner: "kill"}

            recovered = None
            failures = []
            for _ in range(30):
                started = time.monotonic()
                try:
                    recovered = cluster.yield_report(
                        "lna", SPECS, n_samples=N_SAMPLES, seed=SEED
                    )
                except ServingError as error:
                    failures.append(error)
                else:
                    break
                finally:
                    assert time.monotonic() - started < deadline + 2.0

            assert recovered is not None, (
                f"never recovered; failures: {failures}"
            )
            # Structured taxonomy only — no silent drops, no bare errors.
            assert all(isinstance(f, _TAXONOMY) for f in failures)
            assert cluster.metrics.total_respawns >= 1
            # The respawned shard serves the identical deterministic
            # vector — state was rebuilt from the store, not improvised.
            assert np.allclose(
                recovered["report"]["yield_shrunk"],
                expected_vector(modelset_v1),
                rtol=0,
                atol=1e-12,
            )

    def test_exhausted_respawn_budget_fails_fast(self, registry):
        config = ClusterConfig(
            n_shards=1, default_deadline_s=10.0, max_respawns=0
        )
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.yield_report("lna", SPECS, n_samples=50, seed=0)
            cluster.inject_faults(FaultPlan.parse("shard:kill@0"))
            with pytest.raises(ShardCrashError):
                for _ in range(10):
                    cluster.yield_report(
                        "lna", SPECS, n_samples=50, seed=0
                    )
                    time.sleep(0.1)


class TestHotSwapAtomicity:
    def test_every_reply_is_exactly_one_versions_vector(
        self, registry, modelset_v1, modelset_v2
    ):
        """Hammer the endpoint while swapping v1 → v2: every reply must
        match one version's deterministic vector bit-for-bit, and the
        advertised version must agree with the vector served."""
        v1_vector = expected_vector(modelset_v1)
        v2_vector = expected_vector(modelset_v2)
        assert not np.allclose(v1_vector, v2_vector, atol=1e-6), (
            "fixture bug: the two versions serve identical yields"
        )

        config = ClusterConfig(n_shards=1, default_deadline_s=30.0)
        replies = []
        errors = []
        stop = threading.Event()

        with ClusterService(registry, ["lna@v1"], config) as cluster:

            def hammer():
                while not stop.is_set():
                    try:
                        reply = cluster.yield_report(
                            "lna", SPECS, n_samples=N_SAMPLES, seed=SEED
                        )
                    except ServingError as error:
                        errors.append(error)
                    else:
                        replies.append(
                            (
                                reply["version"],
                                np.asarray(
                                    reply["report"]["yield_shrunk"]
                                ),
                            )
                        )

            worker = threading.Thread(target=hammer)
            worker.start()
            time.sleep(0.6)  # a run of v1 answers
            cluster.set_canary("lna", "lna@v2", 1.0)  # hot swap
            time.sleep(0.6)  # a run of v2 answers
            stop.set()
            worker.join(timeout=30.0)
            assert not worker.is_alive()

        assert not errors, f"chaos-free run must not error: {errors}"
        served_versions = {version for version, _ in replies}
        assert served_versions == {1, 2}, (
            f"expected answers from both versions, got {served_versions}"
        )
        by_version = {1: v1_vector, 2: v2_vector}
        for version, vector in replies:
            # Atomic: the reply matches its advertised version exactly —
            # a torn read would blend per-state streams of two models.
            assert np.allclose(
                vector, by_version[version], rtol=0, atol=1e-12
            )
        # Monotone cutover: once v2 answers, v1 never answers again.
        versions = [version for version, _ in replies]
        first_v2 = versions.index(2)
        assert all(v == 2 for v in versions[first_v2:])
