"""Chaos tests for the serving cluster: kills, hangs, sheds, canaries.

Acceptance: a killed shard is respawned and serving resumes; requests
caught by a crash fail with the structured error taxonomy (never a
silent drop, never a hang past the deadline); a hung shard burns its
deadline and the expiry is counted; admission control sheds loudly; and
canary weights 0 / 1 route exactly even while chaos is configured.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.errors import (
    DeadlineError,
    ServingError,
    ShardCrashError,
    ShedError,
)
from repro.faults import FaultPlan
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry

_TAXONOMY = (ShedError, DeadlineError, ShardCrashError)


@pytest.fixture(scope="module")
def modelset(lna_dataset) -> PerformanceModelSet:
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture()
def registry(tmp_path, modelset) -> ModelRegistry:
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("lna", modelset)
    registry.push("lna", modelset)
    return registry


def _x(modelset, rows=2):
    rng = np.random.default_rng(5)
    return rng.standard_normal((rows, modelset.basis.n_variables))


class TestKillRespawn:
    def test_killed_shard_respawns_and_serving_resumes(
        self, registry, modelset
    ):
        """Acceptance: shard:kill@owner → respawn, recovery, taxonomy-only
        failures, every call bounded by its deadline."""
        deadline = 10.0
        config = ClusterConfig(n_shards=2, default_deadline_s=deadline)
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.predict_many("lna", x, [0, 1])  # warm path
            owner = cluster.describe_routes()["lna"]["shard"]
            applied = cluster.inject_faults(
                FaultPlan.parse(f"shard:kill@{owner}")
            )
            assert applied == {owner: "kill"}

            recovered = False
            failures = []
            for _ in range(30):
                started = time.monotonic()
                try:
                    results = cluster.predict_many("lna", x, [0, 1])
                except ServingError as error:
                    failures.append(error)
                else:
                    recovered = True
                    direct = modelset.predict(x[:1], 0)
                    for metric, value in results[0].values.items():
                        assert abs(value - float(direct[metric][0])) <= 1e-15
                    break
                finally:
                    # Never hangs past the deadline (+ scheduling slack).
                    assert time.monotonic() - started < deadline + 2.0

            assert recovered, f"never recovered; failures: {failures}"
            assert cluster.metrics.total_respawns >= 1
            # Every failure is a structured taxonomy error, not a silent
            # drop or a bare exception.
            assert all(isinstance(f, _TAXONOMY) for f in failures)
            snapshot = cluster.metrics.snapshot()
            assert snapshot["shards"][owner]["respawns"] >= 1

    def test_in_flight_requests_fail_with_crash_error(
        self, registry, modelset
    ):
        """Deterministic crash-with-requests-in-flight: hang the shard so
        a request pends, then hard-kill the process."""
        config = ClusterConfig(
            n_shards=1, default_deadline_s=10.0, max_respawns=0
        )
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.predict_many("lna", x, [0, 0])
            cluster.inject_faults(FaultPlan.parse("shard:hang@0"))
            caught = {}

            def pending_call():
                started = time.monotonic()
                try:
                    cluster.predict_many("lna", x, [0, 0])
                except ServingError as error:
                    caught["error"] = error
                caught["elapsed"] = time.monotonic() - started

            worker = threading.Thread(target=pending_call)
            worker.start()
            time.sleep(0.5)  # let the request reach the hung shard
            cluster._shards[0].process.kill()
            worker.join(timeout=5.0)
            assert not worker.is_alive()
            assert isinstance(caught["error"], ShardCrashError)
            # Failed promptly on the crash, not by burning the deadline.
            assert caught["elapsed"] < 5.0
            assert cluster.metrics.snapshot()["shards"][0][
                "crash_failures"
            ] >= 2
            # Respawn budget 0: the shard stays down and later requests
            # fail fast with the same taxonomy error.
            with pytest.raises(ShardCrashError, match="respawn budget"):
                cluster.predict_many("lna", x, [0, 0])


class TestHangDeadline:
    def test_hung_shard_expires_deadline_and_counts_it(
        self, registry, modelset
    ):
        config = ClusterConfig(n_shards=1, default_deadline_s=30.0)
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.predict_many("lna", x, [0, 0])
            cluster.inject_faults(FaultPlan.parse("shard:hang@0"))
            started = time.monotonic()
            with pytest.raises(DeadlineError):
                cluster.predict_many("lna", x, [0, 0], deadline_s=0.5)
            assert time.monotonic() - started < 3.0
            assert cluster.metrics.total_deadline_expired >= 1
            snapshot = cluster.metrics.snapshot()
            assert snapshot["versions"]["lna@v1"]["deadline_expired"] >= 1


class TestAdmissionControl:
    def test_full_queue_sheds_loudly(self, registry, modelset):
        config = ClusterConfig(
            n_shards=1, max_queue_rows=8, default_deadline_s=30.0
        )
        x = _x(modelset, rows=8)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.predict_many("lna", _x(modelset), [0, 0])
            cluster.inject_faults(FaultPlan.parse("shard:hang@0"))

            def pending_call():
                with pytest.raises(DeadlineError):
                    cluster.predict_many(
                        "lna", x, [0] * 8, deadline_s=2.0
                    )

            worker = threading.Thread(target=pending_call)
            worker.start()
            time.sleep(0.5)  # 8 rows now in flight on the hung shard
            with pytest.raises(ShedError, match="shed"):
                cluster.predict_many("lna", x, [0] * 8)
            assert cluster.metrics.total_shed >= 8
            snapshot = cluster.metrics.snapshot()
            assert snapshot["shards"][0]["shed"] >= 8
            worker.join(timeout=10.0)
            assert not worker.is_alive()


class TestReplicaFailover:
    """R=2 replication: a killed or hung primary must not lose requests.

    Acceptance (ISSUE 10): with 4 shards and replication 2, killing the
    primary mid-hammer loses zero requests — every one is answered by a
    replica with results bit-identical to the healthy run — and
    post-respawn throughput recovers.
    """

    def test_kill_primary_mid_hammer_loses_zero_requests(
        self, registry, modelset
    ):
        config = ClusterConfig(
            n_shards=4, replication=2, default_deadline_s=15.0
        )
        x = _x(modelset, rows=3)
        states = [0, 1, 2]
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            healthy = cluster.predict_many("lna", x, states)
            replicas = cluster.describe_routes()["lna"]["replicas"]
            assert len(replicas) == 2
            primary = replicas[0]

            answers = []
            for i in range(40):
                if i == 5:
                    applied = cluster.inject_faults(
                        FaultPlan.parse(f"shard:kill@{primary}")
                    )
                    assert applied == {primary: "kill"}
                # Zero ShardCrashError (or any other) escapes: the
                # failover path must absorb the primary's death.
                answers.append(cluster.predict_many("lna", x, states))

            for results in answers:
                for row, result in enumerate(results):
                    assert result.values == healthy[row].values
            assert cluster.metrics.total_failovers >= 1
            snapshot = cluster.metrics.snapshot()
            assert snapshot["versions"]["lna@v1"]["failovers"] >= 1

            # Post-respawn recovery: the primary comes back and the
            # fleet serves normally again.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if cluster._shards[primary].alive:
                    break
                time.sleep(0.1)
            assert cluster._shards[primary].alive
            assert cluster.metrics.total_respawns >= 1
            recovered = cluster.predict_many("lna", x, states)
            for row, result in enumerate(recovered):
                assert result.values == healthy[row].values

    def test_hung_primary_fails_over_within_budget(
        self, registry, modelset
    ):
        """A hung (not dead) primary burns only its per-attempt slice;
        the replica answers inside the overall deadline."""
        config = ClusterConfig(
            n_shards=2, replication=2, default_deadline_s=30.0
        )
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            healthy = cluster.predict_many("lna", x, [0, 1])
            primary = cluster.describe_routes()["lna"]["replicas"][0]
            cluster.inject_faults(FaultPlan.parse(f"shard:hang@{primary}"))
            started = time.monotonic()
            results = cluster.predict_many(
                "lna", x, [0, 1], deadline_s=6.0
            )
            elapsed = time.monotonic() - started
            assert elapsed < 6.0
            for row, result in enumerate(results):
                assert result.values == healthy[row].values
            assert cluster.metrics.total_failovers >= 1
            # The abandoned attempt is still counted as an expiry on
            # the hung primary's lane.
            snapshot = cluster.metrics.snapshot()
            assert snapshot["shards"][primary]["deadline_expired"] >= 1

    def test_yield_fails_over_to_replica(self, registry, modelset):
        config = ClusterConfig(
            n_shards=2, replication=2, default_deadline_s=20.0
        )
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            healthy = cluster.yield_report(
                "lna", ["nf_db<=1.6"], n_samples=50, seed=5
            )
            primary = cluster.describe_routes()["lna"]["replicas"][0]
            cluster.inject_faults(
                FaultPlan.parse(f"shard:kill@{primary}")
            )
            over_failover = cluster.yield_report(
                "lna", ["nf_db<=1.6"], n_samples=50, seed=5
            )
            assert over_failover["report"] == healthy["report"]

    def test_every_replica_dead_forever_raises_crash(
        self, registry, modelset
    ):
        config = ClusterConfig(
            n_shards=2,
            replication=2,
            default_deadline_s=10.0,
            max_respawns=0,
        )
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.predict_many("lna", x, [0, 0])
            cluster.inject_faults(
                FaultPlan.parse("shard:kill@0;shard:kill@1")
            )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not all(
                h.dead_forever for h in cluster._shards
            ):
                time.sleep(0.1)
            with pytest.raises(ShardCrashError, match="every replica"):
                cluster.predict_many("lna", x, [0, 0])


class TestCanaryEdgeWeights:
    def test_weights_zero_and_one_route_exactly(self, registry, modelset):
        """20 calls at weight 0 all hit stable; 20 at weight 1 all hit
        the canary — the fractional accumulator has exact edges."""
        config = ClusterConfig(n_shards=1)
        x = _x(modelset)
        with ClusterService(registry, ["lna@v1"], config) as cluster:
            cluster.set_canary("lna", "lna@v2", 0.0)
            versions = [
                cluster.predict("lna", x[0], 0).version for _ in range(20)
            ]
            assert versions == [1] * 20
            cluster.set_canary("lna", "lna@v2", 1.0)
            versions = [
                cluster.predict("lna", x[0], 0).version for _ in range(20)
            ]
            assert versions == [2] * 20
