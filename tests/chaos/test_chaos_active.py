"""Chaos tests for the active fit loop's retry/quarantine layer.

The headline guarantee: a transient oracle fault that the retry budget
absorbs leaves the run **bit-identical** to a fault-free run — same
model, same history (modulo wall clock), same ledger — because retries
re-simulate the same points through a pure oracle and never touch the
loop's random stream.
"""

import numpy as np
import pytest

from repro.active import ActiveFitLoop
from repro.errors import NumericalError, SimulationError
from repro.faults import Fault, FaultPlan, FaultyOracle

from tests.active.conftest import sparse_oracle
from tests.active.test_loop import make_config, strip_walltime


class TestRetryRecovery:
    def test_transient_raise_is_bit_identical_to_no_fault(self):
        """Acceptance: one oracle failure per round, retried, no trace."""
        reference = ActiveFitLoop(sparse_oracle(), make_config()).run()

        # every=2 fires on call indices 0, 2, 4, ... — the retry of a
        # failed call lands on an odd index and succeeds, so every fault
        # is absorbed within one retry.
        plan = FaultPlan([Fault("oracle", "raise", every=2)])
        faulty = FaultyOracle(sparse_oracle(), plan)
        result = ActiveFitLoop(faulty, make_config()).run()

        assert strip_walltime(result.history) == strip_walltime(
            reference.history
        )
        assert np.array_equal(result.model.coef_, reference.model.coef_)
        assert result.ledger == reference.ledger
        assert result.holdout_rmse == reference.holdout_rmse
        assert result.history.total_quarantined == 0
        assert plan.calls("oracle") > 0  # faults really fired

    def test_transient_raise_on_specific_calls(self):
        reference = ActiveFitLoop(sparse_oracle(), make_config()).run()
        plan = FaultPlan([Fault("oracle", "raise", calls=(1, 4, 7))])
        result = ActiveFitLoop(
            FaultyOracle(sparse_oracle(), plan), make_config()
        ).run()
        assert strip_walltime(result.history) == strip_walltime(
            reference.history
        )
        assert np.array_equal(result.model.coef_, reference.model.coef_)


class TestQuarantine:
    def test_persistent_nan_quarantines_and_completes(self):
        """NaN on every call exhausts the budget; the loop still finishes."""
        plan = FaultPlan([Fault("oracle", "nan", every=1)], seed=5)
        result = ActiveFitLoop(
            FaultyOracle(sparse_oracle(), plan), make_config()
        ).run()
        assert result.history.total_quarantined > 0
        assert np.isfinite(result.holdout_rmse)
        # Quarantined rows never enter the dataset.
        assert result.dataset.n_samples_total < result.ledger.total
        # The history serializes and round-trips the quarantine counts.
        from repro.active.history import FitHistory

        clone = FitHistory.from_dict(result.history.to_dict())
        assert clone.total_quarantined == result.history.total_quarantined

    def test_unrecoverable_init_raises_simulation_error(self):
        """An oracle that always fails cannot seed the loop."""
        plan = FaultPlan([Fault("oracle", "raise", every=1)])
        loop = ActiveFitLoop(
            FaultyOracle(sparse_oracle(), plan), make_config()
        )
        with pytest.raises(SimulationError, match="initial sampling"):
            loop.run()

    def test_zero_retries_quarantines_immediately(self):
        plan = FaultPlan([Fault("oracle", "nan", every=1)], seed=9)
        result = ActiveFitLoop(
            FaultyOracle(sparse_oracle(), plan),
            make_config(max_retries=0),
        ).run()
        assert result.history.total_quarantined > 0

    def test_keyboard_interrupt_not_absorbed(self):
        """Interrupts must cross the retry layer untouched."""
        oracle = sparse_oracle()
        calls = {"n": 0}
        original = oracle.observe

        def observe(x, state):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt("killed")
            return original(x, state)

        oracle.observe = observe
        with pytest.raises(KeyboardInterrupt):
            ActiveFitLoop(oracle, make_config()).run()
        assert calls["n"] == 4  # no retry consumed the interrupt


class TestDegradationVisibility:
    def _fitted_model(self):
        oracle = sparse_oracle()
        from repro.basis.polynomial import LinearBasis
        from repro.core.cbmf import CBMF

        basis = LinearBasis(oracle.n_variables)
        rng = np.random.default_rng(0)
        designs, targets = [], []
        for k in range(oracle.n_states):
            x = rng.standard_normal((12, oracle.n_variables))
            designs.append(basis.expand(x))
            targets.append(oracle.observe(x, k))
        return CBMF(seed=0).fit(designs, targets), basis, oracle

    def test_correlation_strategy_records_uniform_fallback(self):
        """A numerics failure degrades to uniform allocation, visibly."""
        from repro.evaluation.methods import make_acquisition

        model, basis, oracle = self._fitted_model()

        def broken_predict_std(design, state):
            raise NumericalError("injected breakdown")

        model.predict_std = broken_predict_std
        strategy = make_acquisition("correlation")
        rng = np.random.default_rng(1)
        candidates = [
            rng.standard_normal((16, oracle.n_variables))
            for _ in range(oracle.n_states)
        ]
        picks = strategy.select(model, basis, candidates, 4, rng)
        assert sum(len(p) for p in picks) == 4
        assert strategy.last_degraded
        assert any(
            "uniform_allocation" in marker
            for marker in strategy.last_degraded
        )

    def test_degraded_markers_render_in_history(self):
        from repro.active.history import FitHistory, RoundRecord
        from repro.evaluation.report import format_active_history

        history = FitHistory(strategy="correlation", metric="gain_db")
        history.append(
            RoundRecord(
                round_index=0,
                n_samples_total=12,
                n_samples_per_state=(6, 6),
                n_added_per_state=(2, 2),
                holdout_rmse=0.5,
                best_rmse=0.5,
                noise_std=0.05,
                refit="cold",
                wall_seconds=0.1,
                n_quarantined=3,
                degraded=("uniform_allocation:injected",),
            )
        )
        table = format_active_history(history)
        assert "degraded: uniform_allocation:injected" in table
        assert "quarantined: 3" in table
        assert "quar" in table.splitlines()[1]
