"""Chaos tests: deterministic fault injection against the fit/serve paths."""
