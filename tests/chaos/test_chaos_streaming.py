"""Chaos tests for the streaming path: poisoned batches vs serving.

The contract under fault injection: a faulty batch (NaN-poisoned or
raising) is quarantined without touching the posterior, the registry or
the serving plane — and the served model keeps answering finite numbers
throughout. The ``FaultPlan`` schedule is deterministic, so the tests
assert exact quarantine counts, not statistical ones.
"""

import numpy as np
import pytest

from repro.active.oracle import SyntheticOracle
from repro.core.cbmf import CBMF
from repro.errors import ServingError
from repro.faults import Fault, FaultPlan, apply_stream_fault
from repro.serving import ModelRegistry, ModelService
from repro.streaming import (
    OnlineCBMF,
    OracleStream,
    StreamingConfig,
    StreamingService,
)

N_STATES = 3
N_VARIABLES = 5
METRIC = "gain"


@pytest.fixture(scope="module")
def oracle() -> SyntheticOracle:
    coef = np.zeros((N_STATES, N_VARIABLES + 1))
    coef[:, 0] = 1.5
    coef[:, 3] = 1.0
    return SyntheticOracle(coef, noise_std=0.05, metric=METRIC)


@pytest.fixture(scope="module")
def fitted(oracle) -> CBMF:
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal((20, N_VARIABLES)) for _ in range(N_STATES)
    ]
    targets = [oracle.observe(x, k) for k, x in enumerate(inputs)]
    return CBMF(seed=1).fit(oracle.basis.expand_states(inputs), targets)


def run_stream(fitted, oracle, registry, plan, n_batches=8, **config):
    online = OnlineCBMF.from_cbmf(fitted, basis=oracle.basis, metric=METRIC)
    serving = ModelService(registry)
    service = StreamingService(
        online,
        registry,
        StreamingConfig(name="chaos", fault_plan=plan, **config),
        serving=serving,
    )
    stream = OracleStream(oracle, n_batches=n_batches, batch_size=5, seed=9)
    report = service.run(stream)
    return service, serving, report


class TestStreamFaults:
    def test_nan_batch_quarantined_model_keeps_serving(
        self, fitted, oracle, tmp_path
    ):
        """Acceptance: a NaN-poisoned batch is dropped; predictions from
        the served model are finite before, during and after."""
        registry = ModelRegistry(tmp_path / "registry")
        plan = FaultPlan.parse("stream:nan@2", seed=0)
        service, serving, report = run_stream(
            fitted, oracle, registry, plan
        )
        assert report.quarantined == 1
        assert report.absorbed == 7
        poisoned = report.records[2]
        assert poisoned.action == "quarantined"
        assert "non-finite" in poisoned.error
        # The poisoned batch never contaminated the posterior...
        assert np.all(np.isfinite(service.online.coef_))
        # ...nor the registry lineage (initial + 7 absorbs).
        assert registry.versions("chaos") == list(range(1, 9))
        # ...and the served model answers finite values at every state.
        rng = np.random.default_rng(1)
        for state in range(N_STATES):
            result = serving.predict(
                "chaos", rng.standard_normal(N_VARIABLES), state
            )
            assert np.isfinite(result.values[METRIC])

    def test_periodic_nan_faults(self, fitted, oracle, tmp_path):
        """``stream:nan@*3`` poisons every 3rd batch — exact schedule."""
        registry = ModelRegistry(tmp_path / "registry")
        plan = FaultPlan.parse("stream:nan@*3", seed=7)
        service, serving, report = run_stream(
            fitted, oracle, registry, plan, n_batches=9
        )
        assert report.quarantined == 3  # batches 0, 3, 6
        assert [
            r.index for r in report.records if r.action == "quarantined"
        ] == [0, 3, 6]
        assert np.all(np.isfinite(service.online.coef_))

    def test_raise_fault_quarantines_batch(self, fitted, oracle, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        plan = FaultPlan.parse("stream:raise@1,4", seed=0)
        service, serving, report = run_stream(
            fitted, oracle, registry, plan
        )
        assert report.quarantined == 2
        assert all(
            "injected fault" in r.error
            for r in report.records
            if r.action == "quarantined"
        )
        assert serving.served_model("chaos").version == 7  # 1 + 6 absorbs

    def test_swap_fault_keeps_previous_version_serving(
        self, fitted, oracle, tmp_path
    ):
        """A failing hot swap mid-stream falls back (PR 4 contract) and
        the stream keeps going; the next healthy swap catches up."""
        registry = ModelRegistry(tmp_path / "registry")
        plan = FaultPlan(
            [Fault(site="swap", mode="raise", calls=(2,))], seed=0
        )
        online = OnlineCBMF.from_cbmf(
            fitted, basis=oracle.basis, metric=METRIC
        )
        serving = ModelService(registry)
        service = StreamingService(
            online,
            registry,
            StreamingConfig(name="chaos"),
            serving=serving,
        )
        # Route the plan through the serving side: monkey-wire by giving
        # the service a swap that fires the plan.
        original_swap = serving.swap
        serving.swap = lambda key, **kw: original_swap(
            key, fault_plan=plan, **kw
        )
        stream = OracleStream(oracle, n_batches=5, batch_size=5, seed=9)
        report = service.run(stream)

        swaps = [r.swap for r in report.records]
        assert swaps.count("failed") == 1
        assert swaps.count("ok") == 4
        assert not report.aborted
        # The final healthy swap caught serving back up to the newest.
        assert serving.served_model("chaos").version == 6
        metrics = service.metrics.snapshot()
        assert metrics["swap_failures"] == 1


class TestApplyStreamFault:
    def test_none_plan_passthrough(self):
        values = np.arange(4.0)
        assert apply_stream_fault(None, values) is values

    def test_nan_poisons_one_deterministic_row(self):
        plan = FaultPlan.parse("stream:nan@0", seed=3)
        poisoned = apply_stream_fault(plan, np.zeros(6))
        assert np.isnan(poisoned).sum() == 1
        plan2 = FaultPlan.parse("stream:nan@0", seed=3)
        poisoned2 = apply_stream_fault(plan2, np.zeros(6))
        np.testing.assert_array_equal(
            np.isnan(poisoned), np.isnan(poisoned2)
        )

    def test_raise_mode(self):
        from repro.errors import SimulationError

        plan = FaultPlan.parse("stream:raise@0", seed=0)
        with pytest.raises(SimulationError, match="injected"):
            apply_stream_fault(plan, np.zeros(3))

    def test_off_schedule_calls_clean(self):
        plan = FaultPlan.parse("stream:raise@5", seed=0)
        values = np.ones(3)
        for _ in range(5):  # calls 0..4 are clean
            out = apply_stream_fault(plan, values)
            np.testing.assert_array_equal(out, values)
