"""Chaos tests for hot-swap failure fallback in the model service.

A swap that cannot build its replacement — corrupt artifact or injected
fault — must leave the previous version serving, count the failure in
``ServingMetrics``, and surface as a :class:`~repro.errors.ServingError`.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.faults import FaultPlan
from repro.modelset import PerformanceModelSet
from repro.serving import ModelRegistry, ModelService, RegistryError


@pytest.fixture(scope="module")
def modelset(lna_dataset) -> PerformanceModelSet:
    train, _ = lna_dataset.split(25)
    return PerformanceModelSet.fit_dataset(train, method="somp", seed=0)


@pytest.fixture()
def registry(tmp_path, modelset) -> ModelRegistry:
    """A registry holding lna@v1 and lna@v2."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("lna", modelset)
    registry.push("lna", modelset)
    return registry


def _corrupt_entry(registry, key):
    """Flip bytes in one artifact file so checksum verification fails."""
    entry = registry.entry(key)
    for candidate in sorted(entry.path.glob("*.npz")):
        candidate.write_bytes(b"garbage" + candidate.read_bytes()[7:])
        return candidate
    raise AssertionError(f"no npz artifact under {entry.path}")


class TestFailedSwapFallback:
    def test_corrupt_swap_keeps_previous_version(self, registry, lna_dataset):
        """Acceptance: failed hot swap → v1 still serving, failure counted."""
        service = ModelService(registry)
        service.load("lna@v1")
        _corrupt_entry(registry, "lna@v2")

        with pytest.raises(ServingError, match="still serving"):
            service.swap("lna@v2")

        assert service.served_model("lna").version == 1
        x = np.zeros(lna_dataset.n_variables)
        assert service.predict("lna", x, 0).version == 1
        assert service.metrics.swap_failures == 1
        snapshot = service.metrics.snapshot()
        assert snapshot["swap_failures"] == 1
        assert snapshot["hot_swaps"] == 0

    def test_first_load_failure_reraises_original(self, registry):
        """No previous version → nothing to fall back to."""
        service = ModelService(registry)
        _corrupt_entry(registry, "lna@v2")
        with pytest.raises(RegistryError):
            service.load("lna@v2")
        assert service.serving == []
        assert service.metrics.swap_failures == 0

    def test_serving_error_chains_cause(self, registry):
        service = ModelService(registry)
        service.load("lna@v1")
        _corrupt_entry(registry, "lna@v2")
        with pytest.raises(ServingError) as excinfo:
            service.swap("lna@v2")
        assert isinstance(excinfo.value.__cause__, Exception)


class TestInjectedSwapFault:
    def test_fault_plan_fires_then_swap_succeeds(self, registry, lna_dataset):
        service = ModelService(registry)
        service.load("lna@v1")
        plan = FaultPlan.parse("swap:raise@0")

        with pytest.raises(ServingError, match="injected fault"):
            service.swap("lna@v2", fault_plan=plan)
        assert service.served_model("lna").version == 1
        assert service.metrics.swap_failures == 1

        # Call 1 is not scheduled: the same plan now lets the swap pass.
        service.swap("lna@v2", fault_plan=plan)
        assert service.served_model("lna").version == 2
        x = np.zeros(lna_dataset.n_variables)
        assert service.predict("lna", x, 0).version == 2
        assert service.metrics.snapshot()["hot_swaps"] == 1
