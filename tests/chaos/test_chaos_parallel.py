"""Chaos tests for worker-crash and stalled-task recovery in parallel_map.

A killed pool worker (hard ``os._exit``) breaks the executor, not the
map: unanswered tasks are recomputed inline, so the result list is
complete and — cells being pure functions — bit-identical to an
undisturbed run. A stalled task is bounded by ``task_timeout`` and
recovered the same way.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core.somp_init import InitConfig, somp_initialize
from repro.faults import worker_crash_flag
from repro.utils.parallel import (
    derive_seeds,
    parallel_map,
    resolve_task_timeout,
)


# Cells must be module-level to pickle under the spawn start method.
def _square(x):
    return x * x


def _draw(seed_seq, payload):
    rng = np.random.default_rng(seed_seq)
    return float(rng.standard_normal())


def _stall_in_worker(x):
    """Fast inline, but parks forever inside a pool worker."""
    if multiprocessing.parent_process() is not None:
        time.sleep(600.0)
    return x + 1


def _cv_problem(seed=0, n_states=3, n=24, n_basis=10):
    rng = np.random.default_rng(seed)
    coef = np.zeros((n_states, n_basis))
    coef[:, :3] = rng.standard_normal((n_states, 3))
    designs, targets = [], []
    for k in range(n_states):
        design = rng.standard_normal((n, n_basis))
        design[:, 0] = 1.0
        designs.append(design)
        targets.append(design @ coef[k] + 0.05 * rng.standard_normal(n))
    return designs, targets


class TestWorkerCrash:
    def test_crashed_worker_results_bit_identical(self, tmp_path):
        items = list(range(12))
        expected = [x * x for x in items]
        with worker_crash_flag(tmp_path) as flag:
            out = parallel_map(_square, items, max_workers=2)
            assert flag.consumed  # one worker really died
        assert out == expected

    def test_crash_with_seeded_cells(self, tmp_path):
        seeds = derive_seeds(11, 8)
        serial = parallel_map(_draw, seeds, shared={}, max_workers=1)
        with worker_crash_flag(tmp_path) as flag:
            pooled = parallel_map(
                _draw, derive_seeds(11, 8), shared={}, max_workers=2
            )
            assert flag.consumed
        assert pooled == serial

    def test_somp_cv_unchanged_by_worker_crash(self, tmp_path, monkeypatch):
        """Acceptance: a killed CV worker cannot change the chosen seed."""
        designs, targets = _cv_problem()
        config = InitConfig(
            r0_grid=(0.0, 0.9), sigma0_grid=(0.1, 1.0),
            n_basis_grid=(3, 6), n_folds=3,
        )
        serial = somp_initialize(designs, targets, config, seed=7)
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        with worker_crash_flag(tmp_path) as flag:
            crashed = somp_initialize(designs, targets, config, seed=7)
            assert flag.consumed
        assert crashed.r0 == serial.r0
        assert crashed.sigma0 == serial.sigma0
        assert crashed.n_basis == serial.n_basis
        assert crashed.support == serial.support
        assert crashed.noise_var == serial.noise_var
        assert crashed.cv_errors == serial.cv_errors

    def test_flag_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_WORKER_CRASH", raising=False)
        import os

        with worker_crash_flag(tmp_path):
            assert os.environ["REPRO_FAULT_WORKER_CRASH"]
        assert "REPRO_FAULT_WORKER_CRASH" not in os.environ


class TestStalledTask:
    def test_stalled_worker_recovered_inline(self):
        items = [1, 2, 3]
        out = parallel_map(
            _stall_in_worker, items, max_workers=2, task_timeout=0.75
        )
        assert out == [2, 3, 4]

    def test_env_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.75")
        out = parallel_map(_stall_in_worker, [5], max_workers=2)
        assert out == [6]


class TestResolveTaskTimeout:
    def test_default_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert resolve_task_timeout() is None

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert resolve_task_timeout() == 2.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert resolve_task_timeout(1.0) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="task_timeout"):
            resolve_task_timeout(0.0)
