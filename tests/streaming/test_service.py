"""StreamingService end to end: publish, swap, drift-refit, quarantine.

Includes the issue's acceptance experiment: a drift-injected stream must
trigger at least one refit and end with lower held-out RMSE than a
never-refit incremental baseline absorbing the same batches.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.serving.registry import ModelRegistry
from repro.serving.service import ModelService
from repro.streaming import (
    DriftConfig,
    OnlineCBMF,
    OracleStream,
    ShiftedOracle,
    StreamingConfig,
    StreamingMetrics,
    StreamingService,
)


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def test_clean_stream_publishes_and_swaps(
    online, registry, stream_oracle
):
    serving = ModelService(registry)
    metrics = StreamingMetrics()
    service = StreamingService(
        online, registry, StreamingConfig(name="clean"),
        serving=serving, metrics=metrics,
    )
    stream = OracleStream(stream_oracle, n_batches=6, batch_size=5, seed=2)
    report = service.run(stream)

    assert report.absorbed == 6
    assert report.quarantined == 0
    assert not report.aborted
    # initial push is v1; six per-batch pushes follow.
    assert registry.versions("clean") == list(range(1, 8))
    assert report.final_key == "clean@v7"
    assert serving.served_model("clean").version == 7
    snapshot = metrics.snapshot()
    assert snapshot["batches_absorbed"] == 6
    assert snapshot["pushes"] == 7
    assert snapshot["swaps"] == 6
    assert snapshot["p50_absorb_ms"] is not None
    # Each published version's manifest records its stream provenance.
    manifest = registry.entry("clean@v7").manifest
    assert manifest["streaming"]["rows"] == online.n_rows
    # The served model answers finite values.
    rng = np.random.default_rng(0)
    result = serving.predict(
        "clean", rng.standard_normal(stream_oracle.n_variables), 1
    )
    assert np.isfinite(result.values[online.metric])


def test_push_every_batches_publications(online, registry, stream_oracle):
    service = StreamingService(
        online, registry, StreamingConfig(name="sparse", push_every=3)
    )
    stream = OracleStream(stream_oracle, n_batches=7, batch_size=4, seed=5)
    report = service.run(stream)
    # v1 initial + pushes after batches 3 and 6 (batch 7 stays pending).
    assert registry.versions("sparse") == [1, 2, 3]
    assert report.absorbed == 7
    pushed = [r.pushed_key for r in report.records if r.pushed_key]
    assert pushed == ["sparse@v2", "sparse@v3"]


def test_serving_optional(online, registry, stream_oracle):
    """Publish-only mode: no ModelService, still versions the stream."""
    service = StreamingService(
        online, registry, StreamingConfig(name="pub")
    )
    report = service.run(
        OracleStream(stream_oracle, n_batches=3, batch_size=4, seed=1)
    )
    assert report.absorbed == 3
    assert registry.versions("pub") == [1, 2, 3, 4]
    assert all(
        r.swap == "skipped" for r in report.records if r.pushed_key
    )


def test_drift_triggers_refit_and_beats_frozen_baseline(
    stream_oracle, fitted_cbmf, registry
):
    """The issue's acceptance bar: ≥1 refit and lower post-drift RMSE
    than the never-refit incremental baseline on the same batches."""
    def run(with_drift_monitor):
        oracle = ShiftedOracle(stream_oracle, shift=4.0, after_calls=5)
        stream = OracleStream(
            oracle, n_batches=14, batch_size=8, seed=17
        )
        online = OnlineCBMF.from_cbmf(
            fitted_cbmf, basis=stream_oracle.basis, metric="gain"
        )
        drift = (
            DriftConfig(threshold=3.0, warmup_batches=1)
            if with_drift_monitor
            # A threshold no stream reaches => the frozen baseline.
            else DriftConfig(threshold=1e12, hard_threshold=1e12)
        )
        service = StreamingService(
            online, registry,
            StreamingConfig(
                name="drift" if with_drift_monitor else "frozen",
                drift=drift,
                refit_window=4,
            ),
        )
        report = service.run(stream)
        # Hold out fresh points from the *post-drift* regime.
        rng = np.random.default_rng(99)
        errors = []
        for state in range(stream_oracle.n_states):
            xq = rng.standard_normal((60, stream_oracle.n_variables))
            truth = oracle.truth(xq, state)
            pred = service.online.predict(xq, state)
            errors.append(np.mean((pred - truth) ** 2))
        return report, float(np.sqrt(np.mean(errors)))

    refit_report, refit_rmse = run(with_drift_monitor=True)
    frozen_report, frozen_rmse = run(with_drift_monitor=False)

    assert refit_report.refits >= 1
    assert frozen_report.refits == 0
    assert refit_rmse < frozen_rmse
    assert any(r.drifted for r in refit_report.records)
    refit_records = [r for r in refit_report.records if r.refit]
    assert refit_records and all(
        r.pushed_key is not None for r in refit_records
    )


def test_consecutive_failure_abort(online, registry, stream_oracle):
    class DeadIterator:
        """A source whose every batch raises — a dead testbench."""

        def __iter__(self):
            return self

        def __next__(self):
            raise SimulationError("testbench down")

    service = StreamingService(
        online, registry,
        StreamingConfig(name="dead", max_consecutive_failures=3),
    )
    with pytest.raises(SimulationError, match="3 consecutive"):
        service.run(DeadIterator())
    # Nothing beyond the initial version was ever published.
    assert registry.versions("dead") == [1]


def test_sporadic_failures_reset_the_abort_counter(
    online, registry, stream_oracle
):
    from repro.faults import FaultPlan, FaultyOracle

    plan = FaultPlan.parse("oracle:raise@1,3", seed=0)
    faulty = FaultyOracle(stream_oracle, plan)
    service = StreamingService(
        online, registry,
        StreamingConfig(name="sporadic", max_consecutive_failures=2),
    )
    stream = OracleStream(faulty, n_batches=6, batch_size=4, seed=3)
    report = service.run(stream)
    assert not report.aborted
    assert report.quarantined == 2
    assert report.absorbed == 4
