"""Shared streaming fixtures: one fitted model over a synthetic oracle.

The C-BMF fit is the expensive piece, so it is session-scoped; tests
that mutate state build a fresh :class:`OnlineCBMF` from it (the
constructor deep-copies the predictor, so the fit is never disturbed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.active.oracle import SyntheticOracle
from repro.core.cbmf import CBMF
from repro.streaming import OnlineCBMF

N_STATES = 3
N_VARIABLES = 5
SEED_ROWS = 20
METRIC = "gain"


@pytest.fixture(scope="session")
def stream_oracle() -> SyntheticOracle:
    """A sparse linear ground truth with mild observation noise."""
    coef = np.zeros((N_STATES, N_VARIABLES + 1))
    coef[:, 0] = 2.0
    coef[:, 2] = np.linspace(1.0, 1.5, N_STATES)
    coef[:, 4] = -0.8
    return SyntheticOracle(coef, noise_std=0.05, metric=METRIC)


@pytest.fixture(scope="session")
def fitted_cbmf(stream_oracle) -> CBMF:
    """One C-BMF fit on a seed pool drawn from the oracle."""
    rng = np.random.default_rng(0)
    inputs = [
        rng.standard_normal((SEED_ROWS, N_VARIABLES))
        for _ in range(N_STATES)
    ]
    targets = [
        stream_oracle.observe(x, k) for k, x in enumerate(inputs)
    ]
    designs = stream_oracle.basis.expand_states(inputs)
    return CBMF(seed=1).fit(designs, targets)


@pytest.fixture
def online(stream_oracle, fitted_cbmf) -> OnlineCBMF:
    """A fresh updater per test (absorbs must not leak across tests)."""
    return OnlineCBMF.from_cbmf(
        fitted_cbmf, basis=stream_oracle.basis, metric=METRIC
    )
