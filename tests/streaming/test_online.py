"""OnlineCBMF: absorb parity, unit handling, coefficient export, refits.

The acceptance bar from the issue: after absorbing batches, the online
model's predictive mean/std must match a *fixed-hyper-parameter batch
rebuild* on the same rows to 1e-8.
"""

import numpy as np
import pytest

from repro.core.cbmf import CBMF
from repro.core.predictive import PosteriorPredictor
from repro.streaming import OnlineCBMF

RTOL = 1e-8


def absorb_some(online, oracle, rng, plan=((0, 6), (2, 4), (1, 5), (0, 3))):
    for state, size in plan:
        x = rng.standard_normal((size, oracle.n_variables))
        online.absorb(x, oracle.observe(x, state), state)
    return online


def batch_rebuild(online):
    """A PosteriorPredictor built from scratch on the online model's rows
    at the same frozen hyper-parameters — the issue's parity reference."""
    phi, y, state_of_row = online._predictor.training_rows()
    designs = [phi[state_of_row == k] for k in range(online.n_states)]
    targets = [y[state_of_row == k] for k in range(online.n_states)]
    return PosteriorPredictor(
        designs, targets,
        online._predictor.prior, online._predictor.noise_var,
    )


def test_absorb_matches_batch_rebuild(online, stream_oracle):
    """Predictive mean/std parity <= 1e-8 vs the fixed-hp batch refit."""
    rng = np.random.default_rng(42)
    absorb_some(online, stream_oracle, rng)
    fresh = batch_rebuild(online)
    xq = rng.standard_normal((40, stream_oracle.n_variables))
    dq = stream_oracle.basis.expand(xq)
    for state in range(online.n_states):
        np.testing.assert_allclose(
            online._predictor.predict_mean(dq, state),
            fresh.predict_mean(dq, state),
            rtol=RTOL, atol=RTOL,
        )
        np.testing.assert_allclose(
            online._predictor.predict_std(dq, state, include_noise=True),
            fresh.predict_std(dq, state, include_noise=True),
            rtol=RTOL, atol=RTOL,
        )


def test_many_small_batches_match_one_batch(
    stream_oracle, fitted_cbmf
):
    """Absorbing row-by-row equals absorbing everything at once."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((12, stream_oracle.n_variables))
    y = stream_oracle.observe(x, 1)

    bulk = OnlineCBMF.from_cbmf(fitted_cbmf, basis=stream_oracle.basis)
    bulk.absorb(x, y, 1)
    trickle = OnlineCBMF.from_cbmf(fitted_cbmf, basis=stream_oracle.basis)
    for i in range(12):
        trickle.absorb(x[i : i + 1], y[i : i + 1], 1)
    assert trickle.n_absorbed_batches == 12
    assert trickle.n_absorbed_rows == bulk.n_absorbed_rows == 12

    xq = rng.standard_normal((25, stream_oracle.n_variables))
    for state in range(bulk.n_states):
        np.testing.assert_allclose(
            bulk.predict(xq, state), trickle.predict(xq, state),
            rtol=RTOL, atol=RTOL,
        )
        np.testing.assert_allclose(
            bulk.predict_std(xq, state), trickle.predict_std(xq, state),
            rtol=RTOL, atol=RTOL,
        )


def test_source_model_untouched(stream_oracle, fitted_cbmf):
    """Absorbing into the online copy must not mutate the fitted CBMF."""
    before_coef = fitted_cbmf.coef_.copy()
    before_rows = fitted_cbmf.predictor.n_rows
    online = OnlineCBMF.from_cbmf(fitted_cbmf, basis=stream_oracle.basis)
    rng = np.random.default_rng(3)
    absorb_some(online, stream_oracle, rng)
    assert fitted_cbmf.predictor.n_rows == before_rows
    np.testing.assert_array_equal(fitted_cbmf.coef_, before_coef)
    assert online.n_rows > before_rows


def test_prediction_units_match_cbmf_before_any_absorb(
    online, fitted_cbmf, stream_oracle
):
    """With zero absorbed batches the online model IS the fitted model."""
    rng = np.random.default_rng(11)
    xq = rng.standard_normal((30, stream_oracle.n_variables))
    dq = stream_oracle.basis.expand(xq)
    for state in range(online.n_states):
        np.testing.assert_allclose(
            online.predict(xq, state),
            fitted_cbmf.predict(dq, state),
            rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            online.predict_std(xq, state, include_noise=True),
            fitted_cbmf.predict_std(dq, state, include_noise=True),
            rtol=1e-9, atol=1e-9,
        )
    np.testing.assert_allclose(
        online.coef_, fitted_cbmf.coef_, rtol=1e-9, atol=1e-9
    )


def test_coef_stays_consistent_with_predictions(online, stream_oracle):
    """coef_/offsets_ must reproduce predict() after every absorb."""
    rng = np.random.default_rng(21)
    for state, size in [(1, 4), (0, 2), (2, 6)]:
        x = rng.standard_normal((size, stream_oracle.n_variables))
        online.absorb(x, stream_oracle.observe(x, state), state)
        xq = rng.standard_normal((10, stream_oracle.n_variables))
        for k in range(online.n_states):
            via_coef = (
                stream_oracle.basis.expand(xq) @ online.coef_[k]
                + online.offsets_[k]
            )
            np.testing.assert_allclose(
                via_coef, online.predict(xq, k), rtol=1e-8, atol=1e-8
            )


def test_zscores_calibrated_on_in_distribution_data(
    online, stream_oracle
):
    """Batches from the fitted regime score mean(z^2) near 1."""
    rng = np.random.default_rng(5)
    scores = []
    for state in range(online.n_states):
        x = rng.standard_normal((50, stream_oracle.n_variables))
        z = online.zscores(x, stream_oracle.observe(x, state), state)
        scores.append(float(np.mean(z**2)))
    assert 0.3 < float(np.mean(scores)) < 3.0


def test_zscores_inflate_under_shift(online, stream_oracle):
    """A mean shift several noise-widths wide is plainly visible."""
    rng = np.random.default_rng(6)
    x = rng.standard_normal((30, stream_oracle.n_variables))
    shifted = stream_oracle.observe(x, 0) + 2.0
    z = online.zscores(x, shifted, 0)
    assert float(np.mean(z**2)) > 10.0


def test_state_data_roundtrip_and_refit(online, stream_oracle):
    """state_data returns original-unit rows; refit consumes them."""
    rng = np.random.default_rng(9)
    x = rng.standard_normal((5, stream_oracle.n_variables))
    y = stream_oracle.observe(x, 2)
    online.absorb(x, y, 2)
    designs, targets = online.state_data()
    assert len(designs) == online.n_states
    assert sum(d.shape[0] for d in designs) == online.n_rows
    # The absorbed batch's targets come back in original units.
    np.testing.assert_allclose(targets[2][-5:], y, rtol=1e-12)

    refitted = online.refit()
    assert isinstance(refitted, OnlineCBMF)
    assert refitted.n_rows == online.n_rows
    assert refitted.n_absorbed_batches == 0
    # The refit model still explains the stream.
    xq = rng.standard_normal((40, stream_oracle.n_variables))
    truth = stream_oracle.truth(xq, 1)
    rmse = float(
        np.sqrt(np.mean((refitted.predict(xq, 1) - truth) ** 2))
    )
    assert rmse < 0.5


def test_frozen_and_modelset_export(online, stream_oracle):
    rng = np.random.default_rng(13)
    x = rng.standard_normal((4, stream_oracle.n_variables))
    online.absorb(x, stream_oracle.observe(x, 1), 1)
    frozen = online.frozen()
    assert frozen.metric == online.metric
    np.testing.assert_allclose(frozen.coef_, online.coef_)
    modelset = online.modelset()
    assert list(modelset.metric_names) == [online.metric]
    assert modelset.basis is stream_oracle.basis


def test_modelset_requires_basis(fitted_cbmf):
    online = OnlineCBMF.from_cbmf(fitted_cbmf)  # design-row mode
    with pytest.raises(ValueError, match="basis"):
        online.modelset()


def test_basis_dimension_mismatch_rejected(fitted_cbmf):
    from repro.basis.polynomial import LinearBasis

    with pytest.raises(ValueError, match="basis has"):
        OnlineCBMF.from_cbmf(fitted_cbmf, basis=LinearBasis(2))


def test_unfitted_model_rejected():
    with pytest.raises(RuntimeError, match="not fitted"):
        OnlineCBMF(CBMF())
