"""Stream sources: oracle ingest, record/replay round-trip, drift wrap."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults import FaultPlan, FaultyOracle
from repro.streaming import (
    OracleStream,
    ReplayStream,
    ShiftedOracle,
    StreamBatch,
    record_stream,
)


def test_oracle_stream_covers_states_round_robin(stream_oracle):
    stream = OracleStream(stream_oracle, n_batches=7, batch_size=3, seed=0)
    batches = list(stream)
    assert [b.index for b in batches] == list(range(7))
    assert [b.state for b in batches] == [0, 1, 2, 0, 1, 2, 0]
    for batch in batches:
        assert batch.x.shape == (3, stream_oracle.n_variables)
        assert batch.y.shape == (3,)
        # The values really came from the oracle at that state.
        np.testing.assert_allclose(
            batch.y, stream_oracle.observe(batch.x, batch.state)
        )


def test_oracle_stream_is_exhausted_once(stream_oracle):
    stream = OracleStream(stream_oracle, n_batches=2, batch_size=2, seed=0)
    assert len(list(stream)) == 2
    assert list(stream) == []


def test_oracle_stream_survives_a_raising_oracle(stream_oracle):
    """A poisoned __next__ must not kill the iterator (manual-iterator
    contract the service's quarantine path relies on)."""
    plan = FaultPlan.parse("oracle:raise@1", seed=0)
    faulty = FaultyOracle(stream_oracle, plan)
    stream = OracleStream(faulty, n_batches=3, batch_size=2, seed=0)
    first = next(stream)
    assert first.index == 0
    with pytest.raises(SimulationError):
        next(stream)
    third = next(stream)  # the stream moved past the poisoned batch
    assert third.index == 2
    with pytest.raises(StopIteration):
        next(stream)


def test_oracle_stream_validates_arguments(stream_oracle):
    with pytest.raises(ValueError):
        OracleStream(stream_oracle, n_batches=0, batch_size=2)
    with pytest.raises(ValueError):
        OracleStream(stream_oracle, n_batches=2, batch_size=0)
    with pytest.raises(IndexError):
        OracleStream(stream_oracle, 2, 2, states=[99])
    with pytest.raises(ValueError):
        OracleStream(stream_oracle, 2, 2, states=[])


def test_record_replay_roundtrip(tmp_path, stream_oracle):
    stream = OracleStream(stream_oracle, n_batches=5, batch_size=4, seed=3)
    recorded = list(stream)
    path = record_stream(recorded, tmp_path / "stream.npz")
    replay = ReplayStream(path)
    assert len(replay) == 5
    for original, replayed in zip(recorded, list(replay)):
        assert replayed.index == original.index
        assert replayed.state == original.state
        np.testing.assert_array_equal(replayed.x, original.x)
        np.testing.assert_array_equal(replayed.y, original.y)
    # Replay is repeatable — a second pass yields the same batches.
    again = list(replay)
    assert [b.index for b in again] == [b.index for b in recorded]


def test_record_stream_refuses_empty(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        record_stream([], tmp_path / "nothing.npz")


def test_stream_batch_validates_shapes():
    with pytest.raises(ValueError, match="2 values"):
        StreamBatch(index=0, state=0, x=np.zeros((3, 2)), y=np.zeros(2))


def test_shifted_oracle_steps_after_threshold(stream_oracle):
    shifted = ShiftedOracle(stream_oracle, shift=5.0, after_calls=2)
    x = np.zeros((2, stream_oracle.n_variables))
    clean = stream_oracle.observe(x, 0)
    np.testing.assert_allclose(shifted.observe(x, 0), clean)
    assert not shifted.engaged
    np.testing.assert_allclose(shifted.observe(x, 0), clean)
    assert shifted.engaged
    np.testing.assert_allclose(shifted.observe(x, 0), clean + 5.0)
    # truth follows the current regime so holdouts score the new world.
    np.testing.assert_allclose(
        shifted.truth(x, 0), stream_oracle.truth(x, 0) + 5.0
    )
