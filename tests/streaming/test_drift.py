"""DriftMonitor: calibration under the null, detection under shift."""

import numpy as np
import pytest

from repro.streaming import DriftConfig, DriftMonitor


def test_null_stream_never_flags():
    """Well-calibrated residuals (z ~ N(0,1)) stay under threshold."""
    rng = np.random.default_rng(0)
    monitor = DriftMonitor(DriftConfig(threshold=3.0, warmup_batches=2))
    for _ in range(50):
        decision = monitor.observe(rng.standard_normal(20))
        assert not decision.drifted
    assert 0.5 < monitor.smoothed < 2.0


def test_sustained_shift_flags():
    """Residuals 3σ off-center push mean(z²) ≈ 10 past the threshold."""
    rng = np.random.default_rng(1)
    monitor = DriftMonitor(DriftConfig(threshold=3.0, warmup_batches=0))
    flagged = False
    for _ in range(5):
        decision = monitor.observe(
            3.0 + rng.standard_normal(20)
        )
        flagged = flagged or decision.drifted
    assert flagged


def test_warmup_suppresses_early_flags():
    monitor = DriftMonitor(
        DriftConfig(threshold=3.0, warmup_batches=3, hard_threshold=1e9)
    )
    z = np.full(10, 5.0)  # score 25, way past threshold
    for i in range(3):
        assert not monitor.observe(z).drifted, f"batch {i} in warmup"
    assert monitor.observe(z).drifted


def test_hard_threshold_overrides_warmup():
    monitor = DriftMonitor(
        DriftConfig(threshold=3.0, warmup_batches=5, hard_threshold=25.0)
    )
    assert monitor.observe(np.full(10, 10.0)).drifted  # score 100


def test_ewma_smooths_single_spike():
    """One noisy batch between clean ones must not trigger."""
    rng = np.random.default_rng(2)
    monitor = DriftMonitor(
        DriftConfig(
            threshold=3.0, ewma=0.2, warmup_batches=0, hard_threshold=1e9
        )
    )
    for _ in range(5):
        monitor.observe(rng.standard_normal(20))
    spike = monitor.observe(2.5 * rng.standard_normal(20))  # score ~6
    assert not spike.drifted
    calm = monitor.observe(rng.standard_normal(20))
    assert not calm.drifted
    assert calm.smoothed < spike.smoothed


def test_reset_forgets_history():
    monitor = DriftMonitor(DriftConfig(warmup_batches=1))
    monitor.observe(np.full(5, 4.0))
    monitor.observe(np.full(5, 4.0))
    assert monitor.batches_seen == 2
    monitor.reset()
    assert monitor.batches_seen == 0
    assert monitor.smoothed is None
    # Back in warmup: the same bad batch no longer flags (soft path).
    config = DriftConfig(threshold=3.0, warmup_batches=1,
                         hard_threshold=1e9)
    fresh = DriftMonitor(config)
    assert not fresh.observe(np.full(5, 4.0)).drifted


def test_decision_metadata():
    monitor = DriftMonitor()
    decision = monitor.observe(np.ones(4))
    assert decision.batch_index == 0
    assert decision.score == pytest.approx(1.0)
    assert decision.smoothed == pytest.approx(1.0)


def test_rejects_bad_input_and_config():
    monitor = DriftMonitor()
    with pytest.raises(ValueError, match="empty"):
        monitor.observe(np.empty(0))
    with pytest.raises(ValueError, match="non-finite"):
        monitor.observe(np.array([1.0, np.nan]))
    with pytest.raises(ValueError):
        DriftConfig(threshold=-1.0)
    with pytest.raises(ValueError):
        DriftConfig(ewma=0.0)
    with pytest.raises(ValueError):
        DriftConfig(warmup_batches=-1)
    with pytest.raises(ValueError):
        DriftConfig(threshold=3.0, hard_threshold=2.0)
