"""Tests for the ASCII chart renderer."""

import pytest

from repro.evaluation.experiment import MethodResult
from repro.evaluation.plotting import ascii_chart, sweep_chart
from repro.evaluation.sweep import SweepResult


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"cbmf": [1.0, 0.5], "somp": [2.0, 1.0]},
            ["100", "200"],
        )
        assert "o=cbmf" in chart and "x=somp" in chart
        assert "o" in chart and "x" in chart

    def test_title_rendered(self):
        chart = ascii_chart({"a": [1.0]}, ["10"], title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_lower_error_plots_lower(self):
        chart = ascii_chart(
            {"good": [0.1, 0.1], "bad": [10.0, 10.0]},
            ["1", "2"],
            height=5,
        )
        lines = chart.splitlines()
        # 'bad' is marker 'o'? sorted: bad < good → bad=o, good=x.
        row_of = {}
        for index, line in enumerate(lines):
            if "o" in line and "=" not in line:
                row_of["bad"] = index
            if "x" in line and "=" not in line:
                row_of["good"] = index
        assert row_of["bad"] < row_of["good"]  # higher error = higher row

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_chart({"a": [0.0]}, ["1"])

    def test_linear_scale_allows_zero(self):
        chart = ascii_chart({"a": [0.0, 1.0]}, ["1", "2"], log_y=False)
        assert "a" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ascii_chart({"a": [1.0, 2.0]}, ["1"])

    def test_min_height(self):
        with pytest.raises(ValueError, match="height"):
            ascii_chart({"a": [1.0]}, ["1"], height=2)

    def test_flat_series_handled(self):
        chart = ascii_chart({"a": [1.0, 1.0, 1.0]}, ["1", "2", "3"])
        assert "a" in chart


class TestSweepChart:
    def test_renders_sweep(self):
        points = {
            "somp": [
                MethodResult("somp", 100, errors={"nf_db": 3.0}),
                MethodResult("somp", 200, errors={"nf_db": 1.5}),
            ],
            "cbmf": [
                MethodResult("cbmf", 100, errors={"nf_db": 1.2}),
                MethodResult("cbmf", 200, errors={"nf_db": 0.9}),
            ],
        }
        sweep = SweepResult(
            circuit_name="lna",
            metric_names=("nf_db",),
            n_per_state_grid=(10, 20),
            results=points,
        )
        chart = sweep_chart(sweep, "nf_db", "NF")
        assert "lna" in chart and "NF" in chart
        assert "100" in chart and "200" in chart
