"""Tests for the estimator registry."""

import pytest

from repro.baselines import SOMP
from repro.core import CBMF, MultiStateRegressor
from repro.evaluation.methods import available_methods, make_estimator


class TestRegistry:
    def test_expected_methods_present(self):
        methods = available_methods()
        for name in (
            "ls",
            "ridge",
            "omp",
            "somp",
            "group_lasso",
            "bmf",
            "cbmf",
            "clustered_cbmf",
        ):
            assert name in methods

    def test_sorted(self):
        methods = available_methods()
        assert list(methods) == sorted(methods)

    def test_instantiation_types(self):
        assert isinstance(make_estimator("cbmf"), CBMF)
        assert isinstance(make_estimator("somp"), SOMP)

    def test_every_method_is_estimator(self):
        for name in available_methods():
            assert isinstance(make_estimator(name), MultiStateRegressor)

    def test_fresh_instance_each_call(self):
        assert make_estimator("cbmf") is not make_estimator("cbmf")

    def test_unknown_method(self):
        with pytest.raises(KeyError, match="unknown method"):
            make_estimator("magic")

    def test_seed_forwarded(self):
        model = make_estimator("cbmf", seed=42)
        assert model.seed == 42


class TestAcquisitionRegistry:
    def test_expected_strategies(self):
        from repro.evaluation.methods import available_acquisitions

        assert available_acquisitions() == (
            "correlation",
            "cost_weighted",
            "random",
            "variance",
            "yield_variance",
        )

    def test_instantiation(self):
        from repro.active.acquisition import (
            CostWeightedVariance,
            RandomAcquisition,
            VarianceAcquisition,
        )
        from repro.evaluation.methods import make_acquisition

        assert isinstance(make_acquisition("random"), RandomAcquisition)
        strategy = make_acquisition("variance", explore_fraction=0.1)
        assert isinstance(strategy, VarianceAcquisition)
        assert strategy.explore_fraction == 0.1
        weighted = make_acquisition(
            "cost_weighted", state_costs=[1.0, 2.0]
        )
        assert isinstance(weighted, CostWeightedVariance)
        assert weighted.state_costs == [1.0, 2.0]

    def test_unknown_strategy(self):
        from repro.evaluation.methods import make_acquisition

        with pytest.raises(KeyError, match="unknown acquisition"):
            make_acquisition("magic")
