"""Tests for multi-seed repetition."""

import pytest

from repro.evaluation.repetition import repeat_experiment


@pytest.fixture(scope="module")
def repeated(tiny_lna):
    return repeat_experiment(
        tiny_lna,
        methods=("somp", "ridge"),
        n_train_per_state=12,
        n_test_per_state=15,
        n_repetitions=3,
        base_seed=100,
        metrics=("gain_db",),
    )


class TestRepeatExperiment:
    def test_sample_counts(self, repeated):
        assert repeated.n_repetitions == 3
        assert len(repeated.samples[("somp", "gain_db")]) == 3

    def test_statistics(self, repeated):
        mean = repeated.mean("somp", "gain_db")
        std = repeated.std("somp", "gain_db")
        assert mean > 0.0
        assert std >= 0.0

    def test_repetitions_differ(self, repeated):
        values = repeated.samples[("somp", "gain_db")]
        assert len(set(values)) > 1  # different dataset seeds

    def test_wins_counting(self, repeated):
        wins = repeated.wins("somp", "ridge", "gain_db")
        losses = repeated.wins("ridge", "somp", "gain_db")
        assert 0 <= wins <= 3
        assert wins + losses <= 3

    def test_somp_dominates_ridge(self, repeated):
        """Sparse fitting wins at N << M in every repetition."""
        assert repeated.wins("somp", "ridge", "gain_db") == 3

    def test_format(self, repeated):
        text = repeated.format()
        assert "3 repetitions" in text
        assert "gain_db" in text
        assert "±" in text

    def test_deterministic(self, tiny_lna, repeated):
        again = repeat_experiment(
            tiny_lna,
            methods=("somp", "ridge"),
            n_train_per_state=12,
            n_test_per_state=15,
            n_repetitions=3,
            base_seed=100,
            metrics=("gain_db",),
        )
        assert again.samples == repeated.samples

    def test_validation(self, tiny_lna):
        with pytest.raises(ValueError, match="method"):
            repeat_experiment(tiny_lna, (), 10, 10)
        with pytest.raises(ValueError):
            repeat_experiment(tiny_lna, ("somp",), 1, 10)


class TestParallelRepetition:
    def test_workers_bit_identical(self, tiny_lna):
        kwargs = dict(
            methods=("ls", "ridge"),
            n_train_per_state=10,
            n_test_per_state=8,
            n_repetitions=2,
            base_seed=42,
            metrics=("gain_db",),
        )
        serial = repeat_experiment(tiny_lna, max_workers=1, **kwargs)
        pooled = repeat_experiment(tiny_lna, max_workers=2, **kwargs)
        assert serial.samples == pooled.samples
