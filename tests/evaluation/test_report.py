"""Tests for report rendering."""

import pytest

from repro.evaluation.experiment import MethodResult
from repro.evaluation.report import (
    format_comparison_table,
    format_sweep_table,
)
from repro.evaluation.sweep import SweepResult
from repro.simulate.cost import CostModel


def fake_results():
    somp = MethodResult(method="somp", n_train_total=1120)
    somp.errors = {"nf_db": 0.316, "gain_db": 0.577}
    somp.fit_seconds = {"nf_db": 0.5, "gain_db": 0.82}
    somp.cost = CostModel(8.74).cost(1120, somp.total_fit_seconds)
    cbmf = MethodResult(method="cbmf", n_train_total=480)
    cbmf.errors = {"nf_db": 0.285, "gain_db": 0.566}
    cbmf.fit_seconds = {"nf_db": 100.0, "gain_db": 110.0}
    cbmf.cost = CostModel(8.74).cost(480, cbmf.total_fit_seconds)
    return somp, cbmf


class TestComparisonTable:
    def test_contains_all_rows(self):
        table = format_comparison_table("Table 1", fake_results())
        assert "Number of training samples" in table
        assert "Modeling error for nf_db" in table
        assert "Simulation cost (Hours)" in table
        assert "Overall modeling cost (Hours)" in table

    def test_metric_labels_applied(self):
        table = format_comparison_table(
            "Table 1", fake_results(), {"nf_db": "NF"}
        )
        assert "Modeling error for NF" in table

    def test_values_formatted(self):
        table = format_comparison_table("Table 1", fake_results())
        assert "0.316%" in table
        assert "1120" in table and "480" in table

    def test_cost_rows_skipped_without_cost_model(self):
        somp, cbmf = fake_results()
        somp.cost = None
        table = format_comparison_table("T", (somp, cbmf))
        assert "Simulation cost" not in table

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_comparison_table("T", [])


class TestSweepTable:
    def test_renders_series(self):
        somp_points = [
            MethodResult("somp", 160, errors={"nf_db": 2.0}),
            MethodResult("somp", 320, errors={"nf_db": 1.0}),
        ]
        cbmf_points = [
            MethodResult("cbmf", 160, errors={"nf_db": 1.5}),
            MethodResult("cbmf", 320, errors={"nf_db": 0.8}),
        ]
        sweep = SweepResult(
            circuit_name="lna",
            metric_names=("nf_db",),
            n_per_state_grid=(5, 10),
            results={"somp": somp_points, "cbmf": cbmf_points},
        )
        table = format_sweep_table("Fig 2b", sweep, "nf_db", "NF")
        assert "Fig 2b" in table and "NF" in table
        assert "160" in table and "320" in table
        assert "2.000%" in table and "0.800%" in table


class TestActiveHistoryTable:
    def make_history(self):
        from repro.active.history import FitHistory, RoundRecord

        history = FitHistory(
            strategy="variance", metric="nf_db", stop_reason="plateau"
        )
        history.append(RoundRecord(
            round_index=0, n_samples_total=12,
            n_samples_per_state=(6, 6), n_added_per_state=(4, 4),
            holdout_rmse=0.5, best_rmse=0.5, noise_std=0.05,
            refit="cold", wall_seconds=0.25,
        ))
        history.append(RoundRecord(
            round_index=1, n_samples_total=20,
            n_samples_per_state=(10, 10), n_added_per_state=(0, 0),
            holdout_rmse=0.125, best_rmse=0.125, noise_std=0.05,
            refit="warm", wall_seconds=0.125,
        ))
        return history

    def test_renders_rounds_and_stop_reason(self):
        from repro.evaluation.report import format_active_history

        table = format_active_history(self.make_history())
        assert "strategy=variance" in table and "metric=nf_db" in table
        assert "0.50000" in table and "0.12500" in table
        assert "cold" in table and "warm" in table
        assert table.splitlines()[-1] == "stopped: plateau"
        # one header line, one column line, two rounds, one stop line
        assert len(table.splitlines()) == 5

    def test_custom_title(self):
        from repro.evaluation.report import format_active_history

        table = format_active_history(
            self.make_history(), title="My Run"
        )
        assert table.startswith("My Run")


class TestFitProfile:
    def make_report(self):
        from repro.core.em import EmTrace
        from repro.core.results import FitReport
        from repro.core.somp_init import InitResult
        from repro.core.prior import CorrelatedPrior
        import numpy as np

        trace = EmTrace(
            nll_history=[-1.0, -2.0, -2.5],
            active_history=[10, 10, 10],
            noise_history=[0.1, 0.05, 0.04],
            converged=True,
            seconds=0.8,
            posterior_seconds=0.6,
            mstep_seconds=0.15,
        )
        prior = CorrelatedPrior(
            lambdas=np.ones(4), correlation=np.eye(3)
        )
        init = InitResult(
            r0=0.7, sigma0=0.1, n_basis=2, support=[0, 1],
            prior=prior, noise_var=0.01,
        )
        return FitReport(
            init=init, em=trace, n_active=2, noise_std=0.1,
            init_seconds=0.4, em_seconds=0.8,
        )

    def test_contains_stage_rows(self):
        from repro.evaluation.report import format_fit_profile

        text = format_fit_profile(self.make_report())
        assert "somp init" in text
        assert "posterior solves" in text
        assert "m-step updates" in text
        assert "3 EM iterations" in text

    def test_custom_title(self):
        from repro.evaluation.report import format_fit_profile

        text = format_fit_profile(self.make_report(), title="my fit")
        assert text.splitlines()[0] == "my fit"

    def test_shares_sum_sensibly(self):
        from repro.evaluation.report import format_fit_profile

        text = format_fit_profile(self.make_report())
        assert "total" in text and "1.200s" in text
