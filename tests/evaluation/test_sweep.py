"""Tests for sample-count sweeps."""

import pytest

from repro.basis.polynomial import LinearBasis
from repro.evaluation.sweep import sample_count_sweep


@pytest.fixture(scope="module")
def sweep(lna_dataset):
    pool, test = lna_dataset.split(25)
    return sample_count_sweep(
        pool,
        test,
        LinearBasis(lna_dataset.n_variables),
        methods=("ls", "somp"),
        n_per_state_grid=(8, 16, 25),
        seed=0,
        metrics=("gain_db",),
    )


class TestSweep:
    def test_grid_recorded(self, sweep):
        assert sweep.n_per_state_grid == (8, 16, 25)

    def test_all_methods_present(self, sweep):
        assert set(sweep.results) == {"ls", "somp"}
        for method in sweep.results:
            assert len(sweep.results[method]) == 3

    def test_totals_scale_with_states(self, sweep, lna_dataset):
        totals = sweep.n_total_grid()
        assert totals == [
            n * lna_dataset.n_states for n in (8, 16, 25)
        ]

    def test_errors_series(self, sweep):
        series = sweep.errors("somp", "gain_db")
        assert len(series) == 3
        assert all(e > 0 for e in series)

    def test_somp_error_decreases_with_samples(self, sweep):
        series = sweep.errors("somp", "gain_db")
        assert series[-1] < series[0]

    def test_samples_to_reach(self, sweep):
        series = sweep.errors("somp", "gain_db")
        budget = sweep.samples_to_reach("somp", "gain_db", series[-1])
        assert budget == sweep.n_total_grid()[-1] or budget is not None

    def test_samples_to_reach_unreachable(self, sweep):
        assert sweep.samples_to_reach("somp", "gain_db", 0.0) is None

    def test_unknown_method_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.errors("nope", "gain_db")


class TestSweepValidation:
    def test_rejects_empty_grid(self, lna_dataset):
        pool, test = lna_dataset.split(25)
        with pytest.raises(ValueError, match="non-empty"):
            sample_count_sweep(
                pool, test, LinearBasis(pool.n_variables), ("ls",), ()
            )

    def test_rejects_oversized_grid(self, lna_dataset):
        pool, test = lna_dataset.split(25)
        with pytest.raises(ValueError, match="pool has"):
            sample_count_sweep(
                pool, test, LinearBasis(pool.n_variables), ("ls",), (999,)
            )

    def test_rejects_no_methods(self, lna_dataset):
        pool, test = lna_dataset.split(25)
        with pytest.raises(ValueError, match="method"):
            sample_count_sweep(
                pool, test, LinearBasis(pool.n_variables), (), (5,)
            )


class TestParallelSweep:
    def test_workers_bit_identical(self, lna_dataset):
        pool, test = lna_dataset.split(25)
        kwargs = dict(
            basis=LinearBasis(lna_dataset.n_variables),
            methods=("ls", "ridge"),
            n_per_state_grid=(6, 10),
            seed=0,
            metrics=("gain_db",),
        )
        serial = sample_count_sweep(pool, test, max_workers=1, **kwargs)
        pooled = sample_count_sweep(pool, test, max_workers=2, **kwargs)
        for method in kwargs["methods"]:
            assert serial.errors(method, "gain_db") == pooled.errors(
                method, "gain_db"
            )

    def test_generator_seed_rejected_multiprocess(self, lna_dataset):
        import numpy as np

        pool, test = lna_dataset.split(25)
        with pytest.raises(ValueError, match="Generator"):
            sample_count_sweep(
                pool,
                test,
                LinearBasis(lna_dataset.n_variables),
                ("ls",),
                (6, 10),
                seed=np.random.default_rng(0),
                max_workers=2,
            )
