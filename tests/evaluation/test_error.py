"""Tests for the modeling-error metrics."""

import numpy as np
import pytest

from repro.evaluation.error import (
    modeling_error_percent,
    nrmse_by_std,
    per_state_errors,
    rmse,
)


class TestRmse:
    def test_zero_for_perfect(self):
        truth = [np.array([1.0, 2.0]), np.array([3.0])]
        assert rmse(truth, truth) == 0.0

    def test_known_value(self):
        predictions = [np.array([1.0, 1.0])]
        truths = [np.array([0.0, 2.0])]
        assert rmse(predictions, truths) == pytest.approx(1.0)

    def test_pools_across_states(self):
        predictions = [np.array([1.0]), np.array([0.0, 0.0, 0.0])]
        truths = [np.array([3.0]), np.array([0.0, 0.0, 0.0])]
        # (4 + 0)/4 = 1 → sqrt = 1
        assert rmse(predictions, truths) == pytest.approx(1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            rmse([np.zeros(2)], [np.zeros(3)])

    def test_rejects_state_count_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            rmse([np.zeros(2)], [np.zeros(2), np.zeros(2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            rmse([], [])


class TestModelingErrorPercent:
    def test_scale_invariant(self):
        rng = np.random.default_rng(0)
        truths = [rng.uniform(1.0, 2.0, 50)]
        predictions = [truths[0] + 0.01]
        a = modeling_error_percent(predictions, truths)
        b = modeling_error_percent(
            [p * 10 for p in predictions], [t * 10 for t in truths]
        )
        assert a == pytest.approx(b)

    def test_known_value(self):
        truths = [np.full(10, 2.0)]
        predictions = [np.full(10, 2.02)]
        # RMSE 0.02 over mean |y| 2.0 → 1 %.
        assert modeling_error_percent(predictions, truths) == pytest.approx(
            1.0
        )

    def test_rejects_zero_magnitude(self):
        with pytest.raises(ValueError, match="zero"):
            modeling_error_percent([np.zeros(3)], [np.zeros(3)])

    def test_paper_scale_sanity(self):
        """A model explaining a 2 dB metric to ±0.006 dB is ≈0.3 % — the
        order the paper reports for NF."""
        rng = np.random.default_rng(1)
        truths = [2.0 + 0.05 * rng.standard_normal(500)]
        predictions = [truths[0] + 0.006 * rng.standard_normal(500)]
        error = modeling_error_percent(predictions, truths)
        assert 0.2 < error < 0.4


class TestPerStateErrors:
    def test_shape_and_values(self):
        truths = [np.full(10, 2.0), np.full(10, 4.0)]
        predictions = [truths[0] + 0.02, truths[1] + 0.04]
        errors = per_state_errors(predictions, truths)
        assert errors.shape == (2,)
        assert errors[0] == pytest.approx(1.0)
        assert errors[1] == pytest.approx(1.0)

    def test_identifies_bad_state(self):
        truths = [np.full(10, 2.0), np.full(10, 2.0)]
        predictions = [truths[0] + 0.02, truths[1] + 0.4]
        errors = per_state_errors(predictions, truths)
        assert errors[1] > 10 * errors[0]

    def test_pooled_between_min_and_max(self):
        rng = np.random.default_rng(0)
        truths = [2.0 + 0.1 * rng.standard_normal(30) for _ in range(3)]
        predictions = [t + 0.03 * rng.standard_normal(30) for t in truths]
        per_state = per_state_errors(predictions, truths)
        pooled = modeling_error_percent(predictions, truths)
        assert per_state.min() <= pooled <= per_state.max()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            per_state_errors([], [])


class TestGreedyAggregate:
    def test_l2_variant_recovers_support(self):
        from repro.core.greedy import select_shared_support

        rng = np.random.default_rng(1)
        support = [3, 11, 17]
        designs, targets = [], []
        for k in range(4):
            coef = np.zeros(30)
            coef[support] = rng.uniform(1.0, 3.0, 3)
            d = rng.standard_normal((20, 30))
            designs.append(d)
            targets.append(d @ coef + 0.01 * rng.standard_normal(20))

        def ls(sub, tg):
            return np.column_stack(
                [np.linalg.lstsq(s, t, rcond=None)[0]
                 for s, t in zip(sub, tg)]
            )

        found, _ = select_shared_support(
            designs, targets, 3, ls, aggregate="l2"
        )
        assert sorted(found) == support

    def test_rejects_unknown_aggregate(self):
        from repro.core.greedy import select_shared_support

        with pytest.raises(ValueError, match="aggregate"):
            select_shared_support(
                [np.ones((3, 2))], [np.ones(3)], 1, lambda a, b: None,
                aggregate="max",
            )


class TestNrmseByStd:
    def test_mean_prediction_scores_one(self):
        rng = np.random.default_rng(2)
        truth = rng.standard_normal(10_000)
        predictions = [np.full_like(truth, truth.mean())]
        assert nrmse_by_std(predictions, [truth]) == pytest.approx(
            1.0, abs=0.02
        )

    def test_rejects_constant_truth(self):
        with pytest.raises(ValueError, match="variance"):
            nrmse_by_std([np.ones(3)], [np.ones(3)])
