"""Tests for the modeling-experiment harness."""

import numpy as np
import pytest

from repro.basis.polynomial import LinearBasis
from repro.baselines.least_squares import Ridge
from repro.evaluation.experiment import ModelingExperiment
from repro.simulate.cost import CostModel


@pytest.fixture(scope="module")
def split(lna_dataset):
    return lna_dataset.split(25)


@pytest.fixture(scope="module")
def experiment(split, lna_dataset):
    train, test = split
    return ModelingExperiment(
        train, test, LinearBasis(lna_dataset.n_variables), CostModel(8.74)
    )


class TestConstruction:
    def test_rejects_metric_mismatch(self, split):
        train, test = split
        import copy

        bad = copy.copy(test)
        bad.metric_names = ("zzz",)
        with pytest.raises(ValueError, match="metrics"):
            ModelingExperiment(train, bad, LinearBasis(train.n_variables))

    def test_rejects_basis_mismatch(self, split):
        train, test = split
        with pytest.raises(ValueError, match="variables"):
            ModelingExperiment(train, test, LinearBasis(3))


class TestRun:
    def test_registry_method_all_metrics(self, experiment):
        result = experiment.run("ridge", seed=0)
        assert set(result.errors) == set(experiment.metric_names)
        for error in result.errors.values():
            # Plain ridge at N << M can exceed 100 % on near-zero-mean
            # metrics (IIP3 in dBm); just require a finite positive score.
            assert 0.0 < error < 1000.0
        assert result.n_train_total == experiment.train.n_samples_total

    def test_fit_seconds_recorded(self, experiment):
        result = experiment.run("ls")
        assert all(t >= 0.0 for t in result.fit_seconds.values())
        assert result.total_fit_seconds == pytest.approx(
            sum(result.fit_seconds.values())
        )

    def test_cost_attached(self, experiment):
        result = experiment.run("ridge")
        assert result.cost is not None
        assert result.cost.simulation_seconds == pytest.approx(
            8.74 * experiment.train.n_samples_total
        )

    def test_metric_subset(self, experiment):
        result = experiment.run("ridge", metrics=("gain_db",))
        assert list(result.errors) == ["gain_db"]

    def test_unknown_metric_rejected(self, experiment):
        with pytest.raises(KeyError, match="unknown metric"):
            experiment.run("ridge", metrics=("zzz",))

    def test_estimator_instance_single_metric(self, experiment):
        result = experiment.run(Ridge(alpha=2.0), metrics=("nf_db",))
        assert result.method == "Ridge"
        assert "nf_db" in result.errors

    def test_estimator_instance_multi_metric_rejected(self, experiment):
        with pytest.raises(ValueError, match="registry name"):
            experiment.run(Ridge())

    def test_somp_beats_plain_ridge_here(self, experiment):
        """Sanity: sparse methods beat dense ridge at N << M."""
        ridge = experiment.run("ridge", metrics=("gain_db",), seed=0)
        somp = experiment.run("somp", metrics=("gain_db",), seed=0)
        assert somp.errors["gain_db"] < ridge.errors["gain_db"]
