"""Smoke tests: the shipped example scripts actually run.

Only the fast examples run here (the paper-reproduction script is covered
by the benchmark suite at scale). Each is executed as a subprocess exactly
as a user would run it, and its key output lines are checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_lna_noise_budget(self):
        out = run_example("lna_noise_budget.py")
        assert "noise budget" in out
        assert "input match vs knob state" in out
        assert "gain vs frequency" in out

    def test_state_clustering(self):
        out = run_example("state_clustering.py")
        assert "inferred state clusters" in out
        assert "Clustered C-BMF" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "C-BMF" in out and "S-OMP" in out
        assert "sensitivities" in out

    def test_serving_demo(self):
        out = run_example("serving_demo.py")
        assert "lna@v1" in out and "lna@v2" in out
        assert "hot-swapped to version 2" in out
        assert "cache hit rate" in out

    def test_active_learning_demo(self):
        out = run_example("active_learning_demo.py")
        assert "strategy=variance" in out
        assert "pushed lna-active@v1" in out
        assert "manifest acquisition metadata:" in out
        assert "served prediction at the typical corner" in out

    def test_streaming_demo(self):
        out = run_example("streaming_demo.py")
        assert "seeded online C-BMF" in out
        assert "drift refits: " in out
        assert "drift flagged at batch" in out
        assert "serving live@v" in out
        assert "streaming telemetry:" in out

    def test_cluster_demo(self):
        out = run_example("cluster_demo.py")
        assert "cluster serving live@v1 on 2 shards" in out
        assert "canarying at 30%" in out
        assert "per-version traffic:" in out
        assert "promoted live@v" in out
        assert "CLUSTER REPORT" in out
        assert "aggregate: requests=" in out

    def test_yield_demo(self):
        out = run_example("yield_demo.py")
        assert "solver=kron" in out
        assert "correlation-shared" in out
        assert "ground truth" in out
        assert "tau^2" in out

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "reproduce_paper.py",
            "yield_and_tuning.py",
            "yield_demo.py",
            "corner_extraction.py",
            "state_clustering.py",
            "adaptive_vco.py",
            "lna_noise_budget.py",
            "serving_demo.py",
            "active_learning_demo.py",
            "streaming_demo.py",
            "cluster_demo.py",
        ],
    )
    def test_example_compiles(self, name):
        """Every shipped example at least byte-compiles."""
        path = EXAMPLES_DIR / name
        assert path.exists()
        compile(path.read_text(), str(path), "exec")
