"""Benchmark regression harness — ``python -m repro bench``.

Measures the two hot paths of the package and emits machine-readable
reports next to the working directory:

* ``BENCH_fit.json`` — the C-BMF fitting pipeline on the figure-2 LNA
  workload: full ``CBMF.fit``, the S-OMP/cross-validation initializer,
  the EM refinement and one posterior solve;
* ``BENCH_serving.json`` — the micro-batched serving engine
  (``predict_many`` throughput on a fitted model set);
* ``BENCH_streaming.json`` — the online-update path (per-batch
  ``OnlineCBMF.absorb`` latency vs a full warm-started refit on the
  same rows);
* ``BENCH_cluster.json`` — the horizontal serving cluster (multi-shard
  ``ClusterService`` throughput vs the single-process ``ModelService``
  on the same request stream, the same stream again over a real TCP
  loopback listener — the socketpair-vs-TCP transport tax — plus the
  shared-memory accounting: the summed PSS cost of N shards mapping
  one store);
* ``BENCH_kron.json`` — the Kronecker posterior solver on the K=201
  swept-frequency workload: full ``CBMF.fit`` through the Kronecker
  path vs the same fit forced onto the dual/Woodbury path
  (``REPRO_POSTERIOR_SOLVER=dual``), a K-scaling curve, and the
  coefficient-parity numbers the speedup is only valid together with;
* ``BENCH_yield.json`` — the correlation-shared yield estimator on the
  same K=201 sweep: per-state yield RMSE of the shrunk estimator vs
  the independent per-state estimator against a 10⁵-sample Monte-Carlo
  ground truth at equal sampling budget, plus the cluster ``yield``
  endpoint's tracemalloc peak (the proof the shard never densifies an
  MK × MK covariance).

Each report carries the workload fingerprint (circuit, scale, shapes,
repeat count) plus environment info, and every timing is the **median**
over ``--repeats`` runs so a single scheduler hiccup cannot fail CI.
``--suite`` selects one report (``fit``/``serving``/``streaming``/
``cluster``/``kron``/``yield``); the default runs all of them.

``--check`` compares the fresh numbers against committed baselines
(``benchmarks/baselines/`` by default) and exits non-zero when any
timing regresses beyond ``--threshold`` (default 1.5×). The kron suite
additionally enforces *absolute* gates — fit speedup ≥ 5× over the dual
path and coefficient parity ≤ 1e-8 — independent of the baseline; the
yield suite likewise gates on shrunk-beats-independent RMSE and on the
shard's memory peak staying far below the dense-covariance cost.
Baselines are refreshed by re-running with ``--update-baseline`` on a
quiet machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "bench_cluster",
    "bench_fit",
    "bench_kron",
    "bench_serving",
    "bench_streaming",
    "bench_yield",
    "check_kron_gates",
    "check_regression",
    "check_yield_gates",
    "main_bench",
]

#: Default location of the committed baselines.
BASELINE_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"

#: Default regression gate: fail CI when current > baseline × threshold.
DEFAULT_THRESHOLD = 1.5


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock of ``repeats`` calls (first call also warms)."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return float(statistics.median(samples))


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def bench_fit(
    scale_name: str = "medium", repeats: int = 3, seed: int = 2016
) -> dict:
    """Time the fit path on the figure-2 LNA workload at ``scale_name``."""
    from repro.basis.polynomial import LinearBasis
    from repro.core.cbmf import CBMF
    from repro.core.posterior import compute_posterior
    from repro.core.prior import CorrelatedPrior, ar1_correlation
    from repro.paper import SCALES, load_or_simulate

    scale = SCALES[scale_name]
    pool, _ = load_or_simulate("lna", scale, seed)
    train = pool.head(scale.table_cbmf_per_state)
    basis = LinearBasis(pool.n_variables)
    designs = basis.expand_states(train.inputs())
    targets = train.targets("nf_db")

    # Stage timings come from the FitReport of full fits; the posterior
    # microbenchmark isolates the EM inner loop's dominant kernel.
    fits = []

    def one_fit():
        model = CBMF(seed=0).fit(designs, targets)
        fits.append(model.report_)

    fit_median = _median_seconds(one_fit, repeats)
    init_median = float(
        statistics.median(r.init_seconds for r in fits)
    )
    em_median = float(statistics.median(r.em_seconds for r in fits))

    prior = CorrelatedPrior(
        lambdas=np.full(basis.n_basis, 0.5),
        correlation=ar1_correlation(len(designs), 0.8),
    )
    posterior_median = _median_seconds(
        lambda: compute_posterior(
            designs, targets, prior, 0.01, want_blocks=True
        ),
        max(repeats, 5),
    )

    report = fits[-1]
    return {
        "kind": "fit",
        "config": {
            "circuit": "lna",
            "metric": "nf_db",
            "scale": scale_name,
            "seed": seed,
            "n_states": len(designs),
            "n_basis": basis.n_basis,
            "n_rows": int(sum(d.shape[0] for d in designs)),
            "repeats": repeats,
        },
        "env": _environment(),
        "timings_seconds": {
            "cbmf_fit": fit_median,
            "somp_init": init_median,
            "em": em_median,
            "posterior_solve": posterior_median,
        },
        "details": {
            "em_iterations": report.em.n_iterations,
            "em_posterior_seconds": report.em.posterior_seconds,
            "em_mstep_seconds": report.em.mstep_seconds,
            "n_active": report.n_active,
        },
    }


def bench_serving(
    n_states: int = 4,
    n_train: int = 12,
    n_requests: int = 4000,
    n_pool: int = 1000,
    repeats: int = 3,
    seed: int = 2016,
) -> dict:
    """Time the serving path: micro-batched ``predict_many`` throughput."""
    import tempfile

    from repro.circuits.lna import TunableLNA
    from repro.modelset import PerformanceModelSet
    from repro.serving import (
        BatchConfig,
        CacheConfig,
        ModelRegistry,
        ModelService,
    )
    from repro.simulate.montecarlo import MonteCarloEngine

    rng = np.random.default_rng(seed)
    lna = TunableLNA(n_states=n_states, n_variables=None)
    data = MonteCarloEngine(lna, seed=seed).run(n_train + 4)
    train, _ = data.split(n_train)
    models = PerformanceModelSet.fit_dataset(train, method="cbmf", seed=seed)

    pool = rng.standard_normal((n_pool, lna.n_variables))
    x = pool[rng.integers(0, n_pool, n_requests)]
    states = rng.integers(0, n_states, n_requests)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.push("lna", models)
        service = ModelService(
            registry,
            batch=BatchConfig(max_batch_size=64),
            cache=CacheConfig(capacity=16_384),
        )
        service.load("lna@latest")
        service.predict_many("lna", x, states)  # warm caches/BLAS
        batched_median = _median_seconds(
            lambda: service.predict_many("lna", x, states), repeats
        )

    return {
        "kind": "serving",
        "config": {
            "circuit": "lna",
            "n_states": n_states,
            "n_train_per_state": n_train,
            "n_requests": n_requests,
            "n_pool": n_pool,
            "seed": seed,
            "repeats": repeats,
        },
        "env": _environment(),
        "timings_seconds": {
            "predict_many": batched_median,
        },
        "details": {
            "requests_per_second": n_requests / batched_median,
        },
    }


#: Streaming workload dimensions per scale name. The quick/CI baseline
#: uses "small"; the committed speedup claim is measured at "medium".
STREAM_SCALES = {
    "small": dict(
        n_states=4, n_variables=12, n_train=15, batch_size=8, n_batches=12
    ),
    "medium": dict(
        n_states=8, n_variables=40, n_train=30, batch_size=10, n_batches=20
    ),
    "paper": dict(
        n_states=16, n_variables=120, n_train=60, batch_size=16,
        n_batches=30,
    ),
}


def bench_streaming(
    scale_name: str = "medium", repeats: int = 3, seed: int = 2016
) -> dict:
    """Time the streaming path: per-batch absorb vs full warm refit.

    The claim under test is the O(n²·b) Cholesky extension making
    per-batch ingest cheap relative to refitting the whole model from
    scratch on the same rows — ``absorb_batch`` is the median per-batch
    update latency over a fresh stream, ``full_refit`` the median
    warm-started EM refit on everything absorbed so far.
    """
    from repro.active.oracle import SyntheticOracle
    from repro.core.cbmf import CBMF
    from repro.streaming import OnlineCBMF, OracleStream

    dims = STREAM_SCALES[scale_name]
    n_states = dims["n_states"]
    n_variables = dims["n_variables"]
    rng = np.random.default_rng(seed)
    coef = np.zeros((n_states, n_variables + 1))
    coef[:, 0] = 1.0
    for j in rng.choice(n_variables, size=6, replace=False):
        coef[:, j + 1] = rng.normal(0.0, 1.0) + rng.normal(
            0.0, 0.1, size=n_states
        )
    oracle = SyntheticOracle(coef, noise_std=0.05)
    inputs = [
        rng.standard_normal((dims["n_train"], n_variables))
        for _ in range(n_states)
    ]
    targets = [oracle.observe(x, k) for k, x in enumerate(inputs)]
    fitted = CBMF(seed=seed).fit(
        oracle.basis.expand_states(inputs), targets
    )
    # Pre-draw the batches so the timings exclude the oracle.
    batches = list(
        OracleStream(
            oracle,
            n_batches=dims["n_batches"],
            batch_size=dims["batch_size"],
            seed=seed,
        )
    )

    online = None
    absorb_samples = []
    for _ in range(repeats):
        online = OnlineCBMF.from_cbmf(
            fitted, basis=oracle.basis, metric=oracle.metric
        )
        per_batch = []
        for batch in batches:
            started = time.perf_counter()
            online.absorb(batch.x, batch.y, batch.state)
            per_batch.append(time.perf_counter() - started)
        absorb_samples.append(statistics.median(per_batch))
    absorb_median = float(statistics.median(absorb_samples))
    refit_median = _median_seconds(lambda: online.refit(), repeats)

    return {
        "kind": "streaming",
        "config": {
            "scale": scale_name,
            "n_states": n_states,
            "n_variables": n_variables,
            "n_train_per_state": dims["n_train"],
            "batch_size": dims["batch_size"],
            "n_batches": dims["n_batches"],
            "seed": seed,
            "repeats": repeats,
        },
        "env": _environment(),
        "timings_seconds": {
            "absorb_batch": absorb_median,
            "full_refit": refit_median,
        },
        "details": {
            "rows_after_stream": int(online.n_rows),
            "absorb_vs_refit_speedup": refit_median / absorb_median,
        },
    }


#: Cluster workload dimensions per scale name. ``pss_n_basis`` sizes
#: the synthetic model used for the shared-memory accounting (6 states
#: × n_basis float64 ≈ the store footprint being shared).
CLUSTER_SCALES = {
    "small": dict(
        n_shards=2, n_requests=30, rows_per_request=32,
        pss_n_basis=60_000,
    ),
    "medium": dict(
        n_shards=4, n_requests=80, rows_per_request=64,
        pss_n_basis=400_000,
    ),
}


def _drive_requests(predict_many, names, batches) -> None:
    """Hammer a predict_many callable from one thread per model name."""
    from concurrent.futures import ThreadPoolExecutor

    def one(name):
        for x, states in batches[name]:
            predict_many(name, x, states)

    with ThreadPoolExecutor(max_workers=len(names)) as pool:
        for future in [pool.submit(one, name) for name in names]:
            future.result()


def _cluster_pss(registry, key, store_dir, n_shards: int):
    """Summed store PSS of ``n_shards`` workers mapping one store."""
    from repro.cluster import ClusterConfig, ClusterService

    config = ClusterConfig(n_shards=n_shards)
    with ClusterService(
        registry, [key], config=config, store_dir=store_dir
    ) as service:
        snapshots = service.shard_engine_snapshots()
        values = [s.get("store_pss_bytes") for s in snapshots]
        store_bytes = snapshots[0].get("store_bytes", 0)
    if any(v is None for v in values) or len(values) != n_shards:
        return None, store_bytes
    return int(sum(values)), store_bytes


def bench_cluster(
    scale_name: str = "medium", repeats: int = 3, seed: int = 2016
) -> dict:
    """Time the cluster: multi-shard throughput vs one process, plus PSS.

    Throughput compares the same threaded request stream (one client
    thread per model name, caches disabled so every request costs a
    matmul) against a single-process ``ModelService`` and an
    ``n_shards``-worker ``ClusterService``. On a many-core machine the
    shards' matmuls run in true parallel; on one core the cluster pays the
    transport overhead without the parallel payoff — ``details``
    records ``cpu_count`` so readers can interpret the speedup.

    The memory half exports one deliberately large model and compares
    the *summed* store PSS of ``n_shards`` workers against one worker
    mapping the same store: shared pages are charged 1/N to each
    mapper, so near-perfect sharing keeps the sum near 1× the store
    size.
    """
    import os
    import tempfile

    from repro.basis.polynomial import LinearBasis
    from repro.circuits.lna import TunableLNA
    from repro.cluster import ClusterConfig, ClusterService
    from repro.core.frozen import FrozenModel
    from repro.modelset import PerformanceModelSet
    from repro.serving import (
        BatchConfig,
        CacheConfig,
        ModelRegistry,
        ModelService,
    )
    from repro.simulate.montecarlo import MonteCarloEngine

    dims = CLUSTER_SCALES[scale_name]
    n_shards = dims["n_shards"]
    rng = np.random.default_rng(seed)
    lna = TunableLNA(n_states=4, n_variables=None)
    data = MonteCarloEngine(lna, seed=seed).run(16)
    train, _ = data.split(12)
    models = PerformanceModelSet.fit_dataset(train, method="somp", seed=seed)

    names = [f"lna{i}" for i in range(n_shards)]
    batches = {
        name: [
            (
                rng.standard_normal(
                    (dims["rows_per_request"], lna.n_variables)
                ),
                rng.integers(0, 4, dims["rows_per_request"]),
            )
            for _ in range(dims["n_requests"])
        ]
        for name in names
    }
    n_rows_total = n_shards * dims["n_requests"] * dims["rows_per_request"]
    batch_cfg = BatchConfig(max_batch_size=128)
    cache_cfg = CacheConfig(capacity=0)  # measure compute, not the LRU

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        for name in names:
            registry.push(name, models)

        service = ModelService(
            registry, batch=batch_cfg, cache=cache_cfg
        )
        for name in names:
            service.load(f"{name}@latest")
        _drive_requests(service.predict_many, names, batches)  # warm BLAS
        single_median = _median_seconds(
            lambda: _drive_requests(
                service.predict_many, names, batches
            ),
            repeats,
        )

        config = ClusterConfig(
            n_shards=n_shards, batch=batch_cfg, cache=cache_cfg
        )
        with ClusterService(
            registry,
            [f"{name}@v1" for name in names],
            config=config,
            store_dir=Path(tmp) / "store",
        ) as cluster:
            _drive_requests(cluster.predict_many, names, batches)
            cluster_median = _median_seconds(
                lambda: _drive_requests(
                    cluster.predict_many, names, batches
                ),
                repeats,
            )

            # TCP-loopback lane: same cluster, same request stream, but
            # every call crosses a real socket through the listener and
            # pays frame encode/decode both ways.
            from repro.cluster import ClusterClient, ClusterListener

            with ClusterListener(cluster, "127.0.0.1:0") as listener:
                clients = {
                    name: ClusterClient(listener.address)
                    for name in names
                }
                try:
                    tcp_predict = lambda name, x, states: (  # noqa: E731
                        clients[name].predict_many(name, x, states)
                    )
                    _drive_requests(tcp_predict, names, batches)
                    tcp_median = _median_seconds(
                        lambda: _drive_requests(
                            tcp_predict, names, batches
                        ),
                        repeats,
                    )
                finally:
                    for client in clients.values():
                        client.close()

        # Shared-memory accounting on a model big enough to dwarf page
        # noise: N workers mapping one store must together cost ~1× it.
        big = PerformanceModelSet(
            {
                "metric": FrozenModel(
                    coef=rng.standard_normal((6, dims["pss_n_basis"])),
                    metric="metric",
                )
            },
            LinearBasis(dims["pss_n_basis"] - 1),
        )
        registry.push("pss", big)
        pss_single, store_bytes = _cluster_pss(
            registry, "pss@v1", Path(tmp) / "pss_store_1", 1
        )
        pss_multi, _ = _cluster_pss(
            registry, "pss@v1", Path(tmp) / "pss_store_n", n_shards
        )

    return {
        "kind": "cluster",
        "config": {
            "scale": scale_name,
            "n_shards": n_shards,
            "n_requests": dims["n_requests"],
            "rows_per_request": dims["rows_per_request"],
            "pss_n_basis": dims["pss_n_basis"],
            "seed": seed,
            "repeats": repeats,
        },
        "env": _environment(),
        "timings_seconds": {
            "single_process": single_median,
            "cluster": cluster_median,
            "cluster_tcp": tcp_median,
        },
        "details": {
            "cpu_count": os.cpu_count(),
            "rows_total": n_rows_total,
            "single_rows_per_second": n_rows_total / single_median,
            "cluster_rows_per_second": n_rows_total / cluster_median,
            "cluster_vs_single_speedup": single_median / cluster_median,
            "tcp_rows_per_second": n_rows_total / tcp_median,
            "tcp_vs_socketpair_ratio": tcp_median / cluster_median,
            "store_bytes": store_bytes,
            "pss_bytes_1_shard": pss_single,
            "pss_bytes_n_shards": pss_multi,
            "pss_share_ratio": (
                None
                if not pss_single or pss_multi is None
                else pss_multi / pss_single
            ),
        },
    }


#: Absolute gates of the kron suite (ISSUE 8 acceptance criteria):
#: the Kronecker fit must beat the dual-path fit by at least this factor
#: at K=201 while matching its coefficients (and the dense oracle on the
#: sub-problem) to this relative tolerance.
KRON_MIN_SPEEDUP = 5.0
KRON_PARITY_RTOL = 1e-8

#: The K-scaling curve recorded in the kron report / EXPERIMENTS.md.
KRON_K_CURVE = (32, 64, 128, 201)


def bench_kron(
    repeats: int = 3,
    seed: int = 2016,
    n_points: int = 201,
    n_train: int = 10,
    k_curve=KRON_K_CURVE,
) -> dict:
    """Time ``CBMF.fit`` on the swept-frequency workload: kron vs dual.

    Both arms run the *identical* pipeline (same data, same single-point
    CV grid, same EM cap); only ``REPRO_POSTERIOR_SOLVER`` differs, so
    the measured ratio is purely the solver. The dual arm is timed once
    per K (it costs minutes at K=201 — exactly the problem the Kronecker
    path removes); the kron arm reports the median over ``repeats``.
    Coefficient parity is recorded at full K between the two arms, and
    both fast paths are checked against ``compute_posterior_dense`` on a
    column/state-restricted sub-problem small enough to materialize the
    MK × MK prior.
    """
    import os

    from repro.basis.polynomial import LinearBasis
    from repro.core.cbmf import CBMF
    from repro.core.em import EmConfig
    from repro.core.posterior import compute_posterior, compute_posterior_dense
    from repro.core.prior import CorrelatedPrior, ar1_correlation
    from repro.core.somp_init import InitConfig
    from repro.paper import simulate_sweep

    train = simulate_sweep(
        n_points=n_points, n_samples_per_state=n_train, seed=seed
    )
    basis = LinearBasis(train.n_variables)
    designs = basis.expand_states(train.inputs())
    targets = train.targets("s21_db")
    # Single-point CV grid: both arms deterministically pick the same
    # (r0, σ0, θ), so the final coefficients are comparable bit-for-bit
    # modulo solver round-off — the parity this report gates on.
    init_config = InitConfig(
        r0_grid=(0.95,),
        sigma0_grid=(0.15,),
        n_basis_grid=(20,),
        n_folds=2,
    )
    em_config = EmConfig(max_iterations=8)

    def fit(n_states: int) -> "CBMF":
        model = CBMF(
            init_config=init_config, em_config=em_config, seed=seed
        )
        return model.fit(designs[:n_states], targets[:n_states])

    def timed_dual(fn):
        previous = os.environ.get("REPRO_POSTERIOR_SOLVER")
        os.environ["REPRO_POSTERIOR_SOLVER"] = "dual"
        try:
            started = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - started
        finally:
            if previous is None:
                del os.environ["REPRO_POSTERIOR_SOLVER"]
            else:
                os.environ["REPRO_POSTERIOR_SOLVER"] = previous

    curve = []
    kron_models = {}
    for k in k_curve:
        if k > n_points:
            continue
        started = time.perf_counter()
        kron_models[k] = fit(k)
        kron_seconds = time.perf_counter() - started
        _, dual_seconds = timed_dual(lambda: fit(k))
        curve.append(
            {
                "k": int(k),
                "kron_seconds": kron_seconds,
                "dual_seconds": dual_seconds,
                "speedup": dual_seconds / kron_seconds,
            }
        )

    # Headline: median kron fit at full K against the (single) dual run.
    kron_median = _median_seconds(lambda: fit(n_points), max(repeats, 1))
    dual_model, dual_seconds = timed_dual(lambda: fit(n_points))
    kron_model = kron_models.get(n_points) or fit(n_points)
    denom = float(np.max(np.abs(dual_model.coef_))) or 1.0
    coef_parity = float(
        np.max(np.abs(kron_model.coef_ - dual_model.coef_)) / denom
    )

    # Dense-oracle parity on a sub-problem that fits in memory: first 32
    # states, first 60 basis columns (MK = 1920).
    k_sub, m_sub = min(32, n_points), min(60, basis.n_basis)
    sub_designs = [d[:, :m_sub] for d in designs[:k_sub]]
    sub_targets = targets[:k_sub]
    sub_prior = CorrelatedPrior(
        lambdas=np.full(m_sub, 0.5),
        correlation=ar1_correlation(k_sub, 0.9),
    )
    dense = compute_posterior_dense(
        sub_designs, sub_targets, sub_prior, 0.01
    )
    dense_scale = float(np.max(np.abs(dense.mean))) or 1.0

    def parity_vs_dense(method: str) -> float:
        result = compute_posterior(
            sub_designs, sub_targets, sub_prior, 0.01, method=method
        )
        return float(
            np.max(np.abs(result.mean - dense.mean)) / dense_scale
        )

    return {
        "kind": "kron",
        "config": {
            "circuit": "lna_sweep",
            "metric": "s21_db",
            "n_points": n_points,
            "n_train_per_state": n_train,
            "n_basis": basis.n_basis,
            "seed": seed,
            "repeats": repeats,
            "k_curve": [point["k"] for point in curve],
        },
        "env": _environment(),
        "timings_seconds": {
            "kron_fit_k201": kron_median,
            "dual_fit_k201": dual_seconds,
        },
        "details": {
            "solver_used": kron_model.predictor.solver,
            "speedup_vs_dual": dual_seconds / kron_median,
            "coef_parity_vs_dual": coef_parity,
            "kron_vs_dense_parity": parity_vs_dense("kron"),
            "dual_vs_dense_parity": parity_vs_dense("dual"),
            "k_scaling": curve,
        },
    }


def check_kron_gates(report: dict) -> List[str]:
    """Absolute acceptance gates of the kron report (baseline-free)."""
    problems: List[str] = []
    details = report.get("details", {})
    speedup = details.get("speedup_vs_dual", 0.0)
    if speedup < KRON_MIN_SPEEDUP:
        problems.append(
            f"kron fit speedup {speedup:.2f}× below the "
            f"{KRON_MIN_SPEEDUP}× gate"
        )
    for key in ("coef_parity_vs_dual", "kron_vs_dense_parity",
                "dual_vs_dense_parity"):
        value = details.get(key)
        if value is None or value > KRON_PARITY_RTOL:
            problems.append(
                f"kron parity {key}={value} exceeds {KRON_PARITY_RTOL}"
            )
    if details.get("solver_used") != "kron":
        problems.append(
            "the benchmarked fit did not take the Kronecker path "
            f"(solver_used={details.get('solver_used')!r})"
        )
    return problems


#: Fixed workload of the yield suite (ISSUE 9 acceptance criteria).
#: The config is deliberately independent of ``--quick``/``--scale`` so
#: the committed baseline matches every invocation; only ``repeats``
#: (excluded from the fingerprint) varies.
YIELD_SPECS = ("s21_db>=16.5", "nf_db<=1.55")
YIELD_BUDGET = 400
YIELD_MC_SAMPLES = 100_000
YIELD_REPS = 5
#: The shard's tracemalloc peak while answering the yield query must
#: stay below this fraction of the dense MK × MK covariance it would
#: take to answer naively (K=201, M≈238 ⇒ ~18 GB dense).
YIELD_PEAK_FRACTION = 0.01


def bench_yield(
    repeats: int = 3,
    seed: int = 2016,
    n_points: int = 201,
    n_train: int = 10,
) -> dict:
    """Yield-estimator quality + the cluster ``yield`` endpoint memory.

    Fits the K=201 swept-frequency workload once (the same fast
    single-point CV grid as the kron suite), then treats the fitted
    posterior mean as the population: a ``YIELD_MC_SAMPLES``-sample
    Monte-Carlo pass defines the ground-truth per-state yield under
    ``YIELD_SPECS``. Each of ``YIELD_REPS`` seeded replicates draws the
    small equal budget (``YIELD_BUDGET`` samples/state), estimates
    per-state yield twice from the *same* draws — independently
    (empirical fraction per state) and with correlation-shared
    shrinkage across the learned K × K prior correlation — and the
    report records both RMSE curves. The cluster arm pushes the frozen
    set to a one-shard ``ClusterService`` and answers the identical
    query through the ``yield`` frame, recording the shard's
    tracemalloc peak next to the dense-covariance byte count it must
    stay far below.
    """
    import tempfile

    from repro.applications.yield_estimation import Specification
    from repro.basis.polynomial import LinearBasis
    from repro.cluster import ClusterConfig, ClusterService
    from repro.core.cbmf import CBMF
    from repro.core.em import EmConfig
    from repro.core.somp_init import InitConfig
    from repro.modelset import PerformanceModelSet
    from repro.paper import simulate_sweep
    from repro.serving import ModelRegistry
    from repro.yields import compute_yield_report, sample_state_estimates

    train = simulate_sweep(
        n_points=n_points, n_samples_per_state=n_train, seed=seed
    )
    basis = LinearBasis(train.n_variables)
    designs = basis.expand_states(train.inputs())
    init_config = InitConfig(
        r0_grid=(0.95,),
        sigma0_grid=(0.15,),
        n_basis_grid=(20,),
        n_folds=2,
    )
    em_config = EmConfig(max_iterations=8)

    fitted = {}

    def one_fit():
        for metric in train.metric_names:
            model = CBMF(
                init_config=init_config, em_config=em_config, seed=seed
            )
            fitted[metric] = model.fit(designs, train.targets(metric))

    fit_median = _median_seconds(one_fit, max(repeats, 1))
    models = PerformanceModelSet(fitted, basis)
    frozen = models.freeze()
    specs = [Specification.parse(text) for text in YIELD_SPECS]

    # Ground truth: the big Monte-Carlo pass through the same frozen
    # models, on a stream disjoint from every replicate's budget draw.
    truth = sample_state_estimates(
        frozen, basis, specs,
        n_samples=YIELD_MC_SAMPLES, seed=seed + 500_000,
    ).yields

    rmse_raw: List[float] = []
    rmse_shrunk: List[float] = []
    estimate_samples: List[float] = []
    last_report = None
    for rep in range(YIELD_REPS):
        started = time.perf_counter()
        estimates = sample_state_estimates(
            frozen, basis, specs,
            n_samples=YIELD_BUDGET, seed=seed + rep,
        )
        estimate_samples.append(time.perf_counter() - started)
        last_report = compute_yield_report(
            frozen, basis, specs,
            n_samples=YIELD_BUDGET, seed=seed + rep, estimates=estimates,
        )
        rmse_raw.append(float(
            np.sqrt(np.mean((last_report.yield_raw - truth) ** 2))
        ))
        rmse_shrunk.append(float(
            np.sqrt(np.mean((last_report.yield_shrunk - truth) ** 2))
        ))
    estimate_median = float(statistics.median(estimate_samples))
    rmse_raw_mean = float(np.mean(rmse_raw))
    rmse_shrunk_mean = float(np.mean(rmse_shrunk))

    # Cluster arm: the same query answered by a shard from the shared
    # store, peak-metered. The dense alternative would materialize an
    # MK × MK covariance — record its byte cost next to the peak.
    dense_cov_bytes = int((basis.n_basis * n_points) ** 2 * 8)
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        registry.push("lna_sweep", models)
        config = ClusterConfig(n_shards=1)
        with ClusterService(
            registry,
            ["lna_sweep@v1"],
            config=config,
            store_dir=Path(tmp) / "store",
        ) as cluster:
            started = time.perf_counter()
            reply = cluster.yield_report(
                "lna_sweep",
                list(YIELD_SPECS),
                n_samples=YIELD_BUDGET,
                seed=seed,
                deadline_s=300.0,
            )
            cluster_seconds = time.perf_counter() - started

    return {
        "kind": "yield",
        "config": {
            "circuit": "lna_sweep",
            "specs": list(YIELD_SPECS),
            "n_points": n_points,
            "n_train_per_state": n_train,
            "n_basis": basis.n_basis,
            "budget_per_state": YIELD_BUDGET,
            "mc_samples": YIELD_MC_SAMPLES,
            "n_reps": YIELD_REPS,
            "seed": seed,
            "repeats": repeats,
        },
        "env": _environment(),
        "timings_seconds": {
            "fit": fit_median,
            "estimate": estimate_median,
            "cluster_yield": cluster_seconds,
        },
        "details": {
            "rmse_independent": rmse_raw_mean,
            "rmse_shrunk": rmse_shrunk_mean,
            "rmse_improvement": (
                rmse_raw_mean / rmse_shrunk_mean
                if rmse_shrunk_mean > 0 else None
            ),
            "rmse_independent_per_rep": rmse_raw,
            "rmse_shrunk_per_rep": rmse_shrunk,
            "tau2": last_report.tau2,
            "correlation_shared": last_report.correlation_shared,
            "fleet_yield": last_report.fleet_yield,
            "cluster_peak_bytes": int(reply["peak_bytes"]),
            "dense_cov_bytes": dense_cov_bytes,
            "peak_fraction_of_dense": (
                reply["peak_bytes"] / dense_cov_bytes
            ),
            "cluster_version": reply["version"],
        },
    }


def check_yield_gates(report: dict) -> List[str]:
    """Absolute acceptance gates of the yield report (baseline-free)."""
    problems: List[str] = []
    details = report.get("details", {})
    raw = details.get("rmse_independent")
    shrunk = details.get("rmse_shrunk")
    if raw is None or shrunk is None or not shrunk < raw:
        problems.append(
            f"shrunk yield RMSE {shrunk} does not beat the independent "
            f"estimator {raw} at equal budget"
        )
    if not details.get("correlation_shared"):
        problems.append(
            "the report did not use the learned correlation "
            "(correlation_shared is false — shrinkage fell back to "
            "independent intervals)"
        )
    peak = details.get("cluster_peak_bytes")
    dense = details.get("dense_cov_bytes")
    if peak is None or dense is None or peak >= dense * YIELD_PEAK_FRACTION:
        problems.append(
            f"cluster yield endpoint peaked at {peak} bytes — not far "
            f"enough below the dense MK×MK covariance ({dense} bytes, "
            f"gate {YIELD_PEAK_FRACTION:.0%})"
        )
    return problems


def check_regression(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> List[str]:
    """Compare one report against its baseline; return regression messages.

    The workload fingerprints must agree (same circuit/scale/shapes) —
    otherwise the comparison is meaningless and reported as such. The
    environment block is informational only: baselines from a faster or
    slower machine are exactly what the ×``threshold`` headroom absorbs.
    """
    problems: List[str] = []
    workload_keys = set(baseline.get("config", {})) - {"repeats"}
    for key in sorted(workload_keys):
        if current["config"].get(key) != baseline["config"].get(key):
            problems.append(
                f"config mismatch on {key!r}: current "
                f"{current['config'].get(key)!r} vs baseline "
                f"{baseline['config'].get(key)!r} — refresh the baseline"
            )
    if problems:
        return problems
    for name, base_value in baseline.get("timings_seconds", {}).items():
        value = current.get("timings_seconds", {}).get(name)
        if value is None:
            problems.append(f"timing {name!r} missing from current run")
            continue
        if base_value > 0 and value > base_value * threshold:
            problems.append(
                f"{current['kind']}:{name} regressed {value / base_value:.2f}× "
                f"({value:.4f}s vs baseline {base_value:.4f}s, "
                f"gate {threshold}×)"
            )
    return problems


def _write_report(report: dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


#: Suite registry: report filename per suite, in run order.
SUITES = ("fit", "serving", "streaming", "cluster", "kron", "yield")


def main_bench(args: argparse.Namespace) -> int:
    """Entry point of ``python -m repro bench``."""
    scale_name = "small" if args.quick else args.scale
    repeats = args.repeats if args.repeats else (3 if args.quick else 5)
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    baseline_dir = Path(args.baseline_dir)
    selected = SUITES if args.suite == "all" else (args.suite,)

    reports: Dict[str, dict] = {}

    if "fit" in selected:
        print(
            f"benchmarking fit path (scale={scale_name}, "
            f"repeats={repeats}) ..."
        )
        fit_report = bench_fit(scale_name, repeats=repeats, seed=args.seed)
        timings = fit_report["timings_seconds"]
        print(
            f"  cbmf_fit {timings['cbmf_fit']:.3f}s  "
            f"somp_init {timings['somp_init']:.3f}s  "
            f"em {timings['em']:.3f}s  "
            f"posterior {timings['posterior_solve'] * 1e3:.2f}ms"
        )
        reports["BENCH_fit.json"] = fit_report

    if "serving" in selected:
        print("benchmarking serving path ...")
        serving_report = bench_serving(repeats=repeats, seed=args.seed)
        serving_t = serving_report["timings_seconds"]["predict_many"]
        print(
            f"  predict_many {serving_t:.3f}s "
            f"({serving_report['details']['requests_per_second']:,.0f} "
            "req/s)"
        )
        reports["BENCH_serving.json"] = serving_report

    if "streaming" in selected:
        print("benchmarking streaming path ...")
        streaming_report = bench_streaming(
            scale_name, repeats=repeats, seed=args.seed
        )
        streaming_t = streaming_report["timings_seconds"]
        print(
            f"  absorb_batch {streaming_t['absorb_batch'] * 1e3:.3f}ms  "
            f"full_refit {streaming_t['full_refit']:.3f}s  "
            f"(speedup "
            f"{streaming_report['details']['absorb_vs_refit_speedup']:.0f}x)"
        )
        reports["BENCH_streaming.json"] = streaming_report

    if "cluster" in selected:
        print("benchmarking cluster path ...")
        cluster_report = bench_cluster(
            scale_name, repeats=repeats, seed=args.seed
        )
        cluster_d = cluster_report["details"]
        ratio = cluster_d["pss_share_ratio"]
        print(
            f"  single {cluster_d['single_rows_per_second']:,.0f} rows/s  "
            f"cluster {cluster_d['cluster_rows_per_second']:,.0f} rows/s  "
            f"tcp {cluster_d['tcp_rows_per_second']:,.0f} rows/s  "
            f"(speedup {cluster_d['cluster_vs_single_speedup']:.2f}x on "
            f"{cluster_d['cpu_count']} cores; tcp/socketpair "
            f"{cluster_d['tcp_vs_socketpair_ratio']:.2f}x; pss share "
            f"{'n/a' if ratio is None else f'{ratio:.2f}x'})"
        )
        reports["BENCH_cluster.json"] = cluster_report

    if "kron" in selected:
        print("benchmarking kron solver (K=201 sweep, dual arm runs "
              "once) ...")
        kron_report = bench_kron(repeats=repeats, seed=args.seed)
        kron_t = kron_report["timings_seconds"]
        kron_d = kron_report["details"]
        print(
            f"  kron_fit {kron_t['kron_fit_k201']:.3f}s  "
            f"dual_fit {kron_t['dual_fit_k201']:.3f}s  "
            f"(speedup {kron_d['speedup_vs_dual']:.1f}x, coef parity "
            f"{kron_d['coef_parity_vs_dual']:.2e})"
        )
        reports["BENCH_kron.json"] = kron_report

    if "yield" in selected:
        print("benchmarking yield estimator (K=201 sweep, "
              f"{YIELD_MC_SAMPLES:,}-sample MC ground truth) ...")
        yield_report = bench_yield(repeats=repeats, seed=args.seed)
        yield_d = yield_report["details"]
        print(
            f"  rmse independent {yield_d['rmse_independent']:.4f}  "
            f"shrunk {yield_d['rmse_shrunk']:.4f}  "
            f"(improvement {yield_d['rmse_improvement']:.2f}x; shard "
            f"peak {yield_d['cluster_peak_bytes'] / 1e6:.1f} MB vs "
            f"{yield_d['dense_cov_bytes'] / 1e9:.1f} GB dense)"
        )
        reports["BENCH_yield.json"] = yield_report

    for name, report in reports.items():
        _write_report(report, output_dir / name)

    if args.update_baseline:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for name, report in reports.items():
            _write_report(report, baseline_dir / name)
        return 0

    if args.check:
        failures: List[str] = []
        for name, report in reports.items():
            baseline_path = baseline_dir / name
            if baseline_path.exists():
                baseline = json.loads(baseline_path.read_text())
                failures.extend(
                    check_regression(
                        report, baseline, threshold=args.threshold
                    )
                )
            else:
                print(f"no baseline at {baseline_path}; skipping check")
            if report["kind"] == "kron":
                # Absolute gates, enforced with or without a baseline.
                failures.extend(check_kron_gates(report))
            if report["kind"] == "yield":
                failures.extend(check_yield_gates(report))
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"no regressions beyond {args.threshold}× — ok")
    return 0


def add_bench_parser(sub) -> None:
    """Register the ``bench`` subcommand on a subparsers object."""
    p = sub.add_parser(
        "bench",
        help="fit/serving benchmarks with JSON reports and regression gate",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="small scale + fewer repeats (the CI perf-smoke setting)",
    )
    p.add_argument(
        "--suite", default="all", choices=("all",) + SUITES,
        help="run a single benchmark suite (default: all)",
    )
    p.add_argument(
        "--scale", default="medium",
        help="fit workload scale when not --quick (default: medium)",
    )
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per stage (median is reported)")
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--output-dir", default=".",
                   help="where BENCH_*.json land (default: cwd)")
    p.add_argument(
        "--baseline-dir", default=str(BASELINE_DIR),
        help="committed baselines (default: benchmarks/baselines)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="compare against the baselines; exit 1 on regression",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baselines with this run's numbers",
    )
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="regression gate ratio (default: 1.5)")
