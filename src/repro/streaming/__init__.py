"""Streaming subsystem: online Bayesian updates feeding continuous serving.

The pieces, in data-flow order:

* :mod:`repro.streaming.sources` — batch producers (live oracle ingest,
  recorded-stream replay, drift injection);
* :mod:`repro.streaming.online` — :class:`OnlineCBMF`, the low-rank
  posterior updater over a fitted C-BMF at frozen hyper-parameters;
* :mod:`repro.streaming.drift` — calibration monitoring that decides
  when the frozen hyper-parameters have expired;
* :mod:`repro.streaming.service` — the loop wiring ingest, absorb,
  drift-triggered refits, registry pushes and serving hot-swaps;
* :mod:`repro.streaming.metrics` — telemetry for all of the above.
"""

from repro.streaming.drift import DriftConfig, DriftDecision, DriftMonitor
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.online import OnlineCBMF
from repro.streaming.service import (
    BatchRecord,
    StreamingConfig,
    StreamingReport,
    StreamingService,
)
from repro.streaming.sources import (
    OracleStream,
    ReplayStream,
    ShiftedOracle,
    StreamBatch,
    record_stream,
)

__all__ = [
    "BatchRecord",
    "DriftConfig",
    "DriftDecision",
    "DriftMonitor",
    "OnlineCBMF",
    "OracleStream",
    "ReplayStream",
    "ShiftedOracle",
    "StreamBatch",
    "StreamingConfig",
    "StreamingMetrics",
    "StreamingReport",
    "StreamingService",
    "record_stream",
]
