"""The streaming loop: ingest → absorb → drift-check → push → hot-swap.

``StreamingService`` consumes any iterable of
:class:`~repro.streaming.sources.StreamBatch` and keeps three artifacts
continuously in sync:

1. the **live posterior** — an :class:`~repro.streaming.online.OnlineCBMF`
   absorbing every healthy batch via the O(n²·b) Cholesky extension;
2. the **registry** — a fresh ``name@vN`` is pushed after every
   ``push_every``-th absorb (and always after a refit), so the full
   model lineage of a stream is replayable from disk;
3. the **serving plane** — an optional
   :class:`~repro.serving.service.ModelService` is hot-swapped to each
   pushed version; a failed swap rides PR 4's fallback (the previous
   version keeps answering) and is only *counted* here.

Robustness contract, per batch:

* a batch that raises out of the source (oracle failure), fails the
  injected ``"stream"`` fault site, carries non-finite values, or makes
  the Cholesky update numerically infeasible is **quarantined** — the
  posterior, registry and serving plane are untouched by it;
* ``max_consecutive_failures`` poisoned batches in a row abort the run
  (a dead testbench, not sporadic noise) with the partial report
  attached to the raised :class:`~repro.errors.SimulationError`;
* drift (scored on each batch *before* absorbing it, see
  :mod:`repro.streaming.drift`) schedules a full warm-started EM refit;
  the monitor resets and the refit model is pushed immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.errors import NumericalError, ServingError, SimulationError
from repro.faults import FaultPlan, apply_stream_fault
from repro.serving.registry import ModelRegistry, RegistryEntry
from repro.serving.service import ModelService
from repro.streaming.drift import DriftConfig, DriftMonitor
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.online import OnlineCBMF
from repro.streaming.sources import StreamBatch

__all__ = ["BatchRecord", "StreamingConfig", "StreamingReport",
           "StreamingService"]


@dataclass(frozen=True)
class StreamingConfig:
    """Policy knobs of one streaming run.

    Parameters
    ----------
    name:
        Registry name the stream publishes under.
    push_every:
        Push (and hot-swap) after every Nth absorbed batch; refits
        always push regardless.
    drift:
        Drift-monitor configuration; ``None`` uses the defaults.
    fault_plan / fault_site:
        Chaos hook: a :class:`FaultPlan` fired per ingested batch at
        ``fault_site`` (see :func:`repro.faults.apply_stream_fault`).
    max_consecutive_failures:
        Abort the run after this many quarantined batches in a row.
    refit_window:
        Forgetting window for drift-triggered refits: refit on the most
        recent N absorbed batches only (``None`` keeps everything). A
        drift verdict certifies that older rows belong to a dead regime,
        so a finite window is what actually re-anchors the model.
    refit_max_workers:
        Worker budget forwarded to drift-triggered refits.
    on_push:
        Optional callback invoked with each pushed
        :class:`RegistryEntry` right after it lands in the registry
        (before the serving hot-swap). This is the cluster-integration
        hook: a gateway can canary each streamed version
        (``ClusterService.set_canary``) instead of cutting over
        blindly. Exceptions propagate — a broken hook should stop the
        stream, not silently decouple it from its consumer.
    """

    name: str = "stream"
    push_every: int = 1
    drift: Optional[DriftConfig] = None
    fault_plan: Optional[FaultPlan] = None
    fault_site: str = "stream"
    max_consecutive_failures: int = 5
    refit_window: Optional[int] = None
    refit_max_workers: Optional[int] = None
    on_push: Optional[Callable[["RegistryEntry"], None]] = None

    def __post_init__(self) -> None:
        if self.push_every < 1:
            raise ValueError(
                f"push_every must be >= 1, got {self.push_every}"
            )
        if self.max_consecutive_failures < 1:
            raise ValueError(
                "max_consecutive_failures must be >= 1, got "
                f"{self.max_consecutive_failures}"
            )
        if self.refit_window is not None and self.refit_window < 1:
            raise ValueError(
                f"refit_window must be >= 1, got {self.refit_window}"
            )


@dataclass(frozen=True)
class BatchRecord:
    """The audit trail of one ingested batch."""

    index: int
    state: Optional[int]
    n_rows: int
    action: str  # "absorbed" | "quarantined"
    error: Optional[str] = None
    drift_score: Optional[float] = None
    drift_smoothed: Optional[float] = None
    drifted: bool = False
    refit: bool = False
    pushed_key: Optional[str] = None
    swap: Optional[str] = None  # "ok" | "failed" | None


@dataclass
class StreamingReport:
    """What one :meth:`StreamingService.run` did, end to end."""

    records: List[BatchRecord] = field(default_factory=list)
    refits: int = 0
    final_key: Optional[str] = None
    aborted: bool = False

    @property
    def absorbed(self) -> int:
        """How many batches were folded into the posterior."""
        return sum(1 for r in self.records if r.action == "absorbed")

    @property
    def quarantined(self) -> int:
        """How many batches were dropped as poisoned."""
        return sum(1 for r in self.records if r.action == "quarantined")

    def summary(self) -> dict:
        """Plain-dict digest (CLI/JSON friendly)."""
        return {
            "batches": len(self.records),
            "absorbed": self.absorbed,
            "quarantined": self.quarantined,
            "refits": self.refits,
            "final_key": self.final_key,
            "aborted": self.aborted,
        }


class StreamingService:
    """Run the absorb/drift/push/swap loop over a batch stream.

    Parameters
    ----------
    online:
        The live updater (must carry a basis so pushes can serve raw x).
    registry:
        Where model versions are published.
    config:
        Policy knobs; see :class:`StreamingConfig`.
    serving:
        Optional serving plane to hot-swap; omit to only publish.
    metrics:
        Optional shared :class:`StreamingMetrics`; created if absent.
    """

    def __init__(
        self,
        online: OnlineCBMF,
        registry: ModelRegistry,
        config: Optional[StreamingConfig] = None,
        serving: Optional[ModelService] = None,
        metrics: Optional[StreamingMetrics] = None,
    ) -> None:
        self.online = online
        self.registry = registry
        self.config = config or StreamingConfig()
        self.serving = serving
        self.metrics = metrics if metrics is not None else StreamingMetrics()
        self.monitor = DriftMonitor(self.config.drift)
        self._absorbs_since_push = 0

    # ------------------------------------------------------------------
    def _push(self, reason: str) -> RegistryEntry:
        """Publish the current posterior mean and hot-swap serving."""
        entry = self.registry.push(
            self.config.name,
            self.online.modelset(),
            extra={
                "streaming": {
                    "reason": reason,
                    "rows": int(self.online.n_rows),
                    "absorbed_batches": int(
                        self.online.n_absorbed_batches
                    ),
                    "refits": int(self.metrics.refits),
                }
            },
        )
        self.metrics.record_push()
        self._absorbs_since_push = 0
        if self.config.on_push is not None:
            self.config.on_push(entry)
        return entry

    def _swap(self, entry: RegistryEntry) -> str:
        if self.serving is None:
            return "skipped"
        try:
            self.serving.swap(entry.key)
        except ServingError:
            # PR 4 contract: the previous version is still serving.
            self.metrics.record_swap_failure()
            return "failed"
        self.metrics.record_swap()
        return "ok"

    # ------------------------------------------------------------------
    def run(self, stream: Iterable[StreamBatch]) -> StreamingReport:
        """Consume ``stream`` to exhaustion; returns the audit report.

        The initial model is pushed (and loaded into serving) before the
        first batch, so consumers have a version to query from t=0.
        """
        report = StreamingReport()
        entry = self._push("initial")
        report.final_key = entry.key
        if self.serving is not None:
            self.serving.load(entry.key)

        consecutive_failures = 0
        iterator = iter(stream)
        position = 0
        while True:
            try:
                batch = next(iterator)
            except StopIteration:
                break
            except SimulationError as error:
                # The source failed producing this batch; the iterator
                # itself survives (OracleStream contract) — quarantine
                # an empty placeholder and move on.
                self.metrics.record_batch_seen()
                self.metrics.record_quarantine(0)
                record = BatchRecord(
                    index=position,
                    state=None,
                    n_rows=0,
                    action="quarantined",
                    error=f"{type(error).__name__}: {error}",
                )
                report.records.append(record)
                position += 1
                consecutive_failures += 1
                if self._should_abort(consecutive_failures, report):
                    return report
                continue
            position = batch.index + 1
            record = self._ingest(batch, report)
            report.records.append(record)
            if record.action == "quarantined":
                consecutive_failures += 1
                if self._should_abort(consecutive_failures, report):
                    return report
            else:
                consecutive_failures = 0
                if record.pushed_key is not None:
                    report.final_key = record.pushed_key
        return report

    def _should_abort(self, failures: int, report: StreamingReport) -> bool:
        if failures < self.config.max_consecutive_failures:
            return False
        report.aborted = True
        raise SimulationError(
            f"{failures} consecutive poisoned batches; aborting the "
            f"stream (report: {report.summary()})"
        )

    # ------------------------------------------------------------------
    def _ingest(
        self, batch: StreamBatch, report: StreamingReport
    ) -> BatchRecord:
        """Process one batch end to end; never raises for batch faults."""
        self.metrics.record_batch_seen()
        cfg = self.config
        try:
            values = apply_stream_fault(
                cfg.fault_plan, batch.y, site=cfg.fault_site
            )
        except SimulationError as error:
            self.metrics.record_quarantine(batch.n_rows)
            return BatchRecord(
                index=batch.index,
                state=batch.state,
                n_rows=batch.n_rows,
                action="quarantined",
                error=f"{type(error).__name__}: {error}",
            )
        if not (
            np.all(np.isfinite(batch.x)) and np.all(np.isfinite(values))
        ):
            self.metrics.record_quarantine(batch.n_rows)
            return BatchRecord(
                index=batch.index,
                state=batch.state,
                n_rows=batch.n_rows,
                action="quarantined",
                error="non-finite values in batch",
            )

        # Score drift on the *unseen* batch, then absorb it.
        zscores = self.online.zscores(batch.x, values, batch.state)
        decision = self.monitor.observe(zscores)
        self.metrics.record_drift_score(decision.score, decision.smoothed)
        started = time.perf_counter()
        try:
            self.online.absorb(batch.x, values, batch.state)
        except (NumericalError, ValueError) as error:
            self.metrics.record_quarantine(batch.n_rows)
            return BatchRecord(
                index=batch.index,
                state=batch.state,
                n_rows=batch.n_rows,
                action="quarantined",
                error=f"{type(error).__name__}: {error}",
                drift_score=decision.score,
                drift_smoothed=decision.smoothed,
                drifted=decision.drifted,
            )
        self.metrics.record_absorb(
            batch.n_rows, time.perf_counter() - started
        )
        self._absorbs_since_push += 1

        refitted = False
        if decision.drifted:
            started = time.perf_counter()
            self.online = self.online.refit(
                max_workers=cfg.refit_max_workers,
                window_batches=cfg.refit_window,
            )
            self.metrics.record_refit(time.perf_counter() - started)
            self.monitor.reset()
            report.refits += 1
            refitted = True

        pushed_key = None
        swap = None
        if refitted or self._absorbs_since_push >= cfg.push_every:
            entry = self._push("refit" if refitted else "absorb")
            pushed_key = entry.key
            swap = self._swap(entry)
        return BatchRecord(
            index=batch.index,
            state=batch.state,
            n_rows=batch.n_rows,
            action="absorbed",
            drift_score=decision.score,
            drift_smoothed=decision.smoothed,
            drifted=decision.drifted,
            refit=refitted,
            pushed_key=pushed_key,
            swap=swap,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingService(name={self.config.name!r}, "
            f"online={self.online!r})"
        )
