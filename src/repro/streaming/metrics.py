"""Telemetry for the streaming loop, mirroring ``ServingMetrics``.

One thread-safe bag of counters the :class:`StreamingService` updates
per batch — batches seen/absorbed/quarantined, rows, drift scores,
refits, registry pushes, swap outcomes — plus a bounded ring of absorb
latencies for p50/p95, folded into a JSON-friendly ``snapshot()``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional

import numpy as np

__all__ = ["StreamingMetrics"]


class StreamingMetrics:
    """Thread-safe counters for the streaming subsystem.

    Parameters
    ----------
    latency_window:
        How many of the most recent per-batch absorb latencies to keep
        for the p50/p95 estimates.
    """

    def __init__(self, latency_window: int = 10_000) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._absorb_latencies = deque(maxlen=latency_window)
        self._batches_seen = 0
        self._batches_absorbed = 0
        self._rows_absorbed = 0
        self._batches_quarantined = 0
        self._rows_quarantined = 0
        self._refits = 0
        self._refit_seconds = 0.0
        self._pushes = 0
        self._swaps = 0
        self._swap_failures = 0
        self._last_drift_score: Optional[float] = None
        self._last_drift_smoothed: Optional[float] = None

    # ------------------------------------------------------------------
    def record_batch_seen(self) -> None:
        """Count one batch pulled off the stream (before any verdict)."""
        with self._lock:
            self._batches_seen += 1

    def record_absorb(self, rows: int, latency_s: float) -> None:
        """Count one absorbed batch and its update latency."""
        with self._lock:
            self._batches_absorbed += 1
            self._rows_absorbed += int(rows)
            self._absorb_latencies.append(float(latency_s))

    def record_quarantine(self, rows: int) -> None:
        """Count one poisoned batch dropped without touching the model."""
        with self._lock:
            self._batches_quarantined += 1
            self._rows_quarantined += int(rows)

    def record_drift_score(self, score: float, smoothed: float) -> None:
        """Remember the most recent drift verdict inputs."""
        with self._lock:
            self._last_drift_score = float(score)
            self._last_drift_smoothed = float(smoothed)

    def record_refit(self, seconds: float) -> None:
        """Count one drift-triggered full EM refit."""
        with self._lock:
            self._refits += 1
            self._refit_seconds += float(seconds)

    def record_push(self) -> None:
        """Count one registry push of a fresh model version."""
        with self._lock:
            self._pushes += 1

    def record_swap(self) -> None:
        """Count one successful serving hot-swap."""
        with self._lock:
            self._swaps += 1

    def record_swap_failure(self) -> None:
        """Count one failed hot-swap (previous version kept serving)."""
        with self._lock:
            self._swap_failures += 1

    # ------------------------------------------------------------------
    @property
    def batches_absorbed(self) -> int:
        """Batches folded into the posterior so far."""
        with self._lock:
            return self._batches_absorbed

    @property
    def batches_quarantined(self) -> int:
        """Batches dropped as poisoned so far."""
        with self._lock:
            return self._batches_quarantined

    @property
    def refits(self) -> int:
        """Drift-triggered full refits so far."""
        with self._lock:
            return self._refits

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Fold every counter into one plain, JSON-friendly dict."""
        with self._lock:
            latencies = np.array(self._absorb_latencies, dtype=float)
            out: Dict[str, Optional[float]] = {
                "batches_seen": self._batches_seen,
                "batches_absorbed": self._batches_absorbed,
                "rows_absorbed": self._rows_absorbed,
                "batches_quarantined": self._batches_quarantined,
                "rows_quarantined": self._rows_quarantined,
                "refits": self._refits,
                "refit_seconds": self._refit_seconds,
                "pushes": self._pushes,
                "swaps": self._swaps,
                "swap_failures": self._swap_failures,
                "last_drift_score": self._last_drift_score,
                "last_drift_smoothed": self._last_drift_smoothed,
            }
        if latencies.size:
            out["p50_absorb_ms"] = float(
                np.percentile(latencies, 50.0) * 1e3
            )
            out["p95_absorb_ms"] = float(
                np.percentile(latencies, 95.0) * 1e3
            )
        else:
            out["p50_absorb_ms"] = None
            out["p95_absorb_ms"] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"StreamingMetrics(seen={self._batches_seen}, "
                f"absorbed={self._batches_absorbed}, "
                f"quarantined={self._batches_quarantined}, "
                f"refits={self._refits})"
            )
