"""Online C-BMF updates at frozen hyper-parameters.

A fitted :class:`~repro.core.cbmf.CBMF` is a snapshot: its posterior
conditions on exactly the rows it was fitted on. ``OnlineCBMF`` turns
that snapshot into a *live* model — each :meth:`absorb` folds a fresh
batch of ``(x, y)`` observations into the MK-dimensional posterior by
extending the dual-space Cholesky factor with the batch's Schur
complement (see :meth:`repro.core.predictive.PosteriorPredictor.absorb`)
— an O(n²·b) update on the frozen basis and ``{λ, R, σ0}``, with **no
refactorization**. Because the Cholesky factor of a positive-definite
matrix is unique, the absorbed posterior is numerically identical to a
batch solve on the concatenated rows at the same hyper-parameters.

What stays frozen between refits:

* the basis dictionary and the learned prior ``{λ, R}``;
* the observation noise σ0²;
* the target standardization (center and scale) of the source fit —
  incoming targets are standardized with the *original* statistics, so
  the posterior update is exact rather than approximately rescaled.

What an absorb updates:

* the dual-space factor/weights (posterior over all MK coefficients);
* the MAP coefficient matrix :attr:`coef_` (recomputed in O(n·M));
* the predictive mean/std at every query point.

When the incoming data drifts away from the frozen hyper-parameters
(the :mod:`repro.streaming.drift` monitor scores that), :meth:`refit`
runs a full EM refit on everything absorbed so far, warm-started from
the current ``{λ, R, σ0}`` via :meth:`CBMF.warm_state` — the S-OMP
cross-validation grid is skipped, EM re-learns the hyper-parameters on
the enlarged data, and a fresh ``OnlineCBMF`` continues from there.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.frozen import FrozenModel
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix

__all__ = ["OnlineCBMF"]


class OnlineCBMF:
    """Streaming posterior updates for a fitted C-BMF model.

    Build one with :meth:`from_cbmf`; the source estimator is left
    untouched (the predictor state is deep-copied). All public
    predictions and coefficients are in the **original** target units.

    Parameters
    ----------
    model:
        A fitted :class:`CBMF` to continue from.
    basis:
        Optional basis dictionary. When given, :meth:`absorb` and the
        predict methods accept raw sample vectors ``x`` and expand them;
        when ``None`` they expect pre-expanded design rows.
    metric:
        Metric name carried into frozen snapshots and registry pushes.
    """

    def __init__(
        self,
        model: CBMF,
        basis: Optional[BasisDictionary] = None,
        metric: str = "value",
    ) -> None:
        model._require_fitted()
        if basis is not None and basis.n_basis != model.n_basis:
            raise ValueError(
                f"basis has {basis.n_basis} functions, model has "
                f"{model.n_basis} coefficients"
            )
        self.basis = basis
        self.metric = str(metric)
        self._predictor = copy.deepcopy(model.predictor)
        self._warm = model.warm_state()
        self._scale = float(model.scale_)
        self._center = float(model.center_)
        self._seed = model.seed
        self._em_config = model.em_config
        self._intercept = self._find_intercept()
        self.n_absorbed_batches = 0
        self.n_absorbed_rows = 0
        self._coef_cache: Optional[np.ndarray] = None
        # Batch id per conditioned row: 0 for the seed fit's rows, then
        # 1, 2, ... in absorb order — the forgetting window keys off it.
        self._row_batch = np.zeros(self._predictor.n_rows, dtype=int)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_cbmf(
        cls,
        model: CBMF,
        basis: Optional[BasisDictionary] = None,
        metric: str = "value",
    ) -> "OnlineCBMF":
        """The canonical constructor (mirrors ``FrozenModel.from_estimator``)."""
        return cls(model, basis=basis, metric=metric)

    def _find_intercept(self) -> Optional[int]:
        phi, _, _ = self._predictor.training_rows()
        for column in range(phi.shape[1]):
            if np.allclose(phi[:, column], 1.0):
                return column
        return None

    # -- dimensions -----------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of knob states K."""
        return self._predictor.prior.n_states

    @property
    def n_basis(self) -> int:
        """Number of basis functions M."""
        return self._predictor.prior.n_basis

    @property
    def n_rows(self) -> int:
        """Training rows currently conditioned on (initial + absorbed)."""
        return self._predictor.n_rows

    @property
    def noise_std(self) -> float:
        """Frozen observation noise σ0 in original target units."""
        return float(np.sqrt(self._predictor.noise_var)) * self._scale

    # -- design handling ------------------------------------------------
    def _design(self, x: np.ndarray) -> np.ndarray:
        if self.basis is not None:
            return self.basis.expand(
                check_matrix(x, "x", shape=(None, self.basis.n_variables))
            )
        return check_matrix(x, "x", shape=(None, self.n_basis))

    # -- the online update ----------------------------------------------
    def absorb(self, x: np.ndarray, y: np.ndarray, state: int) -> int:
        """Fold one observed batch into the posterior; returns row count.

        ``x`` is raw samples (with a basis) or design rows (without);
        ``y`` the observed metric values in original units. The update
        is exact at the frozen hyper-parameters: after ``absorb``, the
        predictive mean/std equal a from-scratch batch solve on the
        concatenated rows to floating-point round-off. Non-finite
        inputs are refused (quarantine upstream).
        """
        design = self._design(x)
        y = np.asarray(y, dtype=float).reshape(-1)
        standardized = (y - self._center) / self._scale
        self._predictor.absorb(design, standardized, state)
        self.n_absorbed_batches += 1
        self.n_absorbed_rows += design.shape[0]
        self._row_batch = np.concatenate(
            [
                self._row_batch,
                np.full(design.shape[0], self.n_absorbed_batches, dtype=int),
            ]
        )
        self._coef_cache = None
        return design.shape[0]

    # -- prediction -----------------------------------------------------
    def predict(self, x: np.ndarray, state: int) -> np.ndarray:
        """Posterior-predictive mean in original units."""
        mean = self._predictor.predict_mean(self._design(x), state)
        return mean * self._scale + self._center

    def predict_std(
        self, x: np.ndarray, state: int, include_noise: bool = False
    ) -> np.ndarray:
        """Posterior-predictive standard deviation in original units."""
        std = self._predictor.predict_std(
            self._design(x), state, include_noise
        )
        return std * self._scale

    def zscores(
        self, x: np.ndarray, y: np.ndarray, state: int
    ) -> np.ndarray:
        """Standardized predictive residuals of an *unabsorbed* batch.

        ``z_i = (y_i − mean_i) / sqrt(var_i + σ0²)`` — distributed
        ~N(0, 1) per row when the batch comes from the model the
        posterior believes in; the drift monitor consumes these.
        """
        y = np.asarray(y, dtype=float).reshape(-1)
        mean = self.predict(x, state)
        std = self.predict_std(x, state, include_noise=True)
        return (y - mean) / np.maximum(std, 1e-300)

    # -- coefficients / export ------------------------------------------
    @property
    def coef_(self) -> np.ndarray:
        """Current MAP coefficients (K, M) in original target units.

        Recomputed lazily from the dual weights in O(n·M + M·K²); the
        grand center is folded into the intercept column when the basis
        has one (matching :class:`CBMF`), otherwise carried in
        :attr:`offsets_`.
        """
        if self._coef_cache is None:
            prior = self._predictor.prior
            phi, _, state_of_row = self._predictor.training_rows()
            alpha = self._predictor.dual_weights
            # W[k, m] = Σ_{i ∈ k} Φ[i, m]·α_i  →  μ^m = λ_m · R · W[:, m]
            w_matrix = np.zeros((prior.n_states, prior.n_basis))
            np.add.at(w_matrix, state_of_row, phi * alpha[:, None])
            mean = prior.lambdas[:, None] * (
                w_matrix.T @ prior.correlation
            )  # (M, K)
            coef = mean.T * self._scale
            if self._intercept is not None:
                coef = coef.copy()
                coef[:, self._intercept] += self._center
            self._coef_cache = coef
        return self._coef_cache

    @property
    def offsets_(self) -> np.ndarray:
        """Per-state additive offsets (zero when an intercept absorbs them)."""
        if self._intercept is not None:
            return np.zeros(self.n_states)
        return np.full(self.n_states, self._center)

    def frozen(self) -> FrozenModel:
        """Coefficient-only snapshot of the current posterior mean."""
        names = self.basis.names if self.basis is not None else None
        return FrozenModel(
            coef=np.array(self.coef_, copy=True),
            offsets=np.array(self.offsets_, copy=True),
            metric=self.metric,
            basis_names=names,
        )

    def modelset(self):
        """A single-metric ``PerformanceModelSet`` for registry pushes.

        Requires a basis (registry manifests persist its spec so the
        serving layer can answer raw-x requests).
        """
        if self.basis is None:
            raise ValueError(
                "modelset() requires a basis dictionary; construct the "
                "OnlineCBMF with one"
            )
        from repro.modelset import PerformanceModelSet

        return PerformanceModelSet({self.metric: self.frozen()}, self.basis)

    # -- data recovery / refit ------------------------------------------
    def state_data(
        self,
        window_batches: Optional[int] = None,
        min_rows_per_state: int = 2,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Conditioned rows as per-state ``(designs, targets)`` lists.

        Targets are de-standardized back to original units — the exact
        inverse of the transform :meth:`absorb` applied — so a full
        refit sees the same numbers a batch fit on the raw stream would.

        ``window_batches`` restricts the rows to the most recent N
        absorbed batches — the forgetting window a drift-triggered refit
        uses, since a drift verdict certifies that older rows describe a
        regime that no longer exists. Any state left with fewer than
        ``min_rows_per_state`` rows is backfilled with its most recent
        older rows so every state stays solvable.
        """
        phi, y_std, state_of_row = self._predictor.training_rows()
        if window_batches is None:
            eligible = np.ones(state_of_row.shape[0], dtype=bool)
        else:
            if window_batches < 1:
                raise ValueError(
                    f"window_batches must be >= 1, got {window_batches}"
                )
            cutoff = self.n_absorbed_batches - window_batches + 1
            eligible = self._row_batch >= cutoff
        designs: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for k in range(self.n_states):
            rows = np.flatnonzero(state_of_row == k)
            keep = rows[eligible[rows]]
            if keep.size < min_rows_per_state:
                # Rows are stored in time order, so the tail of the
                # stale ones is the most recent history available.
                stale = rows[~eligible[rows]]
                need = min_rows_per_state - keep.size
                keep = np.sort(np.concatenate([stale[-need:], keep]))
            designs.append(phi[keep].copy())
            targets.append(y_std[keep] * self._scale + self._center)
        return designs, targets

    def refit(
        self,
        seed: SeedLike = None,
        em_config: Optional[EmConfig] = None,
        max_workers: Optional[int] = None,
        window_batches: Optional[int] = None,
        min_rows_per_state: int = 2,
    ) -> "OnlineCBMF":
        """Full EM refit on the absorbed data; returns a fresh updater.

        Warm-started from the current ``{λ, R, σ0}`` (the dict exported
        by :meth:`CBMF.warm_state` at construction), so the S-OMP
        cross-validation initializer is skipped and EM re-learns the
        hyper-parameters — the drift monitor's escape hatch when the
        frozen posterior has diverged from the stream.

        ``window_batches`` refits on the most recent N absorbed batches
        only (see :meth:`state_data`): after a detected *shift*, stale
        rows are evidence about a dead regime, and keeping them anchors
        the refit halfway between the old and new worlds.
        """
        designs, targets = self.state_data(
            window_batches=window_batches,
            min_rows_per_state=min_rows_per_state,
        )
        model = CBMF(
            em_config=em_config or self._em_config,
            seed=self._seed if seed is None else seed,
            max_workers=max_workers,
            warm_start=dict(self._warm),
        )
        model.fit(designs, targets)
        return OnlineCBMF(model, basis=self.basis, metric=self.metric)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineCBMF(metric={self.metric!r}, K={self.n_states}, "
            f"M={self.n_basis}, rows={self.n_rows}, "
            f"absorbed={self.n_absorbed_batches} batches)"
        )
