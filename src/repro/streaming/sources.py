"""Batch sources the streaming service consumes.

A stream is just an iterable of :class:`StreamBatch` — ``(index, state,
x, y)`` with raw sample rows ``x`` and observed metric values ``y``.
Three producers cover the repo's use cases:

* :class:`OracleStream` draws fresh points and observes them through any
  :class:`~repro.active.oracle.Oracle` (synthetic, or a real circuit via
  ``CircuitOracle``/``MonteCarloEngine``) — the live-ingest path. It is
  a *manual* iterator, not a generator: an oracle exception while
  producing one batch poisons only that ``__next__`` call, and the
  service can keep iterating past the quarantined batch. A generator
  would be dead after the first raise.
* :class:`ReplayStream` re-plays a recorded stream from an ``.npz`` file
  (see :func:`record_stream`) — deterministic demos, tests, and
  post-mortem reproduction of a production stream.
* :class:`ShiftedOracle` wraps another oracle and adds a constant offset
  to every observation from the ``after_calls``-th observe() onward —
  the standard drift injection for tests and the CLI. ``truth`` shifts
  too once engaged, so held-out scoring after the drift measures against
  the *new* regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.active.oracle import Oracle
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix

__all__ = [
    "OracleStream",
    "ReplayStream",
    "ShiftedOracle",
    "StreamBatch",
    "record_stream",
]


@dataclass(frozen=True)
class StreamBatch:
    """One ingest unit: ``y[i]`` observed at sample ``x[i]``, all at one
    knob state."""

    index: int
    state: int
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = check_matrix(self.x, "x")
        y = np.asarray(self.y, dtype=float).reshape(-1)
        if y.shape[0] != x.shape[0]:
            raise ValueError(
                f"batch {self.index}: {y.shape[0]} values for "
                f"{x.shape[0]} rows"
            )
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    @property
    def n_rows(self) -> int:
        """Number of sample rows in the batch."""
        return self.x.shape[0]


class ShiftedOracle(Oracle):
    """An oracle whose output jumps by ``shift`` after ``after_calls``
    observations — a step drift the monitor is supposed to catch."""

    def __init__(
        self, base: Oracle, shift: float, after_calls: int = 0
    ) -> None:
        if after_calls < 0:
            raise ValueError(f"after_calls must be >= 0, got {after_calls}")
        self.base = base
        self.shift = float(shift)
        self.after_calls = int(after_calls)
        self.calls = 0
        self.name = f"{base.name}+shift"
        self.metric = base.metric
        self.n_states = base.n_states
        self.n_variables = base.n_variables

    @property
    def engaged(self) -> bool:
        """Whether the drift has kicked in yet."""
        return self.calls >= self.after_calls

    def observe(self, x: np.ndarray, state: int) -> np.ndarray:
        values = self.base.observe(x, state)
        if self.engaged:
            values = values + self.shift
        self.calls += 1
        return values

    def truth(self, x: np.ndarray, state: int) -> np.ndarray:
        """Truth of the *current* regime (shifted once engaged)."""
        values = self.base.truth(x, state)
        if self.engaged:
            values = values + self.shift
        return values


class OracleStream:
    """Draw-and-observe ingest: round-robin over states, fresh standard
    normal points each batch.

    Iterating yields :class:`StreamBatch`; an oracle failure raises out
    of ``__next__`` but leaves the iterator alive, so the consumer can
    quarantine the batch and continue with the next one.
    """

    def __init__(
        self,
        oracle: Oracle,
        n_batches: int,
        batch_size: int,
        seed: SeedLike = None,
        states: Optional[Sequence[int]] = None,
    ) -> None:
        if n_batches < 1:
            raise ValueError(f"n_batches must be >= 1, got {n_batches}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.oracle = oracle
        self.n_batches = int(n_batches)
        self.batch_size = int(batch_size)
        self.states = (
            list(states) if states is not None
            else list(range(oracle.n_states))
        )
        if not self.states:
            raise ValueError("need at least one state to stream")
        for s in self.states:
            if not 0 <= s < oracle.n_states:
                raise IndexError(
                    f"state {s} out of range 0..{oracle.n_states - 1}"
                )
        self._rng = np.random.default_rng(seed)
        self._next_index = 0

    def __iter__(self) -> Iterator[StreamBatch]:
        return self

    def __next__(self) -> StreamBatch:
        if self._next_index >= self.n_batches:
            raise StopIteration
        index = self._next_index
        self._next_index += 1
        state = self.states[index % len(self.states)]
        x = self._rng.standard_normal(
            (self.batch_size, self.oracle.n_variables)
        )
        # The points are committed before the observe so a raising oracle
        # consumes this batch's index and the stream moves on cleanly.
        y = self.oracle.observe(x, state)
        return StreamBatch(index=index, state=state, x=x, y=y)


class ReplayStream:
    """Re-play a recorded stream from an ``.npz`` file.

    The file layout (written by :func:`record_stream`) is flat row
    arrays ``x``/``y``/``state``/``batch_of_row`` — batches are
    reconstructed by grouping on ``batch_of_row``, preserving order.
    Iterating is repeatable: each ``__iter__`` starts from the top.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with np.load(self.path) as data:
            x = np.asarray(data["x"], dtype=float)
            y = np.asarray(data["y"], dtype=float).reshape(-1)
            state = np.asarray(data["state"], dtype=int).reshape(-1)
            batch_of_row = np.asarray(
                data["batch_of_row"], dtype=int
            ).reshape(-1)
        if not (x.shape[0] == y.shape[0] == state.shape[0]
                == batch_of_row.shape[0]):
            raise ValueError(
                f"{self.path}: row arrays disagree on length "
                f"({x.shape[0]}/{y.shape[0]}/{state.shape[0]}/"
                f"{batch_of_row.shape[0]})"
            )
        self._batches: List[StreamBatch] = []
        for index in np.unique(batch_of_row):
            rows = np.flatnonzero(batch_of_row == index)
            states = np.unique(state[rows])
            if states.size != 1:
                raise ValueError(
                    f"{self.path}: batch {int(index)} spans states "
                    f"{states.tolist()}"
                )
            self._batches.append(
                StreamBatch(
                    index=int(index),
                    state=int(states[0]),
                    x=x[rows],
                    y=y[rows],
                )
            )

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[StreamBatch]:
        return iter(list(self._batches))


def record_stream(
    batches: Sequence[StreamBatch], path: Union[str, Path]
) -> Path:
    """Persist batches to the flat ``.npz`` layout ReplayStream reads."""
    if len(batches) == 0:
        raise ValueError("cannot record an empty stream")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        x=np.vstack([b.x for b in batches]),
        y=np.concatenate([b.y for b in batches]),
        state=np.concatenate(
            [np.full(b.n_rows, b.state, dtype=int) for b in batches]
        ),
        batch_of_row=np.concatenate(
            [np.full(b.n_rows, b.index, dtype=int) for b in batches]
        ),
    )
    return path
