"""Drift detection for the streaming updater.

The online absorb is *exact* — but only at the frozen hyper-parameters
``{λ, R, σ0}`` of the last full fit. When the process generating the
stream shifts (aging circuit, new PVT corner, a changed testbench), the
frozen posterior keeps conditioning on data its prior no longer
describes, and its predictions degrade even though every linear-algebra
step is correct. Detecting that is a calibration question, and the
model answers it for free: the standardized predictive residual of an
*unseen* observation,

    z_i = (y_i − mean_i) / sqrt(var_i + σ0²),

is ~N(0, 1) under the model. ``mean(z²)`` over a batch therefore hovers
around 1 when the model still explains the stream and inflates when it
does not. :class:`DriftMonitor` smooths that score with an EWMA (one
noisy batch should not trigger a refit; a sustained shift should) and
flags drift when the smoothed score crosses a threshold — or
immediately when a single batch's raw score is catastrophic. The
streaming service responds by scheduling a full EM refit (warm-started,
so only the hyper-parameters are re-learned) and resetting the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DriftConfig", "DriftDecision", "DriftMonitor"]


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of the drift monitor.

    Parameters
    ----------
    threshold:
        Trigger when the EWMA of ``mean(z²)`` exceeds this. The null
        expectation is 1; the default 3 means "sustained residuals about
        √3σ wide".
    ewma:
        Smoothing factor in (0, 1]; weight on the *newest* batch score.
        1.0 disables smoothing entirely.
    warmup_batches:
        Number of initial batches scored but never flagged — the first
        few batches after a (re)fit meet a posterior that has not seen
        any stream data, and their scores are legitimately noisy.
    hard_threshold:
        A single batch whose raw score exceeds this triggers regardless
        of the EWMA or warmup — the "testbench changed" escape hatch.
    """

    threshold: float = 3.0
    ewma: float = 0.5
    warmup_batches: int = 2
    hard_threshold: float = 25.0

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {self.ewma}")
        if self.warmup_batches < 0:
            raise ValueError(
                f"warmup_batches must be >= 0, got {self.warmup_batches}"
            )
        if self.hard_threshold < self.threshold:
            raise ValueError(
                "hard_threshold must be >= threshold "
                f"({self.hard_threshold} < {self.threshold})"
            )


@dataclass(frozen=True)
class DriftDecision:
    """One batch's verdict: the raw score, the smoothed score, the flag."""

    batch_index: int
    score: float
    smoothed: float
    drifted: bool


class DriftMonitor:
    """EWMA drift detector over standardized predictive residuals.

    Feed it each batch's z-scores *before* absorbing the batch (after
    absorbing, the posterior has already explained the data and the
    residuals shrink — the test would be biased toward "no drift").
    """

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config or DriftConfig()
        self._smoothed: Optional[float] = None
        self._batches = 0

    @property
    def smoothed(self) -> Optional[float]:
        """Current EWMA of the batch scores (None before any batch)."""
        return self._smoothed

    @property
    def batches_seen(self) -> int:
        """Batches scored since construction / the last :meth:`reset`."""
        return self._batches

    def observe(self, zscores: np.ndarray) -> DriftDecision:
        """Score one batch of standardized residuals.

        Returns the decision; never mutates anything outside the monitor
        (the caller decides what a ``drifted=True`` verdict costs).
        """
        z = np.asarray(zscores, dtype=float).reshape(-1)
        if z.size == 0:
            raise ValueError("cannot score an empty batch")
        if not np.all(np.isfinite(z)):
            raise ValueError(
                "non-finite z-scores; quarantine the batch upstream"
            )
        score = float(np.mean(z**2))
        if self._smoothed is None:
            smoothed = score
        else:
            alpha = self.config.ewma
            smoothed = alpha * score + (1.0 - alpha) * self._smoothed
        self._smoothed = smoothed
        index = self._batches
        self._batches += 1

        hard = score >= self.config.hard_threshold
        warm = index < self.config.warmup_batches
        drifted = hard or (
            not warm and smoothed >= self.config.threshold
        )
        return DriftDecision(
            batch_index=index,
            score=score,
            smoothed=smoothed,
            drifted=drifted,
        )

    def reset(self) -> None:
        """Forget all state — call after a refit replaces the posterior."""
        self._smoothed = None
        self._batches = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftMonitor(batches={self._batches}, "
            f"smoothed={self._smoothed}, config={self.config})"
        )
