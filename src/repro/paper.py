"""Canonical configurations of the paper's experiments, with scale presets.

Every table/figure of the reproduction runs through this module so that the
examples, the benchmarks and EXPERIMENTS.md all agree on workloads.

Scales
------
The paper's full scale (32 states, 1264/1303 variables, 1120-sample S-OMP
runs) takes minutes of simulation plus minutes of fitting. Three presets
trade fidelity for turnaround; all preserve the *shape* of the result
(C-BMF under S-OMP at every budget, ≥2× fewer samples at equal error):

* ``small``  — 6 states, natural variable count, for unit/CI runs;
* ``medium`` — 16 states, natural variable count, benchmark default;
* ``paper``  — 32 states, 1264/1303 variables, the full reproduction.

Select with the ``REPRO_SCALE`` environment variable or explicitly.
Datasets are cached under ``.cache/datasets`` keyed by circuit/scale/seed,
because the synthetic 'simulator' — while ~10⁴× faster than SPICE — is
still the slowest part of a full sweep.
"""

from __future__ import annotations

import os
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.basis.polynomial import LinearBasis
from repro.circuits.base import TunableCircuit
from repro.circuits.lna import TunableLNA
from repro.circuits.mixer import TunableMixer
from repro.circuits.sweep import SweptLNA
from repro.evaluation.experiment import MethodResult, ModelingExperiment
from repro.evaluation.sweep import SweepResult, sample_count_sweep
from repro.simulate.cost import CostModel, LNA_COST_MODEL, MIXER_COST_MODEL
from repro.simulate.dataset import Dataset
from repro.simulate.montecarlo import MonteCarloEngine

__all__ = [
    "ExperimentScale",
    "SCALES",
    "resolve_scale",
    "build_circuit",
    "load_or_simulate",
    "simulate_sweep",
    "run_cost_table",
    "run_figure_sweep",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "METRIC_LABELS",
]

#: Default on-disk dataset cache.
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[2] / ".cache" / "datasets"

#: The paper's Table 1 numbers (LNA), for EXPERIMENTS.md comparisons.
PAPER_TABLE1 = {
    "somp": {
        "n_samples": 1120,
        "nf_db": 0.316,
        "gain_db": 0.577,
        "iip3_dbm": 2.738,
        "overall_hours": 2.72,
    },
    "cbmf": {
        "n_samples": 480,
        "nf_db": 0.285,
        "gain_db": 0.566,
        "iip3_dbm": 2.497,
        "overall_hours": 1.25,
    },
}

#: The paper's Table 2 numbers (mixer).
PAPER_TABLE2 = {
    "somp": {
        "n_samples": 1120,
        "nf_db": 0.173,
        "gain_db": 2.758,
        "i1db_dbm": 2.401,
        "overall_hours": 17.20,
    },
    "cbmf": {
        "n_samples": 480,
        "nf_db": 0.166,
        "gain_db": 2.569,
        "i1db_dbm": 2.340,
        "overall_hours": 7.48,
    },
}

#: Pretty labels for report rendering.
METRIC_LABELS = {
    "nf_db": "NF",
    "gain_db": "VG",
    "iip3_dbm": "IIP3",
    "i1db_dbm": "I1dBCP",
}


@dataclass(frozen=True)
class ExperimentScale:
    """One preset of the experiment size."""

    name: str
    n_states: int
    #: None → the circuit's natural (unpadded) variable count.
    n_variables_lna: Optional[int]
    n_variables_mixer: Optional[int]
    #: Held-out samples per state (paper: 50).
    n_test_per_state: int
    #: Training-pool samples per state (max of the sweep grid).
    pool_per_state: int
    #: Per-state training budgets for the figure sweeps.
    sweep_grid: Tuple[int, ...]
    #: Per-state budgets of the table comparison: (S-OMP, C-BMF).
    table_somp_per_state: int
    table_cbmf_per_state: int
    #: Frequency points of the swept-frequency workload (``lna_sweep``);
    #: 201 is the VNA classic the Kronecker-path benchmark gates on.
    sweep_points: int = 32


SCALES: Dict[str, ExperimentScale] = {
    "small": ExperimentScale(
        name="small",
        n_states=6,
        n_variables_lna=None,
        n_variables_mixer=None,
        n_test_per_state=20,
        pool_per_state=40,
        sweep_grid=(10, 20, 40),
        table_somp_per_state=35,
        table_cbmf_per_state=15,
        sweep_points=32,
    ),
    "medium": ExperimentScale(
        name="medium",
        n_states=16,
        n_variables_lna=None,
        n_variables_mixer=None,
        n_test_per_state=30,
        pool_per_state=40,
        sweep_grid=(8, 12, 16, 24, 35),
        table_somp_per_state=35,
        table_cbmf_per_state=15,
        sweep_points=101,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_states=32,
        n_variables_lna=1264,
        n_variables_mixer=1303,
        n_test_per_state=50,
        pool_per_state=35,
        sweep_grid=(10, 15, 20, 25, 30, 35),
        table_somp_per_state=35,  # × 32 states = 1120 samples
        table_cbmf_per_state=15,  # × 32 states = 480 samples
        sweep_points=201,
    ),
}


def resolve_scale(scale: Optional[str] = None) -> ExperimentScale:
    """Pick a scale: explicit argument > REPRO_SCALE env > 'small'."""
    name = scale or os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise KeyError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        )
    return SCALES[name]


def build_circuit(circuit_name: str, scale: ExperimentScale) -> TunableCircuit:
    """Instantiate the LNA, mixer or swept-LNA at the requested scale."""
    if circuit_name == "lna":
        return TunableLNA(
            n_states=scale.n_states, n_variables=scale.n_variables_lna
        )
    if circuit_name == "mixer":
        return TunableMixer(
            n_states=scale.n_states, n_variables=scale.n_variables_mixer
        )
    if circuit_name == "lna_sweep":
        return SweptLNA(n_points=scale.sweep_points)
    raise KeyError(
        f"unknown circuit {circuit_name!r}; expected 'lna', 'mixer' or "
        "'lna_sweep'"
    )


def cost_model_for(circuit_name: str) -> CostModel:
    """Per-sample simulation cost calibrated to the paper's tables.

    The mixer carries its own calibration; every LNA-derived workload
    (``lna``, ``lna_sweep``) uses the LNA model.
    """
    return MIXER_COST_MODEL if circuit_name == "mixer" else LNA_COST_MODEL


def load_or_simulate(
    circuit_name: str,
    scale: ExperimentScale,
    seed: int = 2016,
    cache_dir: Optional[Path] = None,
) -> Tuple[Dataset, Dataset]:
    """(training pool, test set) for one circuit/scale, cached on disk."""
    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    cache_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{circuit_name}_{scale.name}_seed{seed}"
    pool_path = cache_dir / f"{stem}_pool.npz"
    test_path = cache_dir / f"{stem}_test.npz"
    if pool_path.exists() and test_path.exists():
        try:
            return Dataset.load(pool_path), Dataset.load(test_path)
        except (zipfile.BadZipFile, OSError, ValueError, KeyError):
            warnings.warn(
                f"dataset cache for {stem!r} is unreadable; regenerating",
                RuntimeWarning,
                stacklevel=2,
            )

    circuit = build_circuit(circuit_name, scale)
    engine = MonteCarloEngine(circuit, seed=seed)
    total = scale.pool_per_state + scale.n_test_per_state
    everything = engine.run(total)
    pool, test = everything.split(scale.pool_per_state)
    pool.save(pool_path)
    test.save(test_path)
    return pool, test


def simulate_sweep(
    n_points: int = 201,
    n_samples_per_state: int = 10,
    seed: int = 2016,
    cache_dir: Optional[Path] = None,
) -> Dataset:
    """A swept-frequency training dataset, cached on disk.

    Simulates :class:`~repro.circuits.sweep.SweptLNA` — ``n_points``
    frequency states, every state evaluated on the *same*
    ``n_samples_per_state`` process samples (the circuit's
    ``shared_samples`` default), so the result is state-balanced and the
    fit path takes the Kronecker solver. The benchmark and the CLI
    ``sweep-fit`` command share this entry so their workloads agree.
    """
    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    cache_dir.mkdir(parents=True, exist_ok=True)
    stem = f"lna_sweep{n_points}_seed{seed}_n{n_samples_per_state}"
    path = cache_dir / f"{stem}.npz"
    if path.exists():
        try:
            return Dataset.load(path)
        except (zipfile.BadZipFile, OSError, ValueError, KeyError):
            warnings.warn(
                f"dataset cache for {stem!r} is unreadable; regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
    circuit = SweptLNA(n_points=n_points)
    dataset = MonteCarloEngine(circuit, seed=seed).run(n_samples_per_state)
    dataset.save(path)
    return dataset


def run_cost_table(
    circuit_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 2016,
) -> Dict[str, MethodResult]:
    """Regenerate Table 1 (lna) or Table 2 (mixer): S-OMP vs C-BMF.

    S-OMP runs at the paper's large budget, C-BMF at the small one; the
    claim under test is that the errors match while the cost differs ~2.3×.
    """
    scale = scale or resolve_scale()
    pool, test = load_or_simulate(circuit_name, scale, seed)
    basis = LinearBasis(pool.n_variables)
    cost = cost_model_for(circuit_name)

    results: Dict[str, MethodResult] = {}
    for method, per_state in (
        ("somp", scale.table_somp_per_state),
        ("cbmf", scale.table_cbmf_per_state),
    ):
        train = pool.head(min(per_state, min(pool.n_samples_per_state)))
        experiment = ModelingExperiment(train, test, basis, cost)
        results[method] = experiment.run(method, seed=seed)
    return results


def run_figure_sweep(
    circuit_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 2016,
    methods: Tuple[str, ...] = ("somp", "cbmf"),
    metrics: Optional[Tuple[str, ...]] = None,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Regenerate the figure panels: error vs. samples per metric.

    ``metrics`` restricts the fitted metrics (one figure panel) — the full
    sweep fits every metric at every budget, which is the expensive part;
    ``max_workers`` (or ``REPRO_MAX_WORKERS``) fans the budgets out over
    processes without changing any number.
    """
    scale = scale or resolve_scale()
    pool, test = load_or_simulate(circuit_name, scale, seed)
    basis = LinearBasis(pool.n_variables)
    return sample_count_sweep(
        pool,
        test,
        basis,
        methods,
        scale.sweep_grid,
        cost_model=cost_model_for(circuit_name),
        seed=seed,
        metrics=metrics,
        max_workers=max_workers,
    )
