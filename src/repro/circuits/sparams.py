"""Two-port S-parameter extraction from MNA circuits.

Builds on the AC solver: a circuit builder provides the two-port's inner
network; this module terminates both ports in the reference impedance,
excites each port in turn, and converts the resulting port voltages into
the scattering matrix using the standard wave definitions

    a_i = (V_i + Z0·I_i) / (2·√Z0),   b_i = (V_i − Z0·I_i) / (2·√Z0)

With port j driven by a source of open-circuit voltage 2·√Z0 (so the
incident wave is a_j = 1) and the other port terminated, S_ij = b_i
directly. This is exactly how a circuit simulator's ``SP`` analysis works.

Use :class:`TwoPortTestbench` with a builder callback that stamps the DUT
between the named port nodes.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.circuits.mna import Circuit

__all__ = ["SParameters", "TwoPortTestbench"]


@dataclass(frozen=True)
class SParameters:
    """One frequency point of a two-port scattering matrix."""

    frequency_hz: float
    s11: complex
    s21: complex
    s12: complex
    s22: complex

    def magnitude_db(self, name: str) -> float:
        """|S_xy| in dB for ``name`` in {"s11","s21","s12","s22"}."""
        value = getattr(self, name)
        magnitude = abs(value)
        if magnitude <= 0.0:
            return -math.inf
        return 20.0 * math.log10(magnitude)

    @property
    def is_reciprocal(self) -> bool:
        """True when S21 ≈ S12 (passive reciprocal networks)."""
        scale = max(abs(self.s21), abs(self.s12), 1e-30)
        return abs(self.s21 - self.s12) / scale < 1e-6

    @property
    def is_passive(self) -> bool:
        """True when no port reflects/transmits more power than incident."""
        row1 = abs(self.s11) ** 2 + abs(self.s12) ** 2
        row2 = abs(self.s21) ** 2 + abs(self.s22) ** 2
        return row1 <= 1.0 + 1e-9 and row2 <= 1.0 + 1e-9


class TwoPortTestbench:
    """S-parameter testbench around a user-provided network builder.

    Parameters
    ----------
    builder:
        Callback ``builder(circuit, port1, port2)`` stamping the DUT
        between the two (single-ended) port nodes and ground.
    z0:
        Reference impedance of both ports.
    """

    def __init__(
        self,
        builder: Callable[[Circuit, str, str], None],
        z0: float = 50.0,
    ) -> None:
        if z0 <= 0.0:
            raise ValueError(f"z0 must be > 0, got {z0}")
        self._builder = builder
        self.z0 = z0

    def _solve_driven(self, frequency_hz: float, driven_port: int):
        """Solve with unit incident wave at ``driven_port`` (1 or 2)."""
        circuit = Circuit()
        amplitude = 2.0 * math.sqrt(self.z0)  # a = 1 at the driven port
        if driven_port == 1:
            circuit.add_voltage_source("VS1", "src1", "0", amplitude)
            circuit.add_resistor("RT1", "src1", "p1", self.z0)
            circuit.add_resistor("RT2", "p2", "0", self.z0)
        else:
            circuit.add_voltage_source("VS2", "src2", "0", amplitude)
            circuit.add_resistor("RT2", "src2", "p2", self.z0)
            circuit.add_resistor("RT1", "p1", "0", self.z0)
        self._builder(circuit, "p1", "p2")
        return circuit.solve(frequency_hz)

    def at(self, frequency_hz: float) -> SParameters:
        """Scattering matrix at one frequency."""
        root_z0 = math.sqrt(self.z0)
        # Drive port 1: b1 = v1/√Z0 − a1, b2 = v2/√Z0 (port 2 matched).
        sol1 = self._solve_driven(frequency_hz, 1)
        v1 = sol1.voltage("p1")
        v2 = sol1.voltage("p2")
        s11 = v1 / root_z0 - 1.0
        s21 = v2 / root_z0
        # Drive port 2.
        sol2 = self._solve_driven(frequency_hz, 2)
        s22 = sol2.voltage("p2") / root_z0 - 1.0
        s12 = sol2.voltage("p1") / root_z0
        return SParameters(
            frequency_hz=frequency_hz, s11=s11, s21=s21, s12=s12, s22=s22
        )

    def sweep(self, frequencies_hz: Sequence[float]) -> list:
        """Scattering matrices over a frequency list."""
        frequencies = np.asarray(frequencies_hz, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies_hz must be a non-empty 1-D array")
        return [self.at(float(f)) for f in frequencies]
