"""Tuning-knob abstraction.

A tunable circuit owns one or more discrete knobs (a current-mirror DAC, a
switchable load-resistor bank, ...). The cross product of all knob settings
defines the circuit's *states* — the ``k = 1..K`` index of the paper. States
are ordered so that adjacent indexes correspond to adjacent knob codes,
which is what makes the AR(1)-style correlation prior (eq. 32) meaningful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["TuningKnob", "KnobConfiguration", "enumerate_states"]


@dataclass(frozen=True)
class TuningKnob:
    """One discrete tuning knob.

    Attributes
    ----------
    name:
        Knob identifier (e.g. ``"bias_code"``).
    values:
        The physical value each code maps to, in code order (monotone for a
        DAC). ``len(values)`` is the knob resolution.
    """

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("knob name must be non-empty")
        if len(self.values) < 2:
            raise ValueError(
                f"knob {self.name!r} needs at least 2 settings, "
                f"got {len(self.values)}"
            )

    @property
    def n_codes(self) -> int:
        """Number of discrete settings."""
        return len(self.values)

    def value(self, code: int) -> float:
        """Physical value of setting ``code``."""
        if not 0 <= code < len(self.values):
            raise IndexError(
                f"code {code} out of range for knob {self.name!r} "
                f"with {len(self.values)} settings"
            )
        return self.values[code]


@dataclass(frozen=True)
class KnobConfiguration:
    """One circuit state: a code per knob plus the resolved values."""

    index: int
    codes: Tuple[int, ...]
    values: Dict[str, float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        settings = ", ".join(f"{k}={v:g}" for k, v in self.values.items())
        return f"state {self.index} ({settings})"


def enumerate_states(knobs: Sequence[TuningKnob]) -> List[KnobConfiguration]:
    """Cross product of knob codes → ordered state list.

    The first knob varies slowest, so a single-knob circuit gets states in
    code order and a two-knob circuit is ordered lexicographically; in both
    cases neighbouring states differ by one code step, keeping the state
    index a meaningful similarity coordinate.
    """
    if not knobs:
        raise ValueError("at least one knob is required")
    names = [knob.name for knob in knobs]
    if len(names) != len(set(names)):
        raise ValueError("knob names must be unique")
    states: List[KnobConfiguration] = []
    for index, codes in enumerate(
        itertools.product(*(range(knob.n_codes) for knob in knobs))
    ):
        values = {
            knob.name: knob.value(code) for knob, code in zip(knobs, codes)
        }
        states.append(
            KnobConfiguration(index=index, codes=tuple(codes), values=values)
        )
    return states
