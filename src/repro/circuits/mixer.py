"""Tunable 2.4 GHz down-conversion mixer (paper Section 4.2).

Topology: double-balanced Gilbert cell. A differential transconductor pair
converts the RF voltage to current; a hard-switched quad commutates it at
the LO rate; two *tunable load resistors* — thermometer resistor banks that
step through 32 codes — set the conversion gain. A fixed mirror biases the
tail, an LO buffer chain sets the switching swing, and source followers
drive the IF output.

Because the Gilbert cell is periodically time-varying, metrics use the
standard hard-switching approximations instead of a single AC solve (the
textbook Terrovitis/Meyer treatment):

* conversion gain ``Gc = (2/π)·gm·R_L,eff`` degraded by finite switching
  (LO swing) and quad threshold mismatch, times the IF-follower gain;
* SSB noise figure from the explicit output noise budget — source and
  termination, transconductor drains, switching quad (``4kTγ·I_tail·2/(π·V_LO)``
  per side), load resistors and IF followers;
* input 1 dB compression from the transconductor power series.

Every quantity above is a function of device small-signal parameters and
resistor values, so all 1303 process variables (the paper's count) act
through physical paths.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.circuits.base import TunableCircuit, peripheral_padding
from repro.circuits.dacs import FixedCurrentMirror, SwitchedResistorBank
from repro.circuits.devices import (
    BOLTZMANN,
    ROOM_TEMPERATURE,
    Mosfet,
    MosfetParameters,
    Passive,
)
from repro.circuits.knobs import KnobConfiguration, TuningKnob, enumerate_states
from repro.circuits.metrics import (
    dbm_from_vrms,
    input_p1db_dbm_from_series,
    noise_figure_db,
    vrms_from_dbm,
)
from repro.variation.process import ProcessModel, ProcessSample
from repro.variation.parameters import VariationKind

__all__ = ["TunableMixer"]

#: The paper's variable count for this example.
PAPER_N_VARIABLES = 1303


def _largest_divisor_at_most_sqrt(n: int) -> int:
    """Largest divisor of ``n`` not exceeding √n (for knob factoring)."""
    best = 1
    for candidate in range(2, int(math.isqrt(n)) + 1):
        if n % candidate == 0:
            best = candidate
    return best


class TunableMixer(TunableCircuit):
    """Tunable double-balanced Gilbert-cell mixer at 2.4 GHz.

    Parameters
    ----------
    n_states:
        Number of knob configurations (the paper uses 32). The load banks
        carry ``n_states − 1`` switchable legs each.
    n_variables:
        Total normalized variable count (paper: 1303); ``None`` disables
        peripheral padding.
    source_ohms:
        RF source resistance.
    lo_swing:
        Nominal single-ended LO amplitude at the quad gates, volts.
    knob_layout:
        ``"shared"`` (default): one code drives both load banks together —
        states stay perfectly ordered for the AR(1) prior.
        ``"independent"``: the two load resistors are separate knobs (the
        literal reading of the paper's "two tunable load resistors"); the
        states enumerate the code cross-product and a deliberate left/right
        imbalance costs conversion gain, so the state ordering is only
        *approximately* AR(1) — the regime the paper's eq. 32 comment
        ("often a good approximation, even though not highly accurate")
        describes.
    """

    METRICS: Tuple[str, ...] = ("nf_db", "gain_db", "i1db_dbm")

    def __init__(
        self,
        n_states: int = 32,
        n_variables: Optional[int] = PAPER_N_VARIABLES,
        source_ohms: float = 50.0,
        lo_swing: float = 0.4,
        knob_layout: str = "shared",
    ) -> None:
        if n_states < 2:
            raise ValueError(f"n_states must be >= 2, got {n_states}")
        if knob_layout not in ("shared", "independent"):
            raise ValueError(
                "knob_layout must be 'shared' or 'independent', "
                f"got {knob_layout!r}"
            )
        self.knob_layout = knob_layout
        if lo_swing <= 0.0:
            raise ValueError("lo_swing must be > 0")
        self._rs = source_ohms
        self._lo_swing_nominal = lo_swing
        #: RMS IF swing at which the output stage clips, volts.
        self._output_headroom = 0.35

        # Gilbert core -----------------------------------------------------
        rf_params = MosfetParameters(width_um=40.0, length_um=0.03)
        quad_params = MosfetParameters(width_um=30.0, length_um=0.03)
        self.rf_pair = (Mosfet("MRF1", rf_params), Mosfet("MRF2", rf_params))
        self.quad = tuple(
            Mosfet(f"MSW{i}", quad_params) for i in range(1, 5)
        )
        self.tail = FixedCurrentMirror("TAIL", 250e-6, ratio=16.0)

        # Tunable loads. Shared layout: both banks carry the full leg count
        # and step together. Independent layout: the state space factors
        # into (left codes × right codes) with per-bank leg counts sized so
        # the cross-product covers n_states.
        if knob_layout == "shared":
            left_legs = right_legs = n_states - 1
        else:
            left_codes = _largest_divisor_at_most_sqrt(n_states)
            right_codes = n_states // left_codes
            left_legs = left_codes - 1 if left_codes > 1 else 1
            right_legs = right_codes - 1 if right_codes > 1 else 1
            self._left_codes, self._right_codes = left_codes, right_codes
        self.load_left = SwitchedResistorBank(
            "RLL", n_legs=max(left_legs, 1), base_ohms=900.0,
            leg_ohms=12000.0 if knob_layout == "shared" else 4000.0,
        )
        self.load_right = SwitchedResistorBank(
            "RLR", n_legs=max(right_legs, 1), base_ohms=900.0,
            leg_ohms=12000.0 if knob_layout == "shared" else 4000.0,
        )

        # LO buffer chain (sets the actual switching swing).
        lo_params = MosfetParameters(width_um=24.0, length_um=0.03)
        self.lo_buffer = tuple(
            Mosfet(f"MLO{i}", lo_params) for i in range(1, 5)
        )
        self._lo_gm_nominal = self._lo_buffer_gm(None)

        # IF source followers + their bias devices.
        if_params = MosfetParameters(width_um=32.0, length_um=0.03)
        self.if_buffer = tuple(
            Mosfet(f"MIF{i}", if_params) for i in range(1, 5)
        )
        self.rif = Passive("RIF", "resistor", 400.0, 0.03)

        # Input network & ESD.
        self.rterm = Passive("RTERM", "resistor", 60.0, 0.03)
        self.cac_in = Passive("CACI", "capacitor", 2e-12, 0.03)
        self.cac_out = Passive("CACO", "capacitor", 2e-12, 0.03)
        self.esd = tuple(Mosfet(f"MESD{i}", quad_params) for i in range(1, 5))

        self._passives: Tuple[Passive, ...] = (
            self.rif,
            self.rterm,
            self.cac_in,
            self.cac_out,
        )

        declarations = []
        for fet in (*self.rf_pair, *self.quad, *self.lo_buffer,
                    *self.if_buffer, *self.esd):
            declarations.append(fet.variation())
        declarations.extend(self.tail.device_variations())
        declarations.extend(self.load_left.device_variations())
        declarations.extend(self.load_right.device_variations())
        declarations.extend(p.variation() for p in self._passives)

        if n_variables is not None:
            from repro.variation.parameters import GLOBAL_PARAMETER_SET

            current = len(GLOBAL_PARAMETER_SET) + sum(
                len(d.specs) for d in declarations
            )
            declarations.extend(
                peripheral_padding("MIXPER", n_variables, current)
            )

        self._process_model = ProcessModel(declarations)
        if n_variables is not None:
            assert self._process_model.n_variables == n_variables

        if knob_layout == "shared":
            knob = TuningKnob(
                "load_code", tuple(float(code) for code in range(n_states))
            )
            self._states = tuple(enumerate_states([knob]))
        else:
            left = TuningKnob(
                "left_code",
                tuple(float(code) for code in range(self._left_codes)),
            )
            right = TuningKnob(
                "right_code",
                tuple(float(code) for code in range(self._right_codes)),
            )
            self._states = tuple(enumerate_states([left, right]))

    # ------------------------------------------------------------------
    # TunableCircuit interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Circuit identifier."""
        return "mixer"

    @property
    def process_model(self) -> ProcessModel:
        """The circuit's full variation space."""
        return self._process_model

    @property
    def states(self) -> Tuple[KnobConfiguration, ...]:
        """Ordered knob configurations."""
        return self._states

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Performances of interest."""
        return self.METRICS

    # ------------------------------------------------------------------
    # sub-circuit helpers
    # ------------------------------------------------------------------
    def _lo_buffer_gm(self, sample: Optional[ProcessSample]) -> float:
        """Geometric-mean transconductance of the LO buffer chain."""
        product = 1.0
        for fet in self.lo_buffer:
            product *= fet.small_signal(1.0e-3, sample).gm
        return product ** (1.0 / len(self.lo_buffer))

    def lo_swing(self, sample: Optional[ProcessSample]) -> float:
        """Actual LO amplitude at the quad gates.

        The buffer runs near clipping, so the swing responds only weakly
        (square-root-compressed) to its drive strength.
        """
        gm_ratio = self._lo_buffer_gm(sample) / self._lo_gm_nominal
        return self._lo_swing_nominal * math.sqrt(max(gm_ratio, 1e-3))

    def load_resistances(
        self, state: KnobConfiguration, sample: Optional[ProcessSample]
    ) -> Tuple[float, float]:
        """(left, right) effective load resistances at ``state``."""
        if self.knob_layout == "shared":
            code = int(state.values["load_code"])
            left_code = right_code = code
        else:
            left_code = int(state.values["left_code"])
            right_code = int(state.values["right_code"])
        return (
            self.load_left.resistance(left_code, sample),
            self.load_right.resistance(right_code, sample),
        )

    def load_resistance(
        self, state: KnobConfiguration, sample: Optional[ProcessSample]
    ) -> float:
        """Average effective load resistance of the two banks at ``state``."""
        left, right = self.load_resistances(state, sample)
        return 0.5 * (left + right)

    def _quad_imbalance(self, sample: Optional[ProcessSample]) -> float:
        """Gain degradation factor from quad threshold mismatch.

        A threshold offset δ within a switching pair shifts the commutation
        instant by δ/V_LO of an LO quarter-period, costing conversion gain
        to second order: factor ≈ 1 − (δ₁² + δ₂²)/(2·V_LO²).
        """
        if sample is None:
            return 1.0
        v_lo = self.lo_swing(sample)
        d1 = sample.deviation(
            self.quad[0].name, VariationKind.VTH
        ) - sample.deviation(self.quad[1].name, VariationKind.VTH)
        d2 = sample.deviation(
            self.quad[2].name, VariationKind.VTH
        ) - sample.deviation(self.quad[3].name, VariationKind.VTH)
        factor = 1.0 - (d1 * d1 + d2 * d2) / (2.0 * v_lo * v_lo)
        return max(factor, 0.1)

    def _if_followers(self, sample: Optional[ProcessSample]):
        """Small-signal models of the two output source followers."""
        return [
            fet.small_signal(1.5e-3, sample) for fet in self.if_buffer[:2]
        ]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, sample: ProcessSample, state: KnobConfiguration
    ) -> Dict[str, float]:
        """One 'transistor-level simulation' of this mixer."""
        tail_current = self.tail.current(sample)
        half_tail = 0.5 * tail_current
        ss_rf = [fet.small_signal(half_tail, sample) for fet in self.rf_pair]
        gm_rf = 0.5 * (ss_rf[0].gm + ss_rf[1].gm)

        r_left, r_right = self.load_resistances(state, sample)
        r_load = 0.5 * (r_left + r_right)
        # A differential load imbalance converts part of the signal to
        # common mode: second-order gain loss.
        imbalance = (r_left - r_right) / (r_left + r_right)
        balance_factor = max(1.0 - imbalance * imbalance, 0.1)
        v_lo = self.lo_swing(sample)

        # Finite-switching degradation: the quad spends a fraction of each
        # period in the balanced region ∝ Vov_sw/V_LO.
        vov_sw = self.quad[0].solve_vov_for_current(half_tail, sample)
        switching = max(1.0 - vov_sw / (math.pi * v_lo), 0.2)

        eta = self.rterm.value(sample) / (self._rs + self.rterm.value(sample))
        conversion_gm = (2.0 / math.pi) * gm_rf * switching
        conversion_gm *= self._quad_imbalance(sample) * balance_factor
        rif = self.rif.value(sample)
        ss_if = self._if_followers(sample)
        a_if = 0.5 * sum(
            ss.gm * rif / (1.0 + ss.gm * rif) for ss in ss_if
        )
        gain = eta * conversion_gm * r_load * a_if
        if gain <= 0.0:
            raise ArithmeticError("mixer conversion gain is non-positive")
        gain_db = 20.0 * math.log10(gain)

        # ---------------- noise budget (output-referred, V²/Hz) ----------
        four_kt = 4.0 * BOLTZMANN * ROOM_TEMPERATURE
        gc_rl = conversion_gm * r_load
        # Source noise through the termination divider.
        source_out = four_kt * self._rs * (eta * gc_rl) ** 2
        # Termination resistor: its Norton current sees Rs ∥ Rterm at the gate.
        r_par = (
            self._rs
            * self.rterm.value(sample)
            / (self._rs + self.rterm.value(sample))
        )
        term_out = four_kt / self.rterm.value(sample) * (r_par * gc_rl) ** 2
        # Transconductor drains: commutation folds noise with the same 2/π.
        gm_noise = sum(ss.drain_noise_psd for ss in ss_rf)
        transconductor_out = gm_noise * ((2.0 / math.pi) * r_load) ** 2 * 0.5
        # Switching quad: Terrovitis-Meyer average conductance 2·I/(π·V_LO).
        quad_gamma = self.quad[0].params.gamma_noise
        quad_conductance = 2.0 * tail_current / (math.pi * v_lo)
        quad_out = 2.0 * four_kt * quad_gamma * quad_conductance * r_load**2
        # Loads.
        load_out = 2.0 * four_kt * r_load
        # IF followers: drain noise current over the follower output
        # impedance 1/(gm + 1/Rif).
        if_out = sum(
            ss.drain_noise_psd / (ss.gm + 1.0 / rif) ** 2 for ss in ss_if
        )

        total = (
            (source_out + term_out + transconductor_out + quad_out + load_out)
            * a_if**2
            + if_out
        )
        # SSB measurement doubles the noise relative to the signal band.
        noise_factor = 2.0 * total / (source_out * a_if**2)
        nf_db = noise_figure_db(noise_factor)

        # ---------------- compression ------------------------------------
        # Two mechanisms combine: (i) the transconductor's own power-series
        # compression (vgs = η·vin/2 per device), and (ii) output clipping
        # when the IF swing approaches the supply headroom — which is what
        # couples I1dBCP to the tunable load. The composite input 1 dB
        # point adds the mechanisms in 1/A² (dominant-pole style), the
        # usual cascade-compression approximation.
        g1 = gm_rf
        g3 = 0.5 * (ss_rf[0].gm3 + ss_rf[1].gm3)
        drive = 0.5 * eta
        a_device = vrms_from_dbm(
            input_p1db_dbm_from_series(g1, g3, self._rs), self._rs
        ) / drive
        a_clip = 0.89 * self._output_headroom / gain
        a_total = 1.0 / math.sqrt(1.0 / a_device**2 + 1.0 / a_clip**2)
        i1db_dbm = dbm_from_vrms(a_total, self._rs)

        return {"nf_db": nf_db, "gain_db": gain_db, "i1db_dbm": i1db_dbm}
