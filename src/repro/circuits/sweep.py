"""Swept-frequency characterization of the tunable LNA.

VNA-style workload: the "states" are not knob codes but the points of a
frequency sweep — one S-parameter/noise measurement of the same amplifier
at K frequencies. This is C-BMF's regime pushed to the hundreds-of-states
scale (a 201-point sweep is the classic VNA default): adjacent frequency
points are strongly correlated, exactly what the AR(1) prior models, and
the per-point posterior cost is what the Kronecker solver
(``repro.core.kronecker``) removes.

Two properties distinguish the sweep family from the knob circuits:

* ``shared_samples = True`` — a sweep measures *one* die across all
  frequencies, so every state is evaluated on the same process samples.
  The resulting datasets are state-balanced, which makes the whole fit
  path (S-OMP CV, EM, predictor) eligible for the Kronecker fast path.
* the bias knob is frozen at one code; the inner
  :class:`~repro.circuits.lna.TunableLNA` supplies the netlist through
  its public ``stamp_core``/``noise_setup`` helpers.

Metrics per (process sample, frequency point):

* ``s21_db`` — forward transmission from a Z0-terminated two-port
  testbench (:class:`~repro.circuits.sparams.TwoPortTestbench`);
* ``nf_db`` — noise figure at the point's frequency from the linear
  noise analysis.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.base import TunableCircuit
from repro.circuits.knobs import KnobConfiguration, TuningKnob, enumerate_states
from repro.circuits.lna import TunableLNA
from repro.circuits.sparams import TwoPortTestbench
from repro.circuits.noise import NoiseAnalysis
from repro.variation.process import ProcessModel, ProcessSample

__all__ = ["SweptLNA"]

#: VNA-default sweep length used by the registered ``lna_sweep`` datasets.
DEFAULT_SWEEP_POINTS = 201


class SweptLNA(TunableCircuit):
    """The tunable LNA measured over a frequency sweep.

    Parameters
    ----------
    n_points:
        Number of sweep points K (default 201, the VNA classic).
    f_start_hz, f_stop_hz:
        Sweep limits; the default 1.8–3.0 GHz brackets the 2.4 GHz band
        the LNA is tuned to, so the S21 curve carries the full tank
        resonance shape.
    bias_code:
        Frozen bias DAC code; ``None`` picks the mid code.
    n_bias_states:
        Resolution of the (frozen) bias DAC of the inner LNA. Kept small —
        the sweep's variation space should be the physical devices, not a
        wide mirror bank.
    """

    METRICS: Tuple[str, ...] = ("s21_db", "nf_db")
    shared_samples = True

    def __init__(
        self,
        n_points: int = DEFAULT_SWEEP_POINTS,
        f_start_hz: float = 1.8e9,
        f_stop_hz: float = 3.0e9,
        bias_code: Optional[int] = None,
        n_bias_states: int = 8,
    ) -> None:
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        if not 0.0 < f_start_hz < f_stop_hz:
            raise ValueError(
                f"need 0 < f_start_hz < f_stop_hz, got "
                f"{f_start_hz}..{f_stop_hz}"
            )
        # The inner LNA carries the devices/variation space; its padding is
        # skipped (n_variables=None) so the sweep models the physical
        # space only.
        self._lna = TunableLNA(n_states=n_bias_states, n_variables=None)
        if bias_code is None:
            bias_code = n_bias_states // 2
        if not 0 <= bias_code < n_bias_states:
            raise ValueError(
                f"bias_code {bias_code} out of range 0..{n_bias_states - 1}"
            )
        self._bias_state = self._lna.states[bias_code]
        knob = TuningKnob(
            "frequency_hz",
            tuple(np.linspace(f_start_hz, f_stop_hz, n_points)),
        )
        self._states = tuple(enumerate_states([knob]))

    # ------------------------------------------------------------------
    # TunableCircuit interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Circuit identifier."""
        return "lna_sweep"

    @property
    def process_model(self) -> ProcessModel:
        """The inner LNA's variation space (no peripheral padding)."""
        return self._lna.process_model

    @property
    def states(self) -> Tuple[KnobConfiguration, ...]:
        """One state per sweep frequency, in ascending order."""
        return self._states

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Performances of interest."""
        return self.METRICS

    @property
    def frequencies_hz(self) -> np.ndarray:
        """The sweep grid (K,)."""
        return np.array(
            [state.values["frequency_hz"] for state in self._states]
        )

    @property
    def bias_state(self) -> KnobConfiguration:
        """The frozen bias configuration of the inner LNA."""
        return self._bias_state

    # ------------------------------------------------------------------
    def evaluate(
        self, sample: ProcessSample, state: KnobConfiguration
    ) -> Dict[str, float]:
        """One sweep point: S21 and NF of the biased LNA at one frequency."""
        frequency = state.values["frequency_hz"]
        lna = self._lna
        bias = lna.bias_current(self._bias_state, sample)
        ss1 = lna.m1.small_signal(bias, sample)
        ss2 = lna.m2.small_signal(bias, sample)

        # S21 from the Z0-terminated two-port testbench (the testbench
        # supplies the source/load, so only the core is stamped).
        def build(circuit, port1, port2):
            lna.stamp_core(circuit, port1, port2, sample, ss1, ss2)

        sparams = TwoPortTestbench(build).at(frequency)
        s21_db = sparams.magnitude_db("s21")

        # NF at the same frequency from the quiet configuration.
        quiet, sources = lna.noise_setup(sample, ss1, ss2)
        nf_db = NoiseAnalysis(quiet, "out").noise_figure_db(
            frequency, sources, "RS"
        )
        return {"s21_db": s21_db, "nf_db": nf_db}
