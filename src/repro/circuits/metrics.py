"""RF metric math: dB conversions and weakly-nonlinear intercept points.

A memoryless transconductor is modeled by the power series

    i(v) = g1·v + g2·v² + g3·v³

around its bias point. The two-tone third-order intercept and the 1 dB
compression point follow from the classic expressions (see e.g. Razavi,
*RF Microelectronics*):

    A_IIP3  = sqrt(4/3 · |g1 / g3|)          (input amplitude, volts)
    A_1dB   = sqrt(0.145 · |g1 / g3|)        (input amplitude, volts)

Powers are referred to a source resistance (50 Ω by default) and expressed
in dBm.
"""

from __future__ import annotations

import math

__all__ = [
    "db",
    "db10",
    "undb",
    "undb10",
    "dbm_from_vrms",
    "vrms_from_dbm",
    "iip3_dbm_from_series",
    "input_p1db_dbm_from_series",
    "noise_figure_db",
]

DEFAULT_REFERENCE_OHMS = 50.0


def db(value: float) -> float:
    """Voltage/current ratio in dB: ``20·log10(value)``."""
    if value <= 0.0:
        raise ValueError(f"dB argument must be > 0, got {value}")
    return 20.0 * math.log10(value)


def db10(value: float) -> float:
    """Power ratio in dB: ``10·log10(value)``."""
    if value <= 0.0:
        raise ValueError(f"dB argument must be > 0, got {value}")
    return 10.0 * math.log10(value)


def undb(value_db: float) -> float:
    """Inverse of :func:`db`."""
    return 10.0 ** (value_db / 20.0)


def undb10(value_db: float) -> float:
    """Inverse of :func:`db10`."""
    return 10.0 ** (value_db / 10.0)


def dbm_from_vrms(
    vrms: float, reference_ohms: float = DEFAULT_REFERENCE_OHMS
) -> float:
    """Power of an RMS voltage across ``reference_ohms``, in dBm."""
    if vrms <= 0.0:
        raise ValueError(f"vrms must be > 0, got {vrms}")
    power_watts = vrms * vrms / reference_ohms
    return 10.0 * math.log10(power_watts / 1e-3)


def vrms_from_dbm(
    power_dbm: float, reference_ohms: float = DEFAULT_REFERENCE_OHMS
) -> float:
    """RMS voltage across ``reference_ohms`` carrying ``power_dbm``."""
    power_watts = 1e-3 * 10.0 ** (power_dbm / 10.0)
    return math.sqrt(power_watts * reference_ohms)


def iip3_dbm_from_series(
    g1: float, g3: float, reference_ohms: float = DEFAULT_REFERENCE_OHMS
) -> float:
    """Input third-order intercept from power-series coefficients, in dBm.

    The input amplitude at the intercept is ``sqrt(4/3 · |g1/g3|)`` (peak);
    the returned power uses the RMS value of that sinusoidal amplitude.
    """
    if g1 == 0.0 or g3 == 0.0:
        raise ValueError("g1 and g3 must be nonzero for a finite IIP3")
    amplitude_peak = math.sqrt(4.0 / 3.0 * abs(g1 / g3))
    return dbm_from_vrms(amplitude_peak / math.sqrt(2.0), reference_ohms)


def input_p1db_dbm_from_series(
    g1: float, g3: float, reference_ohms: float = DEFAULT_REFERENCE_OHMS
) -> float:
    """Input-referred 1 dB compression point from the power series, in dBm.

    Compression requires ``g3`` to oppose ``g1``; for same-sign coefficients
    (expansion) the magnitude is still used, matching the conventional
    ``A_1dB = sqrt(0.145·|g1/g3|)`` definition.
    """
    if g1 == 0.0 or g3 == 0.0:
        raise ValueError("g1 and g3 must be nonzero for a finite P1dB")
    amplitude_peak = math.sqrt(0.145 * abs(g1 / g3))
    return dbm_from_vrms(amplitude_peak / math.sqrt(2.0), reference_ohms)


def noise_figure_db(noise_factor: float) -> float:
    """Noise figure in dB from a linear noise factor (must be ≥ 1)."""
    if noise_factor < 1.0:
        # Round-off can land a hair under unity; clamp but reject real
        # violations which indicate an analysis bug.
        if noise_factor < 1.0 - 1e-9:
            raise ValueError(
                f"noise factor must be >= 1, got {noise_factor}"
            )
        noise_factor = 1.0
    return 10.0 * math.log10(noise_factor)
