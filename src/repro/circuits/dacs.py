"""Tuning DACs: thermometer current-mirror DAC and switched-resistor DAC.

These are the physical structures behind the paper's tuning knobs — the
LNA's "tunable current source" and the mixer's "two tunable load
resistors". Both are modeled at the device level so that *every unit cell
carries its own mismatch*, which is what creates the smooth state-to-state
variation of model coefficients that C-BMF exploits: adjacent codes share
all but one enabled cell.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuits.devices import Mosfet, MosfetParameters, Passive
from repro.variation.process import DeviceVariation, ProcessSample
from repro.variation.parameters import VariationKind

__all__ = ["CurrentMirrorDac", "SwitchedResistorBank", "FixedCurrentMirror"]


class CurrentMirrorDac:
    """Thermometer-coded tail/bias current DAC built from mirror cells.

    One diode-connected reference device sets the gate line from a fixed
    external reference current. A wide always-on "base" device supplies the
    floor current; each of ``n_cells`` thermometer cells adds one unit
    current when enabled. Every cell is a mirror device in series with a
    switch whose on-resistance degenerates the mirror slightly; a cascode
    and a layout dummy complete the cell (they carry mismatch variables but
    do not measurably move the cell current — deliberately, as on silicon).

    Parameters
    ----------
    name:
        Prefix for all device names.
    n_cells:
        Thermometer length; codes run 0..n_cells-1 enabling that many cells.
    reference_current:
        External reference, amperes.
    base_ratio:
        Width ratio of the always-on device to the reference device.
    unit_ratio:
        Width ratio of one thermometer cell to the reference device.
    switch_r_on:
        Nominal switch on-resistance, Ω.
    """

    def __init__(
        self,
        name: str,
        n_cells: int = 32,
        reference_current: float = 250e-6,
        base_ratio: float = 8.0,
        unit_ratio: float = 0.8,
        switch_r_on: float = 15.0,
    ) -> None:
        if n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {n_cells}")
        if reference_current <= 0.0:
            raise ValueError("reference_current must be > 0")
        self.name = name
        self.n_cells = n_cells
        self.reference_current = reference_current
        self.switch_r_on = switch_r_on

        ref_params = MosfetParameters(width_um=8.0, length_um=0.24)
        self.reference = Mosfet(f"{name}_ref", ref_params)
        self.base = Mosfet(
            f"{name}_base",
            MosfetParameters(
                width_um=ref_params.width_um * base_ratio,
                length_um=ref_params.length_um,
            ),
        )
        cell_params = MosfetParameters(
            width_um=ref_params.width_um * unit_ratio,
            length_um=ref_params.length_um,
        )
        switch_params = MosfetParameters(width_um=6.0, length_um=0.03)
        self.cells: List[Mosfet] = []
        self.switches: List[Mosfet] = []
        self.cascodes: List[Mosfet] = []
        self.dummies: List[Mosfet] = []
        for cell in range(n_cells):
            self.cells.append(Mosfet(f"{name}_m{cell}", cell_params))
            self.switches.append(Mosfet(f"{name}_sw{cell}", switch_params))
            self.cascodes.append(Mosfet(f"{name}_cas{cell}", cell_params))
            self.dummies.append(Mosfet(f"{name}_dmy{cell}", cell_params))

    def transistors(self) -> List[Mosfet]:
        """All MOSFETs of the DAC, reference first."""
        devices: List[Mosfet] = [self.reference, self.base]
        for group in (self.cells, self.switches, self.cascodes, self.dummies):
            devices.extend(group)
        return devices

    def device_variations(self) -> List[DeviceVariation]:
        """Mismatch declarations for the process model."""
        return [fet.variation() for fet in self.transistors()]

    # ------------------------------------------------------------------
    def _gate_overdrive(self, sample: Optional[ProcessSample]) -> float:
        """Gate-line overdrive set by the diode-connected reference."""
        return self.reference.solve_vov_for_current(
            self.reference_current, sample
        )

    def _mirrored_current(
        self,
        device: Mosfet,
        vov_gate: float,
        sample: Optional[ProcessSample],
        series_ohms: float = 0.0,
    ) -> float:
        """Current of one mirror device given the shared gate overdrive.

        The gate line sits at ``Vgs = vov_gate + vth(reference)``; the
        mirror device sees ``Vov = Vgs − vth(device)``, so threshold
        *mismatch* between the two moves the copied current while a global
        threshold shift cancels — standard mirror behaviour. A series switch
        drops ``I·R``, handled with one fixed-point refinement.
        """
        dvth = 0.0
        if sample is not None:
            dvth = sample.deviation(
                device.name, VariationKind.VTH
            ) - sample.deviation(self.reference.name, VariationKind.VTH)
        vov = vov_gate - dvth
        if vov <= 1e-3:
            return 0.0
        current = device.current_for_vov(vov, sample)
        if series_ohms > 0.0:
            vov_degraded = vov - current * series_ohms
            if vov_degraded <= 1e-3:
                return 0.0
            current = device.current_for_vov(vov_degraded, sample)
        return current

    def current(self, code: int, sample: Optional[ProcessSample] = None) -> float:
        """Total output current at thermometer ``code`` (0..n_cells−1)."""
        if not 0 <= code < self.n_cells:
            raise IndexError(
                f"code {code} out of range 0..{self.n_cells - 1}"
            )
        vov_gate = self._gate_overdrive(sample)
        total = self._mirrored_current(self.base, vov_gate, sample)
        for cell in range(code + 1):
            r_on = self.switch_r_on
            if sample is not None:
                r_on *= sample.relative(
                    self.switches[cell].name, VariationKind.RDS
                )
            total += self._mirrored_current(
                self.cells[cell], vov_gate, sample, series_ohms=r_on
            )
        return total

    def nominal_currents(self) -> List[float]:
        """Nominal output current of every code (typical corner)."""
        return [self.current(code) for code in range(self.n_cells)]


class FixedCurrentMirror:
    """Non-tunable current mirror: reference device + one output device.

    Used for fixed bias branches (e.g. the mixer tail current). Threshold
    and current-factor mismatch between the two devices moves the copied
    current, exactly as in the tunable DAC cells.
    """

    def __init__(
        self,
        name: str,
        reference_current: float,
        ratio: float = 8.0,
    ) -> None:
        if reference_current <= 0.0:
            raise ValueError("reference_current must be > 0")
        if ratio <= 0.0:
            raise ValueError("ratio must be > 0")
        self.name = name
        self.reference_current = reference_current
        ref_params = MosfetParameters(width_um=8.0, length_um=0.24)
        self.reference = Mosfet(f"{name}_ref", ref_params)
        self.output = Mosfet(
            f"{name}_out",
            MosfetParameters(
                width_um=ref_params.width_um * ratio,
                length_um=ref_params.length_um,
            ),
        )

    def transistors(self) -> List[Mosfet]:
        """Both mirror devices."""
        return [self.reference, self.output]

    def device_variations(self) -> List[DeviceVariation]:
        """Mismatch declarations for the process model."""
        return [fet.variation() for fet in self.transistors()]

    def current(self, sample: Optional[ProcessSample] = None) -> float:
        """Copied output current (amperes)."""
        vov_gate = self.reference.solve_vov_for_current(
            self.reference_current, sample
        )
        dvth = 0.0
        if sample is not None:
            dvth = sample.deviation(
                self.output.name, VariationKind.VTH
            ) - sample.deviation(self.reference.name, VariationKind.VTH)
        vov = vov_gate - dvth
        if vov <= 1e-3:
            return 0.0
        return self.output.current_for_vov(vov, sample)


class SwitchedResistorBank:
    """A tunable load resistor: base resistor with switchable parallel legs.

    ``code`` enables that many legs (thermometer). Each enabled leg places
    its resistor plus the switch on-resistance in parallel with the base, so
    increasing the code *lowers* the effective load. Every resistor segment
    and every switch carries mismatch.
    """

    def __init__(
        self,
        name: str,
        n_legs: int,
        base_ohms: float,
        leg_ohms: float,
        switch_r_on: float = 25.0,
        mismatch_sigma: float = 0.015,
    ) -> None:
        if n_legs < 1:
            raise ValueError(f"n_legs must be >= 1, got {n_legs}")
        self.name = name
        self.n_legs = n_legs
        self.switch_r_on = switch_r_on
        self.base = Passive(f"{name}_rbase", "resistor", base_ohms, mismatch_sigma)
        self.legs = [
            Passive(f"{name}_rleg{i}", "resistor", leg_ohms, mismatch_sigma)
            for i in range(n_legs)
        ]
        self.switches = [
            Mosfet(
                f"{name}_sw{i}",
                MosfetParameters(width_um=12.0, length_um=0.03),
            )
            for i in range(n_legs)
        ]

    def device_variations(self) -> List[DeviceVariation]:
        """Mismatch declarations for the process model."""
        declarations = [self.base.variation()]
        declarations.extend(leg.variation() for leg in self.legs)
        declarations.extend(sw.variation() for sw in self.switches)
        return declarations

    def resistance(self, code: int, sample: Optional[ProcessSample] = None) -> float:
        """Effective resistance at ``code`` enabled legs (0..n_legs)."""
        if not 0 <= code <= self.n_legs:
            raise IndexError(f"code {code} out of range 0..{self.n_legs}")
        conductance = 1.0 / self.base.value(sample)
        for leg in range(code):
            r_leg = self.legs[leg].value(sample)
            r_sw = self.switch_r_on
            if sample is not None:
                r_sw *= sample.relative(
                    self.switches[leg].name, VariationKind.RDS
                )
            conductance += 1.0 / (r_leg + r_sw)
        return 1.0 / conductance
