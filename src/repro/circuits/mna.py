"""Modified nodal analysis (MNA) for small-signal AC circuits.

A ``Circuit`` is a bag of linear elements between named nodes; node ``"0"``
is ground. ``solve(frequency)`` assembles the complex admittance system

    Y(jω) · v = i

and returns an ``AcSolution`` with node voltages. Voltage sources are
handled with auxiliary branch-current unknowns (the "modified" part of MNA).

Elements supported: resistor, capacitor, inductor, VCCS (voltage-controlled
current source, the small-signal transconductance), independent AC current
source, independent AC voltage source. This covers every small-signal
equivalent used by the LNA/mixer models and is easy to extend.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Circuit", "AcSolution"]

GROUND = "0"


@dataclass(frozen=True)
class _Resistor:
    name: str
    n1: str
    n2: str
    ohms: float


@dataclass(frozen=True)
class _Capacitor:
    name: str
    n1: str
    n2: str
    farads: float


@dataclass(frozen=True)
class _Inductor:
    name: str
    n1: str
    n2: str
    henries: float


@dataclass(frozen=True)
class _Vccs:
    """Current ``gm·(v_cp − v_cn)`` flowing from ``out_p`` into ``out_n``."""

    name: str
    out_p: str
    out_n: str
    ctrl_p: str
    ctrl_n: str
    gm: float


@dataclass(frozen=True)
class _CurrentSource:
    """AC current ``amps`` flowing out of ``n1`` into ``n2`` through the source."""

    name: str
    n1: str
    n2: str
    amps: complex


@dataclass(frozen=True)
class _VoltageSource:
    name: str
    n_plus: str
    n_minus: str
    volts: complex


class Circuit:
    """A small-signal AC circuit assembled element by element."""

    def __init__(self) -> None:
        self._nodes: Dict[str, int] = {}
        self._resistors: List[_Resistor] = []
        self._capacitors: List[_Capacitor] = []
        self._inductors: List[_Inductor] = []
        self._vccs: List[_Vccs] = []
        self._isources: List[_CurrentSource] = []
        self._vsources: List[_VoltageSource] = []
        self._names: set = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _register(self, name: str) -> None:
        if not name:
            raise ValueError("element name must be non-empty")
        if name in self._names:
            raise ValueError(f"duplicate element name {name!r}")
        self._names.add(name)

    def _node(self, name: str) -> int:
        """Intern a node name; ground maps to -1."""
        if name == GROUND:
            return -1
        if name not in self._nodes:
            self._nodes[name] = len(self._nodes)
        return self._nodes[name]

    def add_resistor(self, name: str, n1: str, n2: str, ohms: float) -> None:
        """Add a resistor of ``ohms`` between ``n1`` and ``n2``."""
        self._register(name)
        if ohms <= 0.0:
            raise ValueError(f"resistor {name!r} must have ohms > 0")
        self._node(n1), self._node(n2)
        self._resistors.append(_Resistor(name, n1, n2, ohms))

    def add_capacitor(self, name: str, n1: str, n2: str, farads: float) -> None:
        """Add a capacitor of ``farads`` between ``n1`` and ``n2``."""
        self._register(name)
        if farads <= 0.0:
            raise ValueError(f"capacitor {name!r} must have farads > 0")
        self._node(n1), self._node(n2)
        self._capacitors.append(_Capacitor(name, n1, n2, farads))

    def add_inductor(self, name: str, n1: str, n2: str, henries: float) -> None:
        """Add an inductor of ``henries`` between ``n1`` and ``n2``."""
        self._register(name)
        if henries <= 0.0:
            raise ValueError(f"inductor {name!r} must have henries > 0")
        self._node(n1), self._node(n2)
        self._inductors.append(_Inductor(name, n1, n2, henries))

    def add_vccs(
        self,
        name: str,
        out_p: str,
        out_n: str,
        ctrl_p: str,
        ctrl_n: str,
        gm: float,
    ) -> None:
        """Add a transconductance: current gm·v(ctrl) from out_p to out_n."""
        self._register(name)
        for node in (out_p, out_n, ctrl_p, ctrl_n):
            self._node(node)
        self._vccs.append(_Vccs(name, out_p, out_n, ctrl_p, ctrl_n, gm))

    def add_current_source(
        self, name: str, n1: str, n2: str, amps: complex
    ) -> None:
        """Add an AC current source driving ``amps`` from n1 into n2."""
        self._register(name)
        self._node(n1), self._node(n2)
        self._isources.append(_CurrentSource(name, n1, n2, complex(amps)))

    def add_voltage_source(
        self, name: str, n_plus: str, n_minus: str, volts: complex
    ) -> None:
        """Add an AC voltage source of ``volts`` between n_plus and n_minus."""
        self._register(name)
        self._node(n_plus), self._node(n_minus)
        self._vsources.append(
            _VoltageSource(name, n_plus, n_minus, complex(volts))
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> Tuple[str, ...]:
        """Non-ground node names, in internal order."""
        return tuple(
            sorted(self._nodes, key=lambda node: self._nodes[node])
        )

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # assembly / solve
    # ------------------------------------------------------------------
    def _assemble(self, frequency_hz: float):
        if frequency_hz < 0.0:
            raise ValueError(f"frequency must be >= 0, got {frequency_hz}")
        omega = 2.0 * math.pi * frequency_hz
        n = len(self._nodes)
        n_aux = len(self._vsources)
        size = n + n_aux
        matrix = np.zeros((size, size), dtype=complex)
        rhs = np.zeros(size, dtype=complex)

        def stamp_admittance(n1: str, n2: str, y: complex) -> None:
            i, j = self._nodes.get(n1, -1), self._nodes.get(n2, -1)
            if n1 == GROUND:
                i = -1
            if n2 == GROUND:
                j = -1
            if i >= 0:
                matrix[i, i] += y
            if j >= 0:
                matrix[j, j] += y
            if i >= 0 and j >= 0:
                matrix[i, j] -= y
                matrix[j, i] -= y

        for r in self._resistors:
            stamp_admittance(r.n1, r.n2, 1.0 / r.ohms)
        for c in self._capacitors:
            stamp_admittance(c.n1, c.n2, 1j * omega * c.farads)
        for ind in self._inductors:
            if omega == 0.0:
                # DC: an ideal inductor is a short; approximate with a tiny
                # series resistance to keep the system nonsingular.
                stamp_admittance(ind.n1, ind.n2, 1.0 / 1e-6)
            else:
                stamp_admittance(ind.n1, ind.n2, 1.0 / (1j * omega * ind.henries))

        for g in self._vccs:
            rows = [
                (g.out_p, +1.0),
                (g.out_n, -1.0),
            ]
            cols = [
                (g.ctrl_p, +1.0),
                (g.ctrl_n, -1.0),
            ]
            for row_node, row_sign in rows:
                if row_node == GROUND:
                    continue
                i = self._nodes[row_node]
                for col_node, col_sign in cols:
                    if col_node == GROUND:
                        continue
                    j = self._nodes[col_node]
                    matrix[i, j] += row_sign * col_sign * g.gm

        for src in self._isources:
            # Current flows out of n1, through the source, into n2: KCL sees
            # an injection of +amps at n2 and −amps at n1.
            if src.n1 != GROUND:
                rhs[self._nodes[src.n1]] -= src.amps
            if src.n2 != GROUND:
                rhs[self._nodes[src.n2]] += src.amps

        for k, src in enumerate(self._vsources):
            row = n + k
            if src.n_plus != GROUND:
                i = self._nodes[src.n_plus]
                matrix[i, row] += 1.0
                matrix[row, i] += 1.0
            if src.n_minus != GROUND:
                j = self._nodes[src.n_minus]
                matrix[j, row] -= 1.0
                matrix[row, j] -= 1.0
            rhs[row] = src.volts

        return matrix, rhs

    def solve(self, frequency_hz: float) -> "AcSolution":
        """Solve the AC system at one frequency."""
        matrix, rhs = self._assemble(frequency_hz)
        if matrix.shape[0] == 0:
            raise ValueError("circuit has no non-ground nodes")
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as error:
            raise ValueError(
                f"singular MNA system at {frequency_hz} Hz — is every node "
                "connected to ground through some element?"
            ) from error
        n = len(self._nodes)
        return AcSolution(
            frequency_hz=frequency_hz,
            node_index=dict(self._nodes),
            voltages=solution[:n],
            source_currents={
                src.name: solution[n + k]
                for k, src in enumerate(self._vsources)
            },
        )

    def solve_with_current_injection(
        self, frequency_hz: float, node_from: str, node_to: str
    ) -> "AcSolution":
        """Solve with all sources plus a unit test current injection.

        Used by the noise analysis to compute transfer functions from an
        arbitrary element location to the output. The injection drives 1 A
        from ``node_from`` into ``node_to`` (both may be ground).
        """
        matrix, rhs = self._assemble(frequency_hz)
        if node_from != GROUND:
            if node_from not in self._nodes:
                raise KeyError(f"unknown node {node_from!r}")
            rhs[self._nodes[node_from]] -= 1.0
        if node_to != GROUND:
            if node_to not in self._nodes:
                raise KeyError(f"unknown node {node_to!r}")
            rhs[self._nodes[node_to]] += 1.0
        solution = np.linalg.solve(matrix, rhs)
        n = len(self._nodes)
        return AcSolution(
            frequency_hz=frequency_hz,
            node_index=dict(self._nodes),
            voltages=solution[:n],
            source_currents={
                src.name: solution[n + k]
                for k, src in enumerate(self._vsources)
            },
        )

    def frequency_response(
        self,
        frequencies_hz,
        node_plus: str,
        node_minus: str = GROUND,
    ) -> np.ndarray:
        """Complex response of a node (pair) over a frequency list.

        Solves the circuit with its own sources at every frequency and
        returns ``v(node_plus) − v(node_minus)`` as a complex array —
        the AC sweep of a classic simulator.
        """
        frequencies = np.asarray(frequencies_hz, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies_hz must be a non-empty 1-D array")
        response = np.empty(frequencies.size, dtype=complex)
        for index, frequency in enumerate(frequencies):
            solution = self.solve(float(frequency))
            response[index] = solution.voltage_between(node_plus, node_minus)
        return response

    def solve_injections(
        self,
        frequency_hz: float,
        injections: "List[Tuple[str, str]]",
    ) -> List["AcSolution"]:
        """Solve many unit-current injections with one factorization.

        ``injections`` is a list of ``(node_from, node_to)`` pairs; each
        yields an ``AcSolution`` for 1 A driven out of ``node_from`` into
        ``node_to`` (independent sources stay active in all of them). Much
        faster than repeated :meth:`solve_with_current_injection` because the
        MNA matrix is factorized once.
        """
        matrix, base_rhs = self._assemble(frequency_hz)
        rhs = np.tile(base_rhs[:, None], (1, len(injections)))
        for column, (node_from, node_to) in enumerate(injections):
            for node, sign in ((node_from, -1.0), (node_to, +1.0)):
                if node == GROUND:
                    continue
                if node not in self._nodes:
                    raise KeyError(f"unknown node {node!r}")
                rhs[self._nodes[node], column] += sign
        solutions = np.linalg.solve(matrix, rhs)
        n = len(self._nodes)
        node_index = dict(self._nodes)
        return [
            AcSolution(
                frequency_hz=frequency_hz,
                node_index=node_index,
                voltages=solutions[:n, column],
                source_currents={
                    src.name: solutions[n + k, column]
                    for k, src in enumerate(self._vsources)
                },
            )
            for column in range(len(injections))
        ]


@dataclass
class AcSolution:
    """Result of one AC solve: complex node voltages at one frequency."""

    frequency_hz: float
    node_index: Dict[str, int]
    voltages: np.ndarray
    source_currents: Dict[str, complex] = field(default_factory=dict)

    def voltage(self, node: str) -> complex:
        """Complex voltage of ``node`` (ground returns 0)."""
        if node == GROUND:
            return 0.0 + 0.0j
        if node not in self.node_index:
            raise KeyError(f"unknown node {node!r}")
        return complex(self.voltages[self.node_index[node]])

    def voltage_between(self, n_plus: str, n_minus: str) -> complex:
        """Complex differential voltage ``v(n_plus) − v(n_minus)``."""
        return self.voltage(n_plus) - self.voltage(n_minus)

    def magnitude_db(self, node: str) -> float:
        """Node voltage magnitude in dBV."""
        magnitude = abs(self.voltage(node))
        if magnitude <= 0.0:
            raise ValueError(f"node {node!r} voltage is zero")
        return 20.0 * math.log10(magnitude)

    def phase_deg(self, node: str) -> float:
        """Node voltage phase in degrees."""
        return math.degrees(cmath.phase(self.voltage(node)))
