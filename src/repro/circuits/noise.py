"""Linear noise analysis on top of the MNA solver.

Each physical noise generator is represented as a current source between two
nodes with a one-sided PSD in A²/Hz (Norton form; a resistor's ``4kT/R``, a
MOSFET drain's ``4kTγgm``, a gate resistance's ``4kT/Rg`` converted through
the local transconductance, ...). Since generators are uncorrelated, each is
injected separately with unit amplitude, the transfer ``H(jω)`` to the
designated output is read off, and powers add:

    S_out(ω) = Σ_sources |H_s(jω)|² · S_s

The noise factor is then the classic ratio

    F = S_out,total / S_out,due-to-source-resistance

evaluated at the operating frequency. The circuit handed to the analysis
must contain the *zero-valued* input excitation (so the source impedance is
in place but silent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.circuits.metrics import noise_figure_db
from repro.circuits.mna import Circuit

__all__ = ["NoiseSource", "NoiseContribution", "NoiseAnalysis"]


@dataclass(frozen=True)
class NoiseSource:
    """One uncorrelated noise generator in Norton (current) form.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"M1.drain"``).
    node_from / node_to:
        The injection nodes: the unit test current flows out of
        ``node_from`` into ``node_to``.
    psd_a2_per_hz:
        One-sided current PSD in A²/Hz.
    """

    name: str
    node_from: str
    node_to: str
    psd_a2_per_hz: float

    def __post_init__(self) -> None:
        if self.psd_a2_per_hz < 0.0:
            raise ValueError(
                f"noise PSD must be >= 0, got {self.psd_a2_per_hz}"
            )


@dataclass(frozen=True)
class NoiseContribution:
    """Output-referred contribution of one generator."""

    name: str
    input_psd: float
    transfer_mag_squared: float

    @property
    def output_psd(self) -> float:
        """Contribution to the output voltage PSD, V²/Hz."""
        return self.input_psd * self.transfer_mag_squared


class NoiseAnalysis:
    """Noise solve for one circuit and one differential output.

    Parameters
    ----------
    circuit:
        The small-signal circuit with all independent sources set to zero
        amplitude (their impedances stay in place).
    output_plus / output_minus:
        Output nodes; single-ended outputs use ground for the minus node.
    """

    def __init__(
        self, circuit: Circuit, output_plus: str, output_minus: str = "0"
    ) -> None:
        self._circuit = circuit
        self._out_p = output_plus
        self._out_n = output_minus

    def contributions(
        self, frequency_hz: float, sources: Sequence[NoiseSource]
    ) -> List[NoiseContribution]:
        """Per-generator output contributions at one frequency."""
        if not sources:
            raise ValueError("at least one noise source is required")
        solutions = self._circuit.solve_injections(
            frequency_hz,
            [(source.node_from, source.node_to) for source in sources],
        )
        results: List[NoiseContribution] = []
        for source, solution in zip(sources, solutions):
            transfer = solution.voltage_between(self._out_p, self._out_n)
            results.append(
                NoiseContribution(
                    name=source.name,
                    input_psd=source.psd_a2_per_hz,
                    transfer_mag_squared=abs(transfer) ** 2,
                )
            )
        return results

    def output_psd(
        self, frequency_hz: float, sources: Sequence[NoiseSource]
    ) -> float:
        """Total output voltage PSD, V²/Hz."""
        return sum(
            c.output_psd for c in self.contributions(frequency_hz, sources)
        )

    def noise_factor(
        self,
        frequency_hz: float,
        sources: Sequence[NoiseSource],
        reference: str,
    ) -> float:
        """Noise factor F relative to the generator named ``reference``.

        ``reference`` must name the source-resistance generator; its output
        contribution is the denominator of F.
        """
        contributions = self.contributions(frequency_hz, sources)
        by_name: Dict[str, NoiseContribution] = {
            c.name: c for c in contributions
        }
        if reference not in by_name:
            raise KeyError(
                f"reference source {reference!r} not among "
                f"{sorted(by_name)}"
            )
        reference_psd = by_name[reference].output_psd
        if reference_psd <= 0.0:
            raise ValueError(
                "reference source contributes zero output noise; check the "
                "output nodes and source impedance"
            )
        total = sum(c.output_psd for c in contributions)
        return total / reference_psd

    def noise_figure_db(
        self,
        frequency_hz: float,
        sources: Sequence[NoiseSource],
        reference: str,
    ) -> float:
        """Noise figure in dB (see :meth:`noise_factor`)."""
        return noise_figure_db(
            self.noise_factor(frequency_hz, sources, reference)
        )

    def budget_report(
        self,
        frequency_hz: float,
        sources: Sequence[NoiseSource],
        reference: str,
    ) -> str:
        """Human-readable noise budget, largest contributor first.

        The classic designer's table: each generator's share of the total
        output noise, plus the resulting noise figure against
        ``reference``.
        """
        contributions = self.contributions(frequency_hz, sources)
        total = sum(c.output_psd for c in contributions)
        if total <= 0.0:
            raise ValueError("total output noise is zero")
        ranked = sorted(
            contributions, key=lambda c: c.output_psd, reverse=True
        )
        lines = [
            f"noise budget at {frequency_hz / 1e9:.3f} GHz "
            f"(output PSD {total:.3e} V²/Hz)",
            f"{'source':<14}{'V²/Hz':>12}{'share':>9}",
        ]
        for c in ranked:
            lines.append(
                f"{c.name:<14}{c.output_psd:>12.3e}"
                f"{c.output_psd / total:>8.1%}"
            )
        nf = self.noise_figure_db(frequency_hz, sources, reference)
        lines.append(f"noise figure vs {reference}: {nf:.3f} dB")
        return "\n".join(lines)
