"""Two-port/one-port RF network helpers.

Small utilities on top of the MNA solver: reflection coefficients and
return loss from computed impedances, impedance↔reflection conversion, and
the standard power-gain definitions. Used by the LNA's input-match
diagnostics and available to users building their own testbenches.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

__all__ = [
    "reflection_coefficient",
    "impedance_from_reflection",
    "return_loss_db",
    "vswr",
    "mismatch_loss_db",
    "transducer_gain_db",
]

DEFAULT_Z0 = 50.0


def reflection_coefficient(
    impedance: complex, z0: float = DEFAULT_Z0
) -> complex:
    """Γ = (Z − Z0)/(Z + Z0)."""
    if z0 <= 0.0:
        raise ValueError(f"z0 must be > 0, got {z0}")
    impedance = complex(impedance)
    denominator = impedance + z0
    if denominator == 0:
        raise ValueError("impedance equals -z0; reflection undefined")
    return (impedance - z0) / denominator


def impedance_from_reflection(
    gamma: complex, z0: float = DEFAULT_Z0
) -> complex:
    """Inverse of :func:`reflection_coefficient`."""
    gamma = complex(gamma)
    if abs(1.0 - gamma) < 1e-15:
        raise ValueError("reflection of +1 corresponds to infinite impedance")
    return z0 * (1.0 + gamma) / (1.0 - gamma)


def return_loss_db(impedance: complex, z0: float = DEFAULT_Z0) -> float:
    """Return loss −20·log10|Γ| in dB (positive for any real match)."""
    magnitude = abs(reflection_coefficient(impedance, z0))
    if magnitude <= 0.0:
        return math.inf
    return -20.0 * math.log10(magnitude)


def vswr(impedance: complex, z0: float = DEFAULT_Z0) -> float:
    """Voltage standing-wave ratio (1 for a perfect match)."""
    magnitude = abs(reflection_coefficient(impedance, z0))
    if magnitude >= 1.0:
        return math.inf
    return (1.0 + magnitude) / (1.0 - magnitude)


def mismatch_loss_db(impedance: complex, z0: float = DEFAULT_Z0) -> float:
    """Power lost to input mismatch: −10·log10(1 − |Γ|²)."""
    magnitude = abs(reflection_coefficient(impedance, z0))
    if magnitude >= 1.0:
        return math.inf
    return -10.0 * math.log10(1.0 - magnitude * magnitude)


def transducer_gain_db(
    v_out_rms: float,
    r_load: float,
    v_available_rms: float,
    r_source: float,
) -> float:
    """Transducer power gain: delivered load power over available power."""
    for name, value in (
        ("v_out_rms", v_out_rms),
        ("r_load", r_load),
        ("v_available_rms", v_available_rms),
        ("r_source", r_source),
    ):
        if value <= 0.0:
            raise ValueError(f"{name} must be > 0, got {value}")
    p_load = v_out_rms * v_out_rms / r_load
    p_available = v_available_rms * v_available_rms / (4.0 * r_source)
    return 10.0 * math.log10(p_load / p_available)
