"""Synthetic tunable analog/RF circuits and the analysis engines behind them.

The two circuits from the paper's evaluation — a tunable 2.4 GHz LNA and a
tunable 2.4 GHz down-conversion mixer — are implemented on top of:

* an analytic MOSFET/passive device layer (``devices``),
* a modified-nodal-analysis small-signal AC solver (``mna``),
* a linear noise analysis (``noise``),
* weakly-nonlinear metric math (``metrics``).

Each circuit exposes ``evaluate(sample, state) → PerformanceValues`` so the
Monte Carlo engine can play the role of the paper's transistor-level
simulator.
"""

from repro.circuits.devices import (
    Mosfet,
    MosfetParameters,
    MosfetSmallSignal,
    Passive,
)
from repro.circuits.knobs import KnobConfiguration, TuningKnob
from repro.circuits.lna import TunableLNA
from repro.circuits.metrics import (
    db,
    db10,
    dbm_from_vrms,
    iip3_dbm_from_series,
    input_p1db_dbm_from_series,
    undb,
    undb10,
)
from repro.circuits.mixer import TunableMixer
from repro.circuits.mna import AcSolution, Circuit
from repro.circuits.noise import NoiseAnalysis, NoiseContribution
from repro.circuits.sparams import SParameters, TwoPortTestbench
from repro.circuits.sweep import SweptLNA
from repro.circuits.vco import TunableVCO

__all__ = [
    "Mosfet",
    "MosfetParameters",
    "MosfetSmallSignal",
    "Passive",
    "KnobConfiguration",
    "TuningKnob",
    "TunableLNA",
    "TunableMixer",
    "TunableVCO",
    "SweptLNA",
    "Circuit",
    "AcSolution",
    "NoiseAnalysis",
    "NoiseContribution",
    "SParameters",
    "TwoPortTestbench",
    "db",
    "db10",
    "undb",
    "undb10",
    "dbm_from_vrms",
    "iip3_dbm_from_series",
    "input_p1db_dbm_from_series",
]
