"""Tunable LC voltage-controlled oscillator (extra example circuit).

The paper's introduction names phase noise as the canonical analog/RF
performance to model; this VCO provides it as a third tunable circuit for
the examples and tests (the evaluation section itself only uses the LNA and
mixer). Topology: NMOS cross-coupled pair across an LC tank, tail-current
mirror, and a thermometer switched-capacitor bank as the frequency-tuning
knob — the standard band-select arrangement.

Metrics per (process sample, knob state):

* ``freq_ghz`` — oscillation frequency ``1/(2π√(L·C_tot))`` with the
  enabled bank capacitors (each carrying its own mismatch) plus the pair's
  parasitics;
* ``pnoise_dbc`` — phase noise at a fixed offset from Leeson's equation
  with the device excess-noise factor and the current-limited amplitude;
* ``power_mw`` — tail current × supply.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.circuits.base import TunableCircuit, peripheral_padding
from repro.circuits.dacs import FixedCurrentMirror
from repro.circuits.devices import (
    BOLTZMANN,
    ROOM_TEMPERATURE,
    Mosfet,
    MosfetParameters,
    Passive,
)
from repro.circuits.knobs import KnobConfiguration, TuningKnob, enumerate_states
from repro.variation.process import ProcessModel, ProcessSample
from repro.variation.parameters import VariationKind

__all__ = ["TunableVCO"]


class TunableVCO(TunableCircuit):
    """Tunable 5 GHz-class LC VCO with a switched-capacitor band knob.

    Parameters
    ----------
    n_states:
        Number of knob configurations (bank codes 0..n_states−1).
    n_variables:
        Optional exact variable count via peripheral padding; ``None``
        keeps the natural (unpadded) space.
    offset_hz:
        Phase-noise offset frequency (default 1 MHz).
    supply_volts:
        Supply for the power metric and the amplitude clip.
    """

    METRICS: Tuple[str, ...] = ("freq_ghz", "pnoise_dbc", "power_mw")

    def __init__(
        self,
        n_states: int = 16,
        n_variables: Optional[int] = None,
        offset_hz: float = 1e6,
        supply_volts: float = 1.0,
    ) -> None:
        if n_states < 2:
            raise ValueError(f"n_states must be >= 2, got {n_states}")
        if offset_hz <= 0.0:
            raise ValueError("offset_hz must be > 0")
        self._offset = offset_hz
        self._vdd = supply_volts

        pair_params = MosfetParameters(width_um=30.0, length_um=0.03)
        self.pair = (Mosfet("MXC1", pair_params), Mosfet("MXC2", pair_params))
        self.tail = FixedCurrentMirror("VTAIL", 250e-6, ratio=12.0)

        self.tank_l = Passive("LTANK", "inductor", 0.8e-9, 0.02)
        self.tank_c = Passive("CTANK", "capacitor", 0.9e-12, 0.02)
        #: Tank quality factor resistance (parallel loss at resonance).
        self.tank_rp = Passive("RPTANK", "resistor", 400.0, 0.05)

        unit_c = 45e-15
        self.bank_caps = tuple(
            Passive(f"CB{i}", "capacitor", unit_c, 0.02)
            for i in range(n_states - 1)
        )
        switch_params = MosfetParameters(width_um=10.0, length_um=0.03)
        self.bank_switches = tuple(
            Mosfet(f"MSWB{i}", switch_params) for i in range(n_states - 1)
        )

        declarations = [fet.variation() for fet in self.pair]
        declarations.extend(self.tail.device_variations())
        declarations.extend(
            p.variation()
            for p in (self.tank_l, self.tank_c, self.tank_rp)
        )
        declarations.extend(c.variation() for c in self.bank_caps)
        declarations.extend(s.variation() for s in self.bank_switches)

        if n_variables is not None:
            from repro.variation.parameters import GLOBAL_PARAMETER_SET

            current = len(GLOBAL_PARAMETER_SET) + sum(
                len(d.specs) for d in declarations
            )
            declarations.extend(
                peripheral_padding("VCOPER", n_variables, current)
            )
        self._process_model = ProcessModel(declarations)
        if n_variables is not None:
            assert self._process_model.n_variables == n_variables

        knob = TuningKnob(
            "band_code", tuple(float(code) for code in range(n_states))
        )
        self._states = tuple(enumerate_states([knob]))

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Circuit identifier."""
        return "vco"

    @property
    def process_model(self) -> ProcessModel:
        """The circuit's full variation space."""
        return self._process_model

    @property
    def states(self) -> Tuple[KnobConfiguration, ...]:
        """Ordered knob configurations."""
        return self._states

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Performances of interest."""
        return self.METRICS

    # ------------------------------------------------------------------
    def tank_capacitance(
        self, state: KnobConfiguration, sample: Optional[ProcessSample]
    ) -> float:
        """Total tank capacitance at ``state`` (farads)."""
        code = int(state.values["band_code"])
        total = self.tank_c.value(sample)
        for index in range(code):
            total += self.bank_caps[index].value(sample)
        # Cross-coupled pair parasitics load the tank.
        half_tail = 0.5 * self.tail.current(sample)
        for fet in self.pair:
            ss = fet.small_signal(max(half_tail, 1e-5), sample)
            total += ss.cgs + 4.0 * ss.cgd  # Miller-doubled, both sides
        return total

    def evaluate(
        self, sample: ProcessSample, state: KnobConfiguration
    ) -> Dict[str, float]:
        """One 'transistor-level simulation' of this VCO."""
        tail_current = self.tail.current(sample)
        inductance = self.tank_l.value(sample)
        capacitance = self.tank_capacitance(state, sample)

        omega = 1.0 / math.sqrt(inductance * capacitance)
        freq_ghz = omega / (2.0 * math.pi) / 1e9

        # Current-limited amplitude, clipped by the supply headroom.
        r_parallel = self.tank_rp.value(sample)
        amplitude = (2.0 / math.pi) * tail_current * r_parallel
        amplitude = min(amplitude, 0.8 * self._vdd)
        if amplitude <= 0.0:
            raise ArithmeticError("VCO failed to start (zero amplitude)")

        # Leeson with the pair's excess noise: F = 1 + γ (conservative).
        quality = r_parallel / (omega * inductance)
        gamma = self.pair[0].params.gamma_noise
        noise_factor = 1.0 + gamma
        signal_power = 0.5 * amplitude * amplitude / r_parallel
        f0 = omega / (2.0 * math.pi)
        leeson = (
            2.0
            * noise_factor
            * BOLTZMANN
            * ROOM_TEMPERATURE
            / signal_power
            * (1.0 + (f0 / (2.0 * quality * self._offset)) ** 2)
        )
        pnoise_dbc = 10.0 * math.log10(leeson)

        power_mw = tail_current * self._vdd * 1e3
        return {
            "freq_ghz": freq_ghz,
            "pnoise_dbc": pnoise_dbc,
            "power_mw": power_mw,
        }
