"""Common scaffolding for tunable circuits.

A tunable circuit bundles a process model (its full variation space), an
ordered list of knob states and an ``evaluate`` method that plays the role
of one transistor-level simulation: normalized sample in, performance
metrics out.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.knobs import KnobConfiguration
from repro.variation.parameters import ParameterSpec, VariationKind
from repro.variation.process import DeviceVariation, ProcessModel, ProcessSample

__all__ = ["TunableCircuit", "peripheral_padding"]


class TunableCircuit(abc.ABC):
    """Abstract tunable circuit: process model + states + evaluator."""

    #: Preferred sampling mode for :meth:`MonteCarloEngine.run`: True means
    #: every state should see the *same* process samples by default (one
    #: die measured at all knob settings). Circuits whose states are sweep
    #: points of one measurement — e.g. the swept-frequency family — set
    #: this, which also makes their datasets state-balanced and therefore
    #: eligible for the Kronecker fit path (``repro.core.kronecker``).
    shared_samples: bool = False

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short circuit identifier (e.g. ``"lna"``)."""

    @property
    @abc.abstractmethod
    def process_model(self) -> ProcessModel:
        """The circuit's full variation space."""

    @property
    @abc.abstractmethod
    def states(self) -> Tuple[KnobConfiguration, ...]:
        """Ordered knob configurations (the paper's k = 1..K)."""

    @property
    @abc.abstractmethod
    def metric_names(self) -> Tuple[str, ...]:
        """Names of the performances of interest."""

    @abc.abstractmethod
    def evaluate(
        self, sample: ProcessSample, state: KnobConfiguration
    ) -> Dict[str, float]:
        """One 'simulation': metrics of ``state`` under process ``sample``."""

    # ------------------------------------------------------------------
    # conveniences shared by all circuits
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of knob configurations K."""
        return len(self.states)

    @property
    def n_variables(self) -> int:
        """Dimension of the normalized variation vector x."""
        return self.process_model.n_variables

    def evaluate_x(
        self, x: np.ndarray, state: KnobConfiguration
    ) -> Dict[str, float]:
        """Evaluate from a raw normalized vector instead of a sample."""
        return self.evaluate(self.process_model.realize(x), state)

    def nominal(self, state: KnobConfiguration) -> Dict[str, float]:
        """Metrics at the typical corner (all variations zero)."""
        zero = np.zeros(self.n_variables)
        return self.evaluate(self.process_model.realize(zero), state)


def peripheral_padding(
    prefix: str,
    n_target_variables: int,
    n_current_variables: int,
    params_per_cell: int = 9,
) -> List[DeviceVariation]:
    """Peripheral device declarations that pad the space to an exact size.

    Real testbenches carry many devices whose mismatch barely touches the RF
    metrics (decoupling cells, guard rings, measurement buffers, wiring).
    The paper's variable counts (1264 for the LNA, 1303 for the mixer)
    include that periphery. This helper declares ``bias-decap`` style cells
    of ``params_per_cell`` mismatch parameters each, plus single-parameter
    wire segments for the remainder, so a circuit can match the paper's
    dimension exactly. These variables take part in sampling and modeling;
    their true metric sensitivity is (essentially) zero — which is precisely
    the sparsity the estimators under study must cope with.
    """
    remaining = n_target_variables - n_current_variables
    if remaining < 0:
        raise ValueError(
            f"already have {n_current_variables} variables, more than the "
            f"target {n_target_variables}"
        )
    cell_specs = tuple(
        ParameterSpec(kind, sigma)
        for kind, sigma in (
            (VariationKind.VTH, 3e-3),
            (VariationKind.BETA, 0.01),
            (VariationKind.LENGTH, 0.008),
            (VariationKind.TOX, 0.006),
            (VariationKind.CGS, 0.012),
            (VariationKind.CGD, 0.012),
            (VariationKind.RDS, 0.02),
            (VariationKind.RCWIRE, 0.05),
            (VariationKind.GSUB, 0.08),
        )[:params_per_cell]
    )
    declarations: List[DeviceVariation] = []
    index = 0
    while remaining >= params_per_cell:
        declarations.append(
            DeviceVariation(f"{prefix}_cell{index}", cell_specs)
        )
        remaining -= params_per_cell
        index += 1
    wire_spec = (ParameterSpec(VariationKind.RCWIRE, 0.05),)
    for wire in range(remaining):
        declarations.append(
            DeviceVariation(f"{prefix}_wire{wire}", wire_spec)
        )
    return declarations
