"""Analytic device models: MOSFET bias/small-signal/noise, and passives.

The MOSFET uses a velocity-saturation-corrected square law,

    I_D = ½·β·Vov² / (1 + θ·Vov),    β = k'·(W/L)

which is accurate enough for a 32nm-class RF device biased in strong
inversion and — crucially for this reproduction — responds smoothly and
near-linearly to small process deviations, matching the linear-model
assumption the paper fits under. All process sensitivity enters through a
``ProcessSample``: threshold shift (ΔVTH), current-factor deviation (Δβ),
gate-length deviation (ΔL, which also moves λ and Cgs), oxide thickness
(Δtox → β and gate capacitance), overlap capacitances and series resistance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.variation.mismatch import mosfet_mismatch_specs
from repro.variation.process import DeviceVariation, ProcessSample
from repro.variation.parameters import ParameterSpec, VariationKind

__all__ = [
    "MosfetParameters",
    "MosfetSmallSignal",
    "Mosfet",
    "Passive",
    "BOLTZMANN",
    "ROOM_TEMPERATURE",
]

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380649e-23
#: Analysis temperature, K.
ROOM_TEMPERATURE = 300.0


@dataclass(frozen=True)
class MosfetParameters:
    """Nominal (typical-corner) MOSFET parameters.

    Defaults are representative of a 32nm-class SOI NFET used at RF.
    """

    #: Gate width, µm.
    width_um: float = 20.0
    #: Gate length, µm.
    length_um: float = 0.03
    #: Nominal threshold voltage, V.
    vth0: float = 0.35
    #: Process transconductance k' = µ·Cox, A/V².
    kprime: float = 450e-6
    #: Velocity-saturation coefficient θ, 1/V.
    theta: float = 1.2
    #: Channel-length modulation coefficient at nominal L, 1/V.
    lambda0: float = 0.15
    #: Gate-oxide capacitance density, fF/µm².
    cox_ff_um2: float = 28.0
    #: Overlap capacitance per width, fF/µm.
    cov_ff_um: float = 0.35
    #: Thermal-noise excess factor γ (short channel).
    gamma_noise: float = 1.2
    #: Effective gate resistance, Ω (poly + contact, after fingering).
    rg_ohms: float = 4.0

    def __post_init__(self) -> None:
        for field_name in (
            "width_um",
            "length_um",
            "kprime",
            "cox_ff_um2",
            "gamma_noise",
        ):
            if getattr(self, field_name) <= 0.0:
                raise ValueError(f"{field_name} must be > 0")

    @property
    def beta(self) -> float:
        """Nominal current factor β = k'·W/L, A/V²."""
        return self.kprime * self.width_um / self.length_um


@dataclass(frozen=True)
class MosfetSmallSignal:
    """Small-signal operating point of one MOSFET.

    All conductances in siemens, capacitances in farads, currents in
    amperes, voltages in volts.
    """

    #: Drain bias current.
    id_amps: float
    #: Overdrive voltage Vov = Vgs − Vth.
    vov: float
    #: Transconductance ∂I_D/∂V_GS.
    gm: float
    #: Output conductance ∂I_D/∂V_DS.
    gds: float
    #: Gate-source capacitance.
    cgs: float
    #: Gate-drain capacitance.
    cgd: float
    #: Second-order transconductance ½·∂²I/∂V² (power-series g2).
    gm2: float
    #: Third-order transconductance ⅙·∂³I/∂V³ (power-series g3).
    gm3: float
    #: Drain thermal-noise PSD, A²/Hz.
    drain_noise_psd: float
    #: Gate-resistance value for noise, Ω.
    rg_ohms: float

    @property
    def ft_hz(self) -> float:
        """Unity-current-gain frequency ≈ gm / (2π(Cgs+Cgd))."""
        return self.gm / (2.0 * math.pi * (self.cgs + self.cgd))


class Mosfet:
    """A MOSFET instance: nominal parameters + its mismatch declaration.

    Parameters
    ----------
    name:
        Unique instance name, used as the device key in the process model.
    params:
        Nominal device parameters.
    """

    def __init__(self, name: str, params: Optional[MosfetParameters] = None):
        if not name:
            raise ValueError("MOSFET name must be non-empty")
        self.name = name
        self.params = params or MosfetParameters()

    def variation(self) -> DeviceVariation:
        """Mismatch declaration (Pelgrom-scaled) for the process model."""
        return DeviceVariation(
            self.name,
            mosfet_mismatch_specs(self.params.width_um, self.params.length_um),
        )

    # ------------------------------------------------------------------
    # bias / small signal
    # ------------------------------------------------------------------
    def _effective(self, sample: Optional[ProcessSample]):
        """Process-shifted (vth, beta, lambda, cox_scale, cgs_f, cgd_f, rds_f)."""
        p = self.params
        if sample is None:
            return p.vth0, p.beta, p.lambda0, 1.0, 1.0, 1.0, 1.0
        dvth = sample.deviation(self.name, VariationKind.VTH)
        beta_f = max(1.0 + sample.deviation(self.name, VariationKind.BETA), 0.05)
        length_f = max(
            1.0 + sample.deviation(self.name, VariationKind.LENGTH), 0.05
        )
        tox_f = max(1.0 + sample.deviation(self.name, VariationKind.TOX), 0.05)
        cgs_f = max(1.0 + sample.deviation(self.name, VariationKind.CGS), 0.05)
        cgd_f = max(1.0 + sample.deviation(self.name, VariationKind.CGD), 0.05)
        rds_f = max(1.0 + sample.deviation(self.name, VariationKind.RDS), 0.05)
        vth = p.vth0 + dvth
        # β = µCox·W/L: thinner oxide raises Cox; longer channel lowers W/L.
        beta = p.beta * beta_f / (length_f * tox_f)
        # λ ∝ 1/L.
        lam = p.lambda0 / length_f
        # Cox density ∝ 1/tox; Cgs area also ∝ L.
        cox_scale = length_f / tox_f
        return vth, beta, lam, cox_scale, cgs_f, cgd_f, rds_f

    def solve_vov_for_current(
        self, id_amps: float, sample: Optional[ProcessSample] = None
    ) -> float:
        """Overdrive voltage that conducts ``id_amps`` (saturation).

        Solves ``½β·Vov²/(1+θVov) = I_D`` exactly (quadratic in Vov).
        """
        if id_amps <= 0.0:
            raise ValueError(f"id_amps must be > 0, got {id_amps}")
        _, beta, _, _, _, _, _ = self._effective(sample)
        theta = self.params.theta
        # ½βVov² − I·θ·Vov − I = 0
        a = 0.5 * beta
        b = -id_amps * theta
        c = -id_amps
        return (-b + math.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)

    def current_for_vov(
        self, vov: float, sample: Optional[ProcessSample] = None
    ) -> float:
        """Drain current at overdrive ``vov`` (saturation, no λ term)."""
        if vov <= 0.0:
            raise ValueError(f"vov must be > 0, got {vov}")
        _, beta, _, _, _, _, _ = self._effective(sample)
        return 0.5 * beta * vov * vov / (1.0 + self.params.theta * vov)

    def small_signal(
        self,
        id_amps: float,
        sample: Optional[ProcessSample] = None,
    ) -> MosfetSmallSignal:
        """Small-signal model at drain current ``id_amps``.

        The power-series coefficients g2, g3 are the exact derivatives of
        the velocity-saturated square law — they drive the IIP3/P1dB
        calculations and inherit full process sensitivity.
        """
        vth, beta, lam, cox_scale, cgs_f, cgd_f, rds_f = self._effective(sample)
        theta = self.params.theta
        vov = self.solve_vov_for_current(id_amps, sample)

        # I(V) = ½βV²/(1+θV); derivatives evaluated at V = vov.
        denom = 1.0 + theta * vov
        i0 = 0.5 * beta * vov * vov / denom
        gm = 0.5 * beta * vov * (2.0 + theta * vov) / (denom * denom)
        d2 = beta * (1.0 / denom**3)
        d3 = -3.0 * beta * theta / denom**4
        gm2 = 0.5 * d2
        gm3 = d3 / 6.0

        # Channel-length modulation; series resistance folds into rds_f.
        gds = lam * i0 / rds_f

        p = self.params
        cgs_nominal = (
            (2.0 / 3.0) * p.cox_ff_um2 * p.width_um * p.length_um
            + p.cov_ff_um * p.width_um
        ) * 1e-15
        cgd_nominal = p.cov_ff_um * p.width_um * 1e-15
        cgs = cgs_nominal * cox_scale * cgs_f
        cgd = cgd_nominal * cgd_f

        drain_noise = 4.0 * BOLTZMANN * ROOM_TEMPERATURE * p.gamma_noise * gm
        return MosfetSmallSignal(
            id_amps=id_amps,
            vov=vov,
            gm=gm,
            gds=gds,
            cgs=cgs,
            cgd=cgd,
            gm2=gm2,
            gm3=gm3,
            drain_noise_psd=drain_noise,
            rg_ohms=p.rg_ohms * rds_f,
        )


class Passive:
    """A passive component (resistor / capacitor / inductor) with variation.

    Parameters
    ----------
    name:
        Unique instance name.
    kind:
        One of ``"resistor"``, ``"capacitor"``, ``"inductor"``.
    nominal:
        Nominal value in SI units (Ω, F, H).
    mismatch_sigma:
        Local relative 1-sigma deviation of this instance.
    """

    _KIND_TO_VARIATION = {
        "resistor": VariationKind.RSHEET,
        "capacitor": VariationKind.CDENS,
        "inductor": VariationKind.LIND,
    }

    def __init__(
        self,
        name: str,
        kind: str,
        nominal: float,
        mismatch_sigma: float = 0.01,
    ) -> None:
        if kind not in self._KIND_TO_VARIATION:
            raise ValueError(
                f"kind must be one of {sorted(self._KIND_TO_VARIATION)}, "
                f"got {kind!r}"
            )
        if nominal <= 0.0:
            raise ValueError(f"nominal must be > 0, got {nominal}")
        self.name = name
        self.kind = kind
        self.nominal = nominal
        self.mismatch_sigma = mismatch_sigma

    def variation(self) -> DeviceVariation:
        """Mismatch declaration for the process model."""
        return DeviceVariation(
            self.name,
            (
                ParameterSpec(
                    self._KIND_TO_VARIATION[self.kind], self.mismatch_sigma
                ),
            ),
        )

    def value(self, sample: Optional[ProcessSample] = None) -> float:
        """Process-shifted component value."""
        if sample is None:
            return self.nominal
        return self.nominal * sample.relative(
            self.name, self._KIND_TO_VARIATION[self.kind]
        )

    def thermal_noise_psd(self, sample: Optional[ProcessSample] = None) -> float:
        """Thermal current-noise PSD ``4kT/R`` (resistors only), A²/Hz."""
        if self.kind != "resistor":
            raise ValueError("only resistors have thermal noise")
        return 4.0 * BOLTZMANN * ROOM_TEMPERATURE / self.value(sample)
