"""Design-specific worst-case corner extraction [14].

Given a fitted linear performance model ``y ≈ α₀ + wᵀx`` and a sigma
budget ``β`` (e.g. 3σ), the worst-case corner inside the ball ``‖x‖ ≤ β``
has the closed form ``x* = ±β·w/‖w‖`` — the steepest direction of the
model. For non-linear-in-x models (quadratic bases), a projected-gradient
refinement is applied on top of the linear seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.basis.polynomial import LinearBasis
from repro.core.base import MultiStateRegressor
from repro.utils.validation import check_positive

__all__ = ["CornerResult", "extract_worst_case_corner"]


@dataclass
class CornerResult:
    """A worst-case corner of one state/metric."""

    x: np.ndarray
    value: float
    sigma_budget: float
    direction: str  # "max" or "min"

    @property
    def sigma_norm(self) -> float:
        """Distance of the corner from the typical point, in sigmas."""
        return float(np.linalg.norm(self.x))


def _model_gradient(
    model: MultiStateRegressor,
    basis: BasisDictionary,
    state: int,
    x: np.ndarray,
    epsilon: float = 1e-5,
) -> Tuple[float, np.ndarray]:
    """Finite-difference gradient of the model prediction at ``x``."""
    n = x.shape[0]
    base = float(model.predict(basis.expand(x[None, :]), state)[0])
    gradient = np.empty(n)
    for i in range(n):
        shifted = x.copy()
        shifted[i] += epsilon
        gradient[i] = (
            float(model.predict(basis.expand(shifted[None, :]), state)[0])
            - base
        ) / epsilon
    return base, gradient


def extract_worst_case_corner(
    model: MultiStateRegressor,
    basis: BasisDictionary,
    state: int,
    sigma_budget: float = 3.0,
    direction: str = "max",
    refine_steps: int = 0,
) -> CornerResult:
    """Worst-case corner of one state under a sigma-ball budget.

    Parameters
    ----------
    model / basis / state:
        Fitted estimator, its basis dictionary, and the knob state.
    sigma_budget:
        Radius β of the variation ball.
    direction:
        ``"max"`` finds the corner maximizing the metric (worst for
        upper-bounded specs like NF), ``"min"`` the minimizing corner.
    refine_steps:
        Projected-gradient refinements after the linear closed form; only
        useful for non-linear bases (each step costs ``n`` predictions).
    """
    sigma_budget = check_positive(sigma_budget, "sigma_budget")
    if direction not in ("max", "min"):
        raise ValueError(f"direction must be 'max' or 'min', got {direction!r}")
    sign = 1.0 if direction == "max" else -1.0

    if isinstance(basis, LinearBasis):
        # Closed form: coefficients beyond the intercept are the gradient.
        weights = model.coef_[state][1:]
        norm = float(np.linalg.norm(weights))
        if norm <= 0.0:
            x = np.zeros(basis.n_variables)
        else:
            x = sign * sigma_budget * weights / norm
    else:
        x = np.zeros(basis.n_variables)
        refine_steps = max(refine_steps, 10)

    for _ in range(refine_steps):
        _, gradient = _model_gradient(model, basis, state, x)
        step = sign * gradient
        norm = float(np.linalg.norm(step))
        if norm <= 1e-12:
            break
        x = x + (0.5 * sigma_budget / norm) * step
        radius = float(np.linalg.norm(x))
        if radius > sigma_budget:
            x = x * (sigma_budget / radius)

    value = float(model.predict(basis.expand(x[None, :]), state)[0])
    return CornerResult(
        x=x, value=value, sigma_budget=sigma_budget, direction=direction
    )
