"""Post-silicon tuning policies [6]-[11] — why tunable circuits exist.

After manufacturing, each die can select the knob state that best fits its
own process corner. ``TuningPolicy`` turns fitted performance models into a
state-selection rule and quantifies the yield gain of tuning versus a fixed
(best-single-state) design — the paper's opening motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.applications.yield_estimation import Specification, YieldEstimator
from repro.basis.dictionary import BasisDictionary
from repro.core.base import MultiStateRegressor
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer
from repro.variation.sampling import standard_normal_samples

__all__ = ["TuningPolicy", "TuningSummary"]


@dataclass
class TuningSummary:
    """Yield comparison between fixed-state and tuned operation."""

    #: Yield of the single best fixed state.
    best_fixed_yield: float
    #: Index of that state.
    best_fixed_state: int
    #: Yield when every die picks its own best state.
    tuned_yield: float
    #: Per-state fixed yields.
    state_yields: np.ndarray

    @property
    def tuning_gain(self) -> float:
        """Absolute yield improvement from tuning."""
        return self.tuned_yield - self.best_fixed_yield


class TuningPolicy:
    """Model-driven state selection.

    Parameters
    ----------
    models:
        metric → fitted estimator (shared state count).
    basis:
        Basis dictionary for raw samples.
    specs:
        The pass/fail specifications every die must meet.
    """

    def __init__(
        self,
        models: Mapping[str, MultiStateRegressor],
        basis: BasisDictionary,
        specs: Sequence[Specification],
    ) -> None:
        self._estimator = YieldEstimator(models, basis)
        self._estimator._check_specs(specs)
        self.specs = tuple(specs)
        self.basis = basis

    @property
    def n_states(self) -> int:
        """Number of selectable knob states."""
        return self._estimator.n_states

    # ------------------------------------------------------------------
    def select_states(self, x: np.ndarray) -> np.ndarray:
        """Best state per die (row of ``x``), −1 when no state passes.

        Among passing states the lowest index is chosen (deterministic);
        dies with no passing state report −1 so callers can flag them.
        """
        passes = self._estimator.pass_matrix(x, self.specs)
        any_pass = passes.any(axis=1)
        # argmax returns the first True column; mask the failures.
        choice = np.argmax(passes, axis=1)
        choice[~any_pass] = -1
        return choice

    def summarize(
        self, n_samples: int = 50_000, seed: SeedLike = None
    ) -> TuningSummary:
        """Monte Carlo comparison of fixed-state vs. tuned yield."""
        n_samples = check_integer(n_samples, "n_samples", minimum=1)
        x = standard_normal_samples(
            n_samples, self.basis.n_variables, seed
        )
        passes = self._estimator.pass_matrix(x, self.specs)
        state_yields = passes.mean(axis=0)
        best_state = int(np.argmax(state_yields))
        return TuningSummary(
            best_fixed_yield=float(state_yields[best_state]),
            best_fixed_state=best_state,
            tuned_yield=float(passes.any(axis=1).mean()),
            state_yields=state_yields,
        )
