"""Sensitivity ranking: which process variables drive a performance.

For a linear-basis model the coefficient of variable i *is* its one-sigma
sensitivity, so ranking |coefficients| answers the designer's first
question about any variability result: which devices matter. With the
C-BMF coefficient matrix in hand the ranking also shows how importance
migrates across knob states (e.g. which DAC cell takes over as the code
rises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.basis.polynomial import LinearBasis
from repro.core.base import MultiStateRegressor
from repro.utils.validation import check_integer

__all__ = ["SensitivityEntry", "rank_sensitivities", "format_ranking"]


@dataclass(frozen=True)
class SensitivityEntry:
    """One variable's contribution to one state's performance spread."""

    variable: str
    index: int
    coefficient: float

    @property
    def magnitude(self) -> float:
        """|one-sigma sensitivity| in performance units."""
        return abs(self.coefficient)


def rank_sensitivities(
    model: MultiStateRegressor,
    basis: LinearBasis,
    state: int,
    variable_names: Optional[Sequence[str]] = None,
    top: int = 10,
) -> List[SensitivityEntry]:
    """Top process variables of one state's model, by |coefficient|.

    Parameters
    ----------
    model / basis / state:
        A fitted linear-basis estimator and the knob state.
    variable_names:
        Names of the raw variables (e.g. from
        ``circuit.process_model.variable_names``); falls back to the basis
        column names.
    top:
        Entries returned.
    """
    if not isinstance(basis, LinearBasis):
        raise TypeError(
            "sensitivity ranking requires a LinearBasis model; got "
            f"{type(basis).__name__}"
        )
    model._require_fitted()
    if not 0 <= state < model.n_states:
        raise IndexError(
            f"state {state} out of range 0..{model.n_states - 1}"
        )
    top = check_integer(top, "top", minimum=1)

    weights = model.coef_[state][1:]  # drop the intercept
    if variable_names is None:
        variable_names = basis.names[1:]
    if len(variable_names) != weights.shape[0]:
        raise ValueError(
            f"got {len(variable_names)} variable names for "
            f"{weights.shape[0]} variables"
        )
    order = np.argsort(-np.abs(weights))[:top]
    return [
        SensitivityEntry(
            variable=str(variable_names[i]),
            index=int(i),
            coefficient=float(weights[i]),
        )
        for i in order
    ]


def format_ranking(
    entries: Sequence[SensitivityEntry], unit: str = ""
) -> str:
    """Text table of a sensitivity ranking.

    The share column is each entry's fraction of the *listed* entries'
    variance (coef²), so the column sums to 100 %.
    """
    if not entries:
        raise ValueError("no entries to format")
    total_var = float(sum(e.coefficient**2 for e in entries))
    lines = [f"{'variable':<24}{'coef/sigma':>14}  {'var share':>9}"]
    for entry in entries:
        share = entry.coefficient**2 / total_var if total_var > 0 else 0.0
        lines.append(
            f"{entry.variable:<24}{entry.coefficient:>+12.4g} {unit:<2}"
            f"{share:>9.1%}"
        )
    return "\n".join(lines)
