"""Uncertainty-driven adaptive sampling.

The paper fixes the training budget up front; with C-BMF's posterior in
hand one can do better — simulate in small batches and stop as soon as the
*model's own predictive uncertainty* drops below the accuracy target. The
probe evaluation needs no extra simulations: ``predict_std`` is queried on
fresh process samples, so the loop only pays for the samples it keeps.

    sampler = AdaptiveSampler(circuit, "gain_db", target_percent=1.0)
    result = sampler.run()
    result.model            # fitted CBMF
    result.n_samples_total  # budget actually spent
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.basis.polynomial import LinearBasis
from repro.circuits.base import TunableCircuit
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.simulate.dataset import Dataset
from repro.simulate.montecarlo import MonteCarloEngine
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_positive
from repro.variation.sampling import standard_normal_samples

__all__ = ["AdaptiveSampler", "AdaptiveRound", "AdaptiveResult"]


@dataclass
class AdaptiveRound:
    """Diagnostics of one sample-fit-probe round."""

    n_per_state: int
    n_samples_total: int
    #: Mean predictive std over the probe set, % of mean |performance|.
    predicted_error_percent: float
    fit_seconds: float


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive-sampling run."""

    model: CBMF
    dataset: Dataset
    rounds: List[AdaptiveRound] = field(default_factory=list)
    converged: bool = False

    @property
    def n_samples_total(self) -> int:
        """Simulation budget actually spent."""
        return self.dataset.n_samples_total


class AdaptiveSampler:
    """Batch-simulate until the C-BMF posterior meets an accuracy target.

    Parameters
    ----------
    circuit:
        The tunable circuit to model.
    metric:
        Performance of interest (one of ``circuit.metric_names``).
    target_percent:
        Stop when the probe-averaged predictive std falls below this
        percentage of the mean performance magnitude.
    batch_per_state:
        Samples added per state per round.
    initial_per_state:
        First-round budget (must support the CV initializer's folds).
    max_rounds:
        Hard cap on rounds.
    n_probe:
        Fresh (unsimulated) probe points per state for the uncertainty
        estimate.
    """

    def __init__(
        self,
        circuit: TunableCircuit,
        metric: str,
        target_percent: float = 1.0,
        batch_per_state: int = 5,
        initial_per_state: int = 10,
        max_rounds: int = 8,
        n_probe: int = 64,
        seed: SeedLike = None,
        init_config: Optional[InitConfig] = None,
        em_config: Optional[EmConfig] = None,
    ) -> None:
        if metric not in circuit.metric_names:
            raise KeyError(
                f"unknown metric {metric!r}; circuit has "
                f"{circuit.metric_names}"
            )
        self.circuit = circuit
        self.metric = metric
        self.target_percent = check_positive(target_percent, "target_percent")
        self.batch_per_state = check_integer(
            batch_per_state, "batch_per_state", minimum=1
        )
        self.initial_per_state = check_integer(
            initial_per_state, "initial_per_state", minimum=4
        )
        self.max_rounds = check_integer(max_rounds, "max_rounds", minimum=1)
        self.n_probe = check_integer(n_probe, "n_probe", minimum=8)
        self.seed = seed
        self.init_config = init_config
        self.em_config = em_config

    # ------------------------------------------------------------------
    def _simulate_batch(self, engine: MonteCarloEngine, n: int) -> Dataset:
        return engine.run(n)

    def _merge(self, base: Optional[Dataset], extra: Dataset) -> Dataset:
        if base is None:
            return extra
        return Dataset.concat(base, extra)

    def _probe_error_percent(
        self, model: CBMF, basis: LinearBasis, magnitude: float, rng
    ) -> float:
        total = 0.0
        for state in range(self.circuit.n_states):
            probe = standard_normal_samples(
                self.n_probe, self.circuit.n_variables, rng
            )
            std = model.predict_std(basis.expand(probe), state)
            total += float(np.mean(std))
        average = total / self.circuit.n_states
        return 100.0 * average / magnitude

    def run(self) -> AdaptiveResult:
        """Execute the sample-fit-probe loop."""
        rng = as_generator(self.seed)
        basis = LinearBasis(self.circuit.n_variables)
        dataset: Optional[Dataset] = None
        rounds: List[AdaptiveRound] = []
        model: Optional[CBMF] = None
        converged = False

        for round_index in range(self.max_rounds):
            batch = (
                self.initial_per_state
                if round_index == 0
                else self.batch_per_state
            )
            engine = MonteCarloEngine(
                self.circuit, seed=rng.integers(2**31)
            )
            dataset = self._merge(dataset, self._simulate_batch(engine, batch))

            designs = basis.expand_states(dataset.inputs())
            targets = dataset.targets(self.metric)
            model = CBMF(
                init_config=self.init_config,
                em_config=self.em_config,
                seed=rng.integers(2**31),
                # Reuse the previous round's hyper-parameters: EM refines
                # them on the grown data without re-running the CV scan.
                warm_start=model,
            ).fit(designs, targets)

            magnitude = float(
                np.mean(np.abs(np.concatenate(targets)))
            )
            predicted = self._probe_error_percent(
                model, basis, magnitude, rng
            )
            rounds.append(
                AdaptiveRound(
                    n_per_state=dataset.n_samples_per_state[0],
                    n_samples_total=dataset.n_samples_total,
                    predicted_error_percent=predicted,
                    fit_seconds=model.report_.total_seconds,
                )
            )
            if predicted <= self.target_percent:
                converged = True
                break

        return AdaptiveResult(
            model=model, dataset=dataset, rounds=rounds, converged=converged
        )
