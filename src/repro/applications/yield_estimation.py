"""Parametric yield estimation from fitted performance models [12]-[13].

Once a performance model is fitted from a few hundred simulations, yield
under *millions* of Monte Carlo samples costs only matrix products — the
core economic argument for performance modeling. ``YieldEstimator``
evaluates specs on model predictions; ``monte_carlo_yield`` evaluates the
same specs on direct circuit evaluations for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.circuits.base import TunableCircuit
from repro.core.base import MultiStateRegressor
from repro.errors import NumericalError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer
from repro.variation.sampling import standard_normal_samples

__all__ = ["Specification", "YieldEstimator", "monte_carlo_yield"]


@dataclass(frozen=True)
class Specification:
    """One pass/fail bound on a performance metric.

    ``kind="max"`` passes when ``y ≤ bound`` (e.g. NF below 3 dB);
    ``kind="min"`` passes when ``y ≥ bound`` (e.g. gain above 15 dB).
    """

    metric: str
    bound: float
    kind: str = "max"

    def __post_init__(self) -> None:
        if self.kind not in ("max", "min"):
            raise ValueError(
                f"kind must be 'max' or 'min', got {self.kind!r}"
            )
        if not np.isfinite(self.bound):
            raise ValueError(
                f"bound for metric {self.metric!r} must be finite, got "
                f"{self.bound!r} — a NaN/inf bound would silently pass or "
                "fail every sample"
            )

    @classmethod
    def parse(cls, text: str) -> "Specification":
        """Parse ``metric<=bound`` / ``metric>=bound`` (CLI spec syntax)."""
        text = str(text).strip()
        for token, kind in (("<=", "max"), (">=", "min")):
            if token in text:
                metric, _, bound = text.partition(token)
                metric = metric.strip()
                if not metric:
                    raise ValueError(f"spec {text!r} has an empty metric name")
                try:
                    value = float(bound)
                except ValueError:
                    raise ValueError(
                        f"spec {text!r} has a non-numeric bound {bound!r}"
                    ) from None
                return cls(metric=metric, bound=value, kind=kind)
        raise ValueError(
            f"spec {text!r} must look like 'metric<=bound' or 'metric>=bound'"
        )

    def passes(self, values: np.ndarray) -> np.ndarray:
        """Boolean pass mask for an array of metric values."""
        values = np.asarray(values, dtype=float)
        if self.kind == "max":
            return values <= self.bound
        return values >= self.bound


class YieldEstimator:
    """Model-based yield: specs evaluated on model predictions.

    Parameters
    ----------
    models:
        metric name → fitted estimator for that metric.
    basis:
        Dictionary used to expand raw samples before prediction.
    """

    def __init__(
        self,
        models: Mapping[str, MultiStateRegressor],
        basis: BasisDictionary,
    ) -> None:
        if not models:
            raise ValueError("at least one metric model is required")
        self.models: Dict[str, MultiStateRegressor] = dict(models)
        self.basis = basis
        states = {model.n_states for model in self.models.values()}
        if len(states) != 1:
            raise ValueError(
                f"models disagree on the state count: {sorted(states)}"
            )
        self.n_states = states.pop()

    # ------------------------------------------------------------------
    def _check_specs(self, specs: Sequence[Specification]) -> None:
        if not specs:
            raise ValueError("at least one specification is required")
        for spec in specs:
            if spec.metric not in self.models:
                raise KeyError(
                    f"no model for metric {spec.metric!r}; have "
                    f"{sorted(self.models)}"
                )

    def pass_matrix(
        self,
        x: np.ndarray,
        specs: Sequence[Specification],
    ) -> np.ndarray:
        """(n_samples × n_states) boolean: sample passes all specs at state."""
        self._check_specs(specs)
        design = self.basis.expand(x)
        passes = np.ones((x.shape[0], self.n_states), dtype=bool)
        for spec in specs:
            model = self.models[spec.metric]
            for state in range(self.n_states):
                predictions = model.predict(design, state)
                if not np.all(np.isfinite(predictions)):
                    n_bad = int(np.sum(~np.isfinite(predictions)))
                    raise NumericalError(
                        f"model for metric {spec.metric!r} produced {n_bad} "
                        f"non-finite prediction(s) at state {state}; "
                        "NaN comparisons would silently count as spec "
                        "failures and corrupt the yield estimate"
                    )
                passes[:, state] &= spec.passes(predictions)
        return passes

    def state_yields(
        self,
        specs: Sequence[Specification],
        n_samples: int = 100_000,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-state parametric yield under fresh model Monte Carlo."""
        n_samples = check_integer(n_samples, "n_samples", minimum=1)
        x = standard_normal_samples(
            n_samples, self.basis.n_variables, seed
        )
        return self.pass_matrix(x, specs).mean(axis=0)

    def tunable_yield(
        self,
        specs: Sequence[Specification],
        n_samples: int = 100_000,
        seed: SeedLike = None,
    ) -> float:
        """Yield when each die may select its best state (post-silicon tuning).

        A die passes if *any* knob state satisfies every spec — the tunable
        circuit's reason for existing.
        """
        n_samples = check_integer(n_samples, "n_samples", minimum=1)
        x = standard_normal_samples(
            n_samples, self.basis.n_variables, seed
        )
        return float(self.pass_matrix(x, specs).any(axis=1).mean())


def analytic_spec_yield(
    model: MultiStateRegressor,
    basis: BasisDictionary,
    spec: Specification,
    state: int,
) -> float:
    """Closed-form yield of one spec for a linear-basis model.

    Under ``y = α0 + wᵀx`` with ``x ~ N(0, I)`` the performance is exactly
    Gaussian, ``y ~ N(α0 + offset, ‖w‖²)``, so the single-spec yield is a
    normal CDF — no Monte Carlo, and a tight cross-check for the sampling
    estimator. Only valid for :class:`LinearBasis` models.
    """
    from scipy.stats import norm

    from repro.basis.polynomial import LinearBasis

    if not isinstance(basis, LinearBasis):
        raise TypeError(
            "analytic yield requires a LinearBasis model; got "
            f"{type(basis).__name__}"
        )
    model._require_fitted()
    if not 0 <= state < model.n_states:
        raise IndexError(
            f"state {state} out of range 0..{model.n_states - 1}"
        )
    coefficients = model.coef_[state]
    mean = float(coefficients[0])
    offsets = getattr(model, "offsets_", None)
    if offsets is not None:
        mean += float(offsets[state])
    sigma = float(np.linalg.norm(coefficients[1:]))
    if sigma == 0.0:
        passes = spec.passes(np.asarray([mean]))[0]
        return 1.0 if passes else 0.0
    z = (spec.bound - mean) / sigma
    return float(norm.cdf(z) if spec.kind == "max" else norm.sf(z))


def monte_carlo_yield(
    circuit: TunableCircuit,
    state_index: int,
    specs: Sequence[Specification],
    n_samples: int,
    seed: SeedLike = None,
) -> float:
    """Direct (model-free) yield of one state, for validating the estimator."""
    if not specs:
        raise ValueError("at least one specification is required")
    n_samples = check_integer(n_samples, "n_samples", minimum=1)
    if not 0 <= state_index < circuit.n_states:
        raise IndexError(
            f"state_index {state_index} out of range 0..{circuit.n_states - 1}"
        )
    rng = as_generator(seed)
    state = circuit.states[state_index]
    n_pass = 0
    for _ in range(n_samples):
        x = rng.standard_normal(circuit.n_variables)
        values = circuit.evaluate_x(x, state)
        ok = True
        for spec in specs:
            value = float(values[spec.metric])
            if not np.isfinite(value):
                raise NumericalError(
                    f"circuit produced a non-finite {spec.metric!r} value "
                    f"({value!r}) at state {state_index}"
                )
            ok = ok and bool(spec.passes(np.asarray([value]))[0])
        n_pass += int(ok)
    return n_pass / n_samples
