"""Downstream applications of fitted performance models.

The paper motivates performance modeling by its applications: yield
estimation, corner extraction and design/tuning optimization. These modules
implement all three on top of any fitted :class:`MultiStateRegressor`.
"""

from repro.applications.adaptive_sampling import (
    AdaptiveResult,
    AdaptiveRound,
    AdaptiveSampler,
)
from repro.applications.corner_extraction import (
    CornerResult,
    extract_worst_case_corner,
)
from repro.applications.sensitivity import (
    SensitivityEntry,
    format_ranking,
    rank_sensitivities,
)
from repro.applications.tuning import TuningPolicy, TuningSummary
from repro.applications.yield_estimation import (
    Specification,
    YieldEstimator,
    analytic_spec_yield,
    monte_carlo_yield,
)

__all__ = [
    "AdaptiveResult",
    "AdaptiveRound",
    "AdaptiveSampler",
    "CornerResult",
    "extract_worst_case_corner",
    "TuningPolicy",
    "TuningSummary",
    "SensitivityEntry",
    "format_ranking",
    "rank_sensitivities",
    "Specification",
    "YieldEstimator",
    "analytic_spec_yield",
    "monte_carlo_yield",
]
