"""Command-line interface for the reproduction harness.

    python -m repro table1 [--scale small|medium|paper] [--seed N]
    python -m repro table2
    python -m repro fig2 [--metric nf_db|gain_db|iip3_dbm]
    python -m repro fig3 [--metric nf_db|gain_db|i1db_dbm]
    python -m repro all
    python -m repro info

Output is the paper-style text tables; `reproduce_paper.py` in examples/
offers the same through a script, and the benchmark suite wraps the same
entry points with assertions.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import __version__
from repro.evaluation.report import (
    format_comparison_table,
    format_sweep_table,
)
from repro.paper import (
    METRIC_LABELS,
    SCALES,
    resolve_scale,
    run_cost_table,
    run_figure_sweep,
)

__all__ = ["main"]


def _print_table(circuit: str, title: str, scale, seed: int) -> None:
    results = run_cost_table(circuit, scale, seed=seed)
    print(format_comparison_table(
        f"{title} — {circuit.upper()} (scale: {scale.name})",
        [results["somp"], results["cbmf"]],
        METRIC_LABELS,
    ))
    ratio = (
        results["somp"].cost.total_hours / results["cbmf"].cost.total_hours
    )
    print(f"overall cost reduction: {ratio:.2f}x")


def _print_figure(
    circuit: str, title: str, scale, seed: int, metric: Optional[str]
) -> None:
    try:
        sweep = run_figure_sweep(
            circuit,
            scale,
            seed=seed,
            metrics=(metric,) if metric else None,
        )
    except KeyError as error:
        raise SystemExit(f"unknown metric: {error}") from error
    for name in (metric,) if metric else sweep.metric_names:
        print(format_sweep_table(
            title, sweep, name, METRIC_LABELS.get(name)
        ))
        print()


def _cmd_info(args) -> None:
    print(f"repro {__version__} — C-BMF (DAC 2016) reproduction")
    print(f"scales: {', '.join(sorted(SCALES))}")
    scale = resolve_scale(args.scale)
    print(
        f"active scale: {scale.name} "
        f"(K={scale.n_states}, test {scale.n_test_per_state}/state, "
        f"pool {scale.pool_per_state}/state)"
    )
    from repro.evaluation.methods import available_methods

    print(f"methods: {', '.join(available_methods())}")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the C-BMF paper's tables and figures.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--scale", default=None, choices=sorted(SCALES),
            help="experiment size (default: REPRO_SCALE env or 'small')",
        )
        p.add_argument("--seed", type=int, default=2016)

    for name, help_text in (
        ("table1", "Table 1: LNA error and cost"),
        ("table2", "Table 2: mixer error and cost"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)

    for name, help_text in (
        ("fig2", "Figure 2(b)-(d): LNA error vs samples"),
        ("fig3", "Figure 3(b)-(d): mixer error vs samples"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument(
            "--metric", default=None,
            help="limit to one metric (default: all panels)",
        )

    p = sub.add_parser("all", help="every table and figure")
    common(p)

    p = sub.add_parser("info", help="version, scales, methods")
    common(p)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        _cmd_info(args)
        return 0

    scale = resolve_scale(args.scale)
    started = time.perf_counter()
    if args.command == "table1":
        _print_table("lna", "Table 1", scale, args.seed)
    elif args.command == "table2":
        _print_table("mixer", "Table 2", scale, args.seed)
    elif args.command == "fig2":
        _print_figure(
            "lna", "Figure 2 — tunable LNA", scale, args.seed, args.metric
        )
    elif args.command == "fig3":
        _print_figure(
            "mixer", "Figure 3 — tunable mixer", scale, args.seed,
            args.metric,
        )
    elif args.command == "all":
        _print_figure(
            "lna", "Figure 2 — tunable LNA", scale, args.seed, None
        )
        _print_table("lna", "Table 1", scale, args.seed)
        print()
        _print_figure(
            "mixer", "Figure 3 — tunable mixer", scale, args.seed, None
        )
        _print_table("mixer", "Table 2", scale, args.seed)
    print(f"\n[{time.perf_counter() - started:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
