"""Command-line interface for the reproduction harness.

    python -m repro table1 [--scale small|medium|paper] [--seed N]
    python -m repro table2
    python -m repro fig2 [--metric nf_db|gain_db|iip3_dbm]
    python -m repro fig3 [--metric nf_db|gain_db|i1db_dbm]
    python -m repro all
    python -m repro info
    python -m repro serve-bench [--requests N] [--batch-size B]
    python -m repro sweep-fit [--points K] [--train N] [--registry DIR]
    python -m repro yield-report [--spec 'nf_db<=1.55'] [--points K] ...
    python -m repro bench [--quick] [--check] [--update-baseline]
    python -m repro registry list|push|get --root DIR ...
    python -m repro active-fit [--circuit lna|mixer] [--strategy NAME] ...
    python -m repro stream [--batches N] [--drift-shift S] ...
    python -m repro cluster serve-bench [--shards N] [--canary A:B:W] ...

Output is the paper-style text tables; `reproduce_paper.py` in examples/
offers the same through a script, and the benchmark suite wraps the same
entry points with assertions. ``serve-bench`` exercises the serving
subsystem end-to-end (fit → registry push → micro-batched service),
``registry`` manages a model registry directory, ``active-fit`` runs
the active-learning loop on a circuit (checkpointable with ``--checkpoint``
/ ``--resume``, optionally pushing the converged model to a registry with
its acquisition provenance in the manifest), and ``stream`` runs the
online-ingest loop: seed fit → absorb batches → drift-triggered refits →
registry pushes → serving hot-swaps (record/replay with ``--record`` /
``--replay``, chaos via ``--fault-plan 'stream:nan@2'``).
``sweep-fit`` runs the swept-frequency workload end-to-end: simulate the
K-point S21/NF sweep (state-balanced, so C-BMF takes the Kronecker
solver), fit, push the model set to a registry and verify the frozen
artifacts predict identically after the round-trip.
``yield-report`` fits the same sweep (or loads a pushed model set with
``--registry``/``--key``) and prints the fleet yield report: per-state
pass probability under the ``--spec`` bounds with correlation-shared
shrinkage across the learned K × K prior correlation and an analytic
confidence interval per state (see :mod:`repro.yields`).
``cluster serve-bench`` spins up the horizontal serving cluster —
asyncio gateway over ``--shards`` worker processes sharing one
memmapped model store — drives a concurrent request stream through it,
and prints the per-shard/per-version report; ``--canary
name@vA:name@vB:weight`` routes a weighted split between two registry
versions, and ``--fault-plan 'shard:kill@0'`` kills a shard mid-run to
exercise crash detection and respawn.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro import __version__
from repro.evaluation.report import (
    format_comparison_table,
    format_sweep_table,
)
from repro.paper import (
    METRIC_LABELS,
    SCALES,
    resolve_scale,
    run_cost_table,
    run_figure_sweep,
)

__all__ = ["main"]


def _print_table(circuit: str, title: str, scale, seed: int) -> None:
    results = run_cost_table(circuit, scale, seed=seed)
    print(format_comparison_table(
        f"{title} — {circuit.upper()} (scale: {scale.name})",
        [results["somp"], results["cbmf"]],
        METRIC_LABELS,
    ))
    ratio = (
        results["somp"].cost.total_hours / results["cbmf"].cost.total_hours
    )
    print(f"overall cost reduction: {ratio:.2f}x")


def _print_figure(
    circuit: str, title: str, scale, seed: int, metric: Optional[str]
) -> None:
    try:
        sweep = run_figure_sweep(
            circuit,
            scale,
            seed=seed,
            metrics=(metric,) if metric else None,
        )
    except KeyError as error:
        raise SystemExit(f"unknown metric: {error}") from error
    for name in (metric,) if metric else sweep.metric_names:
        print(format_sweep_table(
            title, sweep, name, METRIC_LABELS.get(name)
        ))
        print()


def _cmd_info(args) -> None:
    print(f"repro {__version__} — C-BMF (DAC 2016) reproduction")
    print(f"scales: {', '.join(sorted(SCALES))}")
    scale = resolve_scale(args.scale)
    print(
        f"active scale: {scale.name} "
        f"(K={scale.n_states}, test {scale.n_test_per_state}/state, "
        f"pool {scale.pool_per_state}/state)"
    )
    from repro.evaluation.methods import available_methods

    print(f"methods: {', '.join(available_methods())}")


def _cmd_serve_bench(args) -> int:
    """Fit, push, then benchmark the serving path (single vs batched)."""
    import tempfile

    import numpy as np

    from repro.circuits.lna import TunableLNA
    from repro.modelset import PerformanceModelSet
    from repro.serving import (
        BatchConfig,
        CacheConfig,
        ModelRegistry,
        ModelService,
        quantize_key,
    )
    from repro.simulate.montecarlo import MonteCarloEngine

    rng = np.random.default_rng(args.seed)
    lna = TunableLNA(n_states=args.states, n_variables=None)
    print(
        f"fitting {args.method} model set — LNA, K={args.states} states, "
        f"{lna.n_variables} variables, {args.train}/state training samples"
    )
    data = MonteCarloEngine(lna, seed=args.seed).run(args.train + 6)
    train, _ = data.split(args.train)
    started = time.perf_counter()
    models = PerformanceModelSet.fit_dataset(
        train, method=args.method, seed=args.seed
    )
    print(f"fit {len(models.metric_names)} metrics "
          f"in {time.perf_counter() - started:.2f}s")

    cache = CacheConfig(capacity=args.cache_size)

    def run(registry):
        entry = registry.push("lna", models)
        print(f"pushed {entry.key} -> {entry.path}")

        n = args.requests
        pool = rng.standard_normal((args.pool, lna.n_variables))
        x = pool[rng.integers(0, args.pool, n)]
        states = rng.integers(0, args.states, n)

        def single_pass():
            service = ModelService(
                registry,
                batch=BatchConfig(max_batch_size=1, flush_interval=0.0),
                cache=cache,
            )
            service.load("lna@latest")
            t0 = time.perf_counter()
            for i in range(n):
                service.predict("lna", x[i], states[i])
            return time.perf_counter() - t0, service

        def batched_pass():
            service = ModelService(
                registry,
                batch=BatchConfig(max_batch_size=args.batch_size),
                cache=cache,
            )
            service.load("lna@latest")
            t0 = time.perf_counter()
            results = service.predict_many("lna", x, states)
            return time.perf_counter() - t0, service, results

        single_pass()  # warm numpy/BLAS so the comparison is fair
        batched_pass()
        # Best-of-N: a shared box's scheduler noise dwarfs the effect
        # being measured, and the minimum is the least-noisy estimator.
        t_single = min(single_pass()[0] for _ in range(args.trials))
        t_batch, service, results = batched_pass()
        for _ in range(args.trials - 1):
            t_again, _, _ = batched_pass()
            t_batch = min(t_batch, t_again)

        # Bit-identity: the engine computes one FrozenModel.predict per
        # (state, deduplicated rows) group; mirror that exact call here.
        frozen = models.freeze()
        decimals = cache.decimals
        worst = 0.0
        identical = True
        for state in range(args.states):
            seen, rows, owners = {}, [], []
            for i in range(n):
                if states[i] != state:
                    continue
                key = quantize_key(x[i], state, decimals)
                if key not in seen:
                    seen[key] = len(rows)
                    rows.append(i)
                    owners.append([i])
                else:
                    owners[seen[key]].append(i)
            if not rows:
                continue
            design = models.basis.expand(x[np.asarray(rows)])
            for metric, model in frozen.items():
                reference = model.predict(design, state)
                for j, requesters in enumerate(owners):
                    for i in requesters:
                        diff = abs(
                            results[i].values[metric] - reference[j]
                        )
                        worst = max(worst, diff)
                        if diff != 0.0:
                            identical = False
        snapshot = service.metrics.snapshot()
        print()
        print(f"requests            {n} "
              f"({args.pool} unique points x {args.states} states)")
        print(f"single-request      {t_single:.3f}s "
              f"({n / t_single:,.0f} req/s)")
        print(f"micro-batched       {t_batch:.3f}s "
              f"({n / t_batch:,.0f} req/s)")
        print(f"speedup             {t_single / t_batch:.1f}x")
        print(f"bit-identical       {identical} "
              f"(max |diff| = {worst:.1e})")
        print(f"cache hit rate      {snapshot['cache_hit_rate']:.1%}")
        print(f"batches             {snapshot['batches']} "
              f"(mean size {snapshot['mean_batch_size']:.0f})")
        print(f"p50 / p95 latency   {snapshot['p50_latency_ms']:.4f} / "
              f"{snapshot['p95_latency_ms']:.4f} ms")
        return 0 if identical else 1

    if args.registry:
        return run(ModelRegistry(args.registry))
    with tempfile.TemporaryDirectory() as tmp:
        return run(ModelRegistry(tmp))


def _cmd_sweep_fit(args) -> int:
    """Swept-frequency fit: simulate → Kronecker-path fit → registry."""
    import tempfile

    import numpy as np

    from repro.modelset import PerformanceModelSet
    from repro.paper import simulate_sweep
    from repro.serving import ModelRegistry

    print(
        f"simulating lna_sweep — {args.points} frequency points, "
        f"{args.train} shared process samples"
    )
    started = time.perf_counter()
    train = simulate_sweep(
        n_points=args.points,
        n_samples_per_state=args.train,
        seed=args.seed,
    )
    print(f"dataset ready in {time.perf_counter() - started:.2f}s "
          f"(K={train.n_states}, {train.n_variables} variables)")

    metrics = (args.metric,) if args.metric else None
    started = time.perf_counter()
    models = PerformanceModelSet.fit_dataset(
        train, method="cbmf", metrics=metrics, seed=args.seed
    )
    elapsed = time.perf_counter() - started
    solvers = {
        metric: getattr(
            getattr(models.model(metric), "predictor", None),
            "solver",
            "dense",
        )
        for metric in models.metric_names
    }
    print(f"fit {len(models.metric_names)} metrics in {elapsed:.2f}s "
          f"(posterior solver: "
          f"{', '.join(f'{m}={s}' for m, s in sorted(solvers.items()))})")

    def run(registry):
        entry = registry.push(args.name, models)
        print(f"pushed {entry.key} -> {entry.path}")
        loaded = registry.load(entry.key)

        rng = np.random.default_rng(args.seed)
        probe = rng.standard_normal((8, train.n_variables))
        worst = 0.0
        for state in (0, train.n_states // 2, train.n_states - 1):
            live = models.predict(probe, state)
            back = loaded.predict(probe, state)
            for metric in models.metric_names:
                worst = max(
                    worst,
                    float(np.max(np.abs(live[metric] - back[metric]))),
                )
        ok = worst <= 1e-12
        print(f"round-trip          parity={'ok' if ok else 'FAILED'} "
              f"(max |live - reloaded| = {worst:.1e})")
        return 0 if ok else 1

    if args.registry:
        return run(ModelRegistry(args.registry))
    with tempfile.TemporaryDirectory() as tmp:
        return run(ModelRegistry(tmp))


#: Default pass/fail bounds of ``yield-report`` on the lna_sweep
#: metrics — chosen so the per-state yield actually varies across the
#: sweep (the regime shrinkage is for). Loading other metrics via
#: ``--key`` requires explicit ``--spec``.
DEFAULT_SWEEP_SPECS = ("s21_db>=16.5", "nf_db<=1.55")


def _cmd_yield_report(args) -> int:
    """Fleet yield report: fit (or load) a model set, shrink, print."""
    from repro.applications.yield_estimation import Specification
    from repro.modelset import PerformanceModelSet
    from repro.paper import simulate_sweep
    from repro.yields import (
        compute_yield_report,
        format_yield_report,
        report_to_dict,
    )

    if args.key and not args.spec:
        print(
            "--key loads arbitrary metrics; pass at least one --spec "
            "like 'nf_db<=1.55'",
            file=sys.stderr,
        )
        return 2
    spec_texts = list(args.spec) if args.spec else list(DEFAULT_SWEEP_SPECS)
    specs = [Specification.parse(text) for text in spec_texts]

    if args.key:
        from repro.serving import ModelRegistry

        if not args.registry:
            print("--key requires --registry", file=sys.stderr)
            return 2
        models = ModelRegistry(args.registry).load(args.key)
        print(f"loaded {args.key} from {args.registry} "
              f"(K={models.n_states}, "
              f"metrics: {', '.join(models.metric_names)})")
    else:
        print(
            f"simulating lna_sweep — {args.points} frequency points, "
            f"{args.train} shared process samples"
        )
        train = simulate_sweep(
            n_points=args.points,
            n_samples_per_state=args.train,
            seed=args.seed,
        )
        started = time.perf_counter()
        models = PerformanceModelSet.fit_dataset(
            train, method="cbmf", seed=args.seed
        )
        print(f"fit {len(models.metric_names)} metrics in "
              f"{time.perf_counter() - started:.2f}s")

    started = time.perf_counter()
    report = compute_yield_report(
        models.as_mapping(),
        models.basis,
        specs,
        n_samples=args.samples,
        seed=args.seed,
        confidence=args.confidence,
    )
    elapsed = time.perf_counter() - started
    print(format_yield_report(report, max_rows=args.max_rows))
    print(f"[{report.n_states} states x {args.samples} samples "
          f"in {elapsed:.2f}s]")
    if args.json:
        from pathlib import Path

        payload = report_to_dict(report)
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if not report.correlation_shared:
        print(
            "warning: no learned correlation on the loaded models — "
            "intervals are the independent per-state fallback",
            file=sys.stderr,
        )
    return 0


def _cmd_active_fit(args) -> int:
    """Actively fit one circuit metric; optionally push to a registry."""
    from repro.active import (
        ActiveFitConfig,
        ActiveFitLoop,
        CircuitOracle,
        StoppingRule,
        push_result,
    )
    from repro.circuits.lna import TunableLNA
    from repro.circuits.mixer import TunableMixer
    from repro.evaluation.methods import make_acquisition
    from repro.evaluation.report import format_active_history
    from repro.simulate.cost import LNA_COST_MODEL, MIXER_COST_MODEL

    circuit_cls = {"lna": TunableLNA, "mixer": TunableMixer}[args.circuit]
    cost_model = {
        "lna": LNA_COST_MODEL, "mixer": MIXER_COST_MODEL
    }[args.circuit]
    circuit = circuit_cls(n_states=args.states, n_variables=None)
    metric = args.metric or circuit.metric_names[0]
    oracle = CircuitOracle(circuit, metric, max_retries=args.max_retries)
    if args.fault_plan:
        from repro.faults import FaultPlan, FaultyOracle

        plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
        oracle = FaultyOracle(oracle, plan)
        print(f"fault injection active: {args.fault_plan!r}")

    kwargs = {}
    if args.strategy in ("variance", "cost_weighted"):
        kwargs["explore_fraction"] = args.explore
    if args.strategy == "cost_weighted":
        kwargs["state_costs"] = (
            [cost_model.seconds_per_sample] * circuit.n_states
        )
    if args.strategy == "yield_variance":
        if not args.spec:
            print(
                "--strategy yield_variance requires at least one --spec "
                f"bound on {metric!r}, e.g. --spec '{metric}<=1.5'",
                file=sys.stderr,
            )
            return 2
        kwargs["specs"] = list(args.spec)
    strategy = make_acquisition(args.strategy, **kwargs)

    config = ActiveFitConfig(
        metric=metric,
        strategy=strategy,
        init_per_state=args.init,
        batch_per_round=args.batch,
        n_candidates=args.candidates,
        holdout_per_state=args.holdout,
        stopping=StoppingRule(
            max_rounds=args.rounds, max_samples=args.budget
        ),
        seed=args.seed,
        checkpoint_dir=args.checkpoint,
        max_retries=args.max_retries,
    )
    loop = ActiveFitLoop(oracle, config)
    print(
        f"active-fit {args.circuit}:{metric} — K={circuit.n_states}, "
        f"{circuit.n_variables} variables, strategy={strategy.name}, "
        f"seed={args.seed}"
    )
    result = loop.run(resume=args.resume)
    print(format_active_history(result.history))
    cost = result.ledger.modeling_cost(cost_model)
    print(
        f"simulations: {result.ledger.total} "
        f"(per state: {list(result.ledger.per_state)}) "
        f"~ {cost.simulation_hours:.2f} modeled hours"
    )
    if args.registry:
        from repro.serving import ModelRegistry

        entry = push_result(
            ModelRegistry(args.registry),
            args.name or args.circuit,
            result,
            loop.basis,
            cost_model=cost_model,
        )
        print(f"pushed {entry.key} -> {entry.path}")
        print(json.dumps(entry.manifest["acquisition"], indent=2,
                         sort_keys=True))
    return 0


def _cmd_stream(args) -> int:
    """Run the streaming loop: seed fit → absorb → refit → push → swap."""
    import tempfile

    import numpy as np

    from repro.basis.polynomial import LinearBasis
    from repro.core.cbmf import CBMF
    from repro.errors import SimulationError
    from repro.serving import ModelRegistry, ModelService
    from repro.streaming import (
        DriftConfig,
        OnlineCBMF,
        OracleStream,
        ReplayStream,
        ShiftedOracle,
        StreamingConfig,
        StreamingService,
        record_stream,
    )

    rng = np.random.default_rng(args.seed)
    if args.circuit:
        from repro.active import CircuitOracle
        from repro.circuits.lna import TunableLNA
        from repro.circuits.mixer import TunableMixer

        circuit_cls = {"lna": TunableLNA, "mixer": TunableMixer}
        circuit = circuit_cls[args.circuit](
            n_states=args.states, n_variables=None
        )
        metric = args.metric or circuit.metric_names[0]
        oracle = CircuitOracle(circuit, metric)
    else:
        from repro.active import SyntheticOracle

        # A sparse linear ground truth with correlated per-state rows —
        # the regime the streaming posterior is exact for.
        metric = args.metric or "value"
        coef = np.zeros((args.states, args.variables + 1))
        coef[:, 0] = rng.normal(1.0, 0.5)
        active = rng.choice(
            args.variables, size=min(4, args.variables), replace=False
        )
        for j in active:
            coef[:, j + 1] = rng.normal(0.0, 1.0) + rng.normal(
                0.0, 0.1, size=args.states
            )
        oracle = SyntheticOracle(coef, noise_std=0.05, metric=metric)
    basis = LinearBasis(oracle.n_variables)

    print(
        f"seed fit {oracle.name}:{metric} — K={oracle.n_states}, "
        f"{oracle.n_variables} variables, {args.train}/state warm-up"
    )
    inputs = [
        rng.standard_normal((args.train, oracle.n_variables))
        for _ in range(oracle.n_states)
    ]
    targets = [oracle.observe(x, k) for k, x in enumerate(inputs)]
    fitted = CBMF(seed=args.seed).fit(basis.expand_states(inputs), targets)
    online = OnlineCBMF.from_cbmf(fitted, basis=basis, metric=metric)

    if args.drift_shift is not None:
        drift_at = (
            args.drift_at if args.drift_at is not None
            else args.batches // 2
        )
        oracle = ShiftedOracle(
            oracle, shift=args.drift_shift, after_calls=drift_at
        )
        print(
            f"drift injection: +{args.drift_shift} after observe() call "
            f"{drift_at}"
        )

    if args.replay:
        stream = ReplayStream(args.replay)
        print(f"replaying {len(stream)} batches from {args.replay}")
    else:
        stream = OracleStream(
            oracle,
            n_batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed,
        )
        if args.record:
            batches = list(stream)
            record_stream(batches, args.record)
            print(f"recorded {len(batches)} batches -> {args.record}")
            stream = batches

    plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
        print(f"fault injection active: {args.fault_plan!r}")

    config = StreamingConfig(
        name=args.name,
        push_every=args.push_every,
        drift=DriftConfig(threshold=args.drift_threshold),
        fault_plan=plan,
        refit_window=args.refit_window,
    )

    def run(registry):
        serving = ModelService(registry)
        service = StreamingService(
            online, registry, config, serving=serving
        )
        try:
            report = service.run(stream)
        except SimulationError as error:
            print(f"stream aborted: {error}", file=sys.stderr)
            return 1
        summary = report.summary()
        snapshot = service.metrics.snapshot()
        print()
        print(f"batches             {summary['batches']} "
              f"(absorbed {summary['absorbed']}, "
              f"quarantined {summary['quarantined']})")
        print(f"rows absorbed       {snapshot['rows_absorbed']} "
              f"(posterior now {service.online.n_rows} rows)")
        print(f"drift refits        {summary['refits']}")
        drifted = [r.index for r in report.records if r.drifted]
        if drifted:
            print(f"drift flagged at    batches {drifted}")
        print(f"published           {snapshot['pushes']} versions "
              f"(final: {summary['final_key']})")
        print(f"hot swaps           {snapshot['swaps']} ok / "
              f"{snapshot['swap_failures']} failed")
        if snapshot["p50_absorb_ms"] is not None:
            print(f"absorb p50 / p95    "
                  f"{snapshot['p50_absorb_ms']:.3f} / "
                  f"{snapshot['p95_absorb_ms']:.3f} ms")
        served = serving.served_model(args.name)
        probe = rng.standard_normal(oracle.n_variables)
        result = serving.predict(args.name, probe, 0)
        print(f"serving             {args.name}@v{served.version} "
              f"({metric} at a probe point: "
              f"{result.values[metric]:.4f})")
        return 0

    if args.registry:
        return run(ModelRegistry(args.registry))
    with tempfile.TemporaryDirectory() as tmp:
        return run(ModelRegistry(tmp))


def _parse_canary(spec: str):
    """Parse ``name@vA:name@vB:weight`` into ``(stable, canary, weight)``."""
    parts = spec.rsplit(":", 1)
    if len(parts) != 2:
        raise SystemExit(
            f"bad --canary spec {spec!r}; want name@vA:name@vB:weight"
        )
    keys, weight_text = parts[0].split(":"), parts[1]
    if len(keys) != 2:
        raise SystemExit(
            f"bad --canary spec {spec!r}; want name@vA:name@vB:weight"
        )
    try:
        weight = float(weight_text)
    except ValueError:
        raise SystemExit(
            f"bad --canary weight {weight_text!r}; want a float in [0, 1]"
        ) from None
    return keys[0], keys[1], weight


def _fit_demo_fleet(args):
    """Fit the demo LNA model set used by the cluster subcommands."""
    from repro.circuits.lna import TunableLNA
    from repro.modelset import PerformanceModelSet
    from repro.simulate.montecarlo import MonteCarloEngine

    lna = TunableLNA(n_states=args.states, n_variables=None)
    print(
        f"fitting {args.method} model set — LNA, K={args.states} states, "
        f"{lna.n_variables} variables, {args.train}/state training samples"
    )
    data = MonteCarloEngine(lna, seed=args.seed).run(args.train + 4)
    train, _ = data.split(args.train)
    models = PerformanceModelSet.fit_dataset(
        train, method=args.method, seed=args.seed
    )
    return lna, models


def _cluster_config(args):
    from repro.cluster import ClusterConfig
    from repro.serving import BatchConfig, CacheConfig

    return ClusterConfig(
        n_shards=args.shards,
        replication=args.replication,
        max_queue_rows=args.queue_rows,
        default_deadline_s=args.deadline,
        batch=BatchConfig(max_batch_size=args.batch_size),
        cache=CacheConfig(capacity=args.cache_size),
    )


def _cmd_cluster(args) -> int:
    if args.cluster_command == "serve":
        return _cluster_serve(args)
    if args.connect:
        return _cluster_connect_bench(args)
    return _cluster_serve_bench(args)


def _cluster_serve(args) -> int:
    """Fit a demo fleet and serve it over a TCP/Unix listener."""
    import tempfile

    from repro.cluster import ClusterListener, ClusterService
    from repro.serving import ModelRegistry

    _, models = _fit_demo_fleet(args)
    names = [f"lna{i}" for i in range(args.shards)]

    def run(registry):
        for name in names:
            registry.push(name, models)  # v1
            registry.push(name, models)  # v2 (hot-swap/canary target)
        keys = [f"{name}@v1" for name in names]
        service = ClusterService(registry, keys, config=_cluster_config(args))
        with service:
            with ClusterListener(service, args.listen) as listener:
                print(
                    f"cluster listening on {listener.address} — "
                    f"{args.shards} shards, replication "
                    f"{args.replication}, serving {', '.join(names)}",
                    flush=True,
                )
                try:
                    if args.duration > 0:
                        time.sleep(args.duration)
                    else:
                        while True:
                            time.sleep(3600.0)
                except KeyboardInterrupt:
                    print("\nshutting down")
            print(service.report())
        return 0

    if args.registry:
        return run(ModelRegistry(args.registry))
    with tempfile.TemporaryDirectory() as tmp:
        return run(ModelRegistry(tmp))


def _drive_cluster_traffic(names, batches, predict, max_workers):
    """Hammer ``predict(name, x, states)``; return the error tally."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.errors import (
        DeadlineError,
        ServingError,
        ShardCrashError,
        ShedError,
    )

    errors = {"shed": 0, "deadline": 0, "crash": 0, "other": 0}

    def drive(name, chunk):
        for x, states in chunk:
            try:
                predict(name, x, states)
            except ShedError:
                errors["shed"] += 1
            except DeadlineError:
                errors["deadline"] += 1
            except ShardCrashError:
                errors["crash"] += 1
            except ServingError:
                errors["other"] += 1

    def run_chunk(slicer):
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(
                lambda name: drive(name, slicer(batches[name])), names
            ))

    return errors, run_chunk


def _cluster_connect_bench(args) -> int:
    """Client mode: drive an already-listening cluster over the wire."""
    import numpy as np

    from repro.cluster import ClusterClient

    with ClusterClient(args.connect) as probe:
        routes = probe.describe_routes()
        names = sorted(routes)
        if not names:
            print(f"no models served at {args.connect}")
            return 1
        print(
            f"connected to {args.connect}: "
            + ", ".join(
                f"{name}={routes[name]['stable']}" for name in names
            )
        )
        clients = {name: ClusterClient(args.connect) for name in names}
        try:
            batches = {}
            for i, name in enumerate(names):
                n_variables = routes[name].get("n_variables")
                if not n_variables:
                    print(
                        f"{name}: registry manifest records no "
                        "n_variables; cannot size request vectors"
                    )
                    return 1
                rng = np.random.default_rng([args.seed, i])
                batches[name] = [
                    (
                        rng.standard_normal((args.rows, n_variables)),
                        rng.integers(0, args.states, args.rows),
                    )
                    for _ in range(args.requests)
                ]
            errors, run_chunk = _drive_cluster_traffic(
                names,
                batches,
                lambda name, x, states: clients[name].predict_many(
                    name, x, states
                ),
                max_workers=len(names),
            )
            started = time.perf_counter()
            run_chunk(lambda b: b)
            elapsed = time.perf_counter() - started
        finally:
            for client in clients.values():
                client.close()
        total_rows = len(names) * args.requests * args.rows
        print()
        print(f"rows served         {total_rows} in {elapsed:.3f}s "
              f"({total_rows / elapsed:,.0f} rows/s, over TCP)")
        print(f"request failures    shed={errors['shed']} "
              f"deadline={errors['deadline']} "
              f"crash={errors['crash']} other={errors['other']}")
        print()
        print(probe.report())
    return 0


def _cluster_serve_bench(args) -> int:
    """Run the horizontal serving cluster end-to-end and report it."""
    import contextlib
    import tempfile

    import numpy as np

    from repro.cluster import ClusterClient, ClusterListener, ClusterService
    from repro.serving import ModelRegistry

    rng = np.random.default_rng(args.seed)
    lna, models = _fit_demo_fleet(args)

    names = [f"lna{i}" for i in range(args.shards)]
    plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
        print(f"fault injection active: {args.fault_plan!r}")

    def run(registry):
        for name in names:
            registry.push(name, models)  # v1
            registry.push(name, models)  # v2 (canary target)
        keys = [f"{name}@v1" for name in names]
        with ClusterService(
            registry, keys, config=_cluster_config(args)
        ) as cluster:
            if args.canary:
                stable, canary, weight = _parse_canary(args.canary)
                cluster.load(stable)
                cluster.set_canary(
                    stable.split("@", 1)[0], canary, weight
                )
                print(f"canary: {stable} -> {canary} at {weight:.0%}")

            listener = None
            clients = {}
            if args.listen is not None:
                listener = ClusterListener(cluster, args.listen).start()
                print(f"listener: {listener.address} (driving over "
                      "the network)")
                clients = {
                    name: ClusterClient(listener.address)
                    for name in names
                }
                predict = lambda name, x, states: (  # noqa: E731
                    clients[name].predict_many(name, x, states)
                )
            else:
                predict = cluster.predict_many

            batches = {
                name: [
                    (
                        rng.standard_normal((args.rows, lna.n_variables)),
                        rng.integers(0, args.states, args.rows),
                    )
                    for _ in range(args.requests)
                ]
                for name in names
            }
            errors, run_chunk = _drive_cluster_traffic(
                names, batches, predict, max_workers=args.shards
            )
            half = args.requests // 2
            try:
                started = time.perf_counter()
                run_chunk(lambda b: b[:half])
                if plan is not None:
                    applied = cluster.inject_faults(plan)
                    print(f"injected mid-run: {applied}")
                run_chunk(lambda b: b[half:])
                elapsed = time.perf_counter() - started
            finally:
                for client in clients.values():
                    client.close()
                if listener is not None:
                    with contextlib.suppress(Exception):
                        listener.stop()

            total_rows = args.shards * args.requests * args.rows
            print()
            print(f"rows served         {total_rows} in {elapsed:.3f}s "
                  f"({total_rows / elapsed:,.0f} rows/s, "
                  f"{args.shards} shards)")
            print(f"request failures    shed={errors['shed']} "
                  f"deadline={errors['deadline']} "
                  f"crash={errors['crash']} other={errors['other']}")
            print(f"failovers           {cluster.metrics.total_failovers}")
            print()
            print(cluster.report())
        return 0

    if args.registry:
        return run(ModelRegistry(args.registry))
    with tempfile.TemporaryDirectory() as tmp:
        return run(ModelRegistry(tmp))


def _cmd_registry(args) -> int:
    """Registry maintenance: list entries, push artifacts, inspect keys."""
    from pathlib import Path

    from repro.core.frozen import FrozenModel
    from repro.modelset import PerformanceModelSet
    from repro.serving import ModelRegistry, RegistryError

    registry = ModelRegistry(args.root)
    try:
        if args.registry_command == "list":
            entries = registry.list_entries()
            if not entries:
                print(f"(empty registry at {registry.root})")
                return 0
            print(f"{'KEY':<24} {'KIND':<9} {'K':>3} {'M':>5}  "
                  f"{'CREATED':<20} METRICS")
            for entry in entries:
                manifest = entry.manifest
                print(
                    f"{entry.key:<24} {entry.kind:<9} "
                    f"{manifest.get('n_states', '?'):>3} "
                    f"{manifest.get('n_basis', '?'):>5}  "
                    f"{manifest.get('created_at', '?'):<20} "
                    f"{', '.join(entry.metrics)}"
                )
            return 0
        if args.registry_command == "push":
            source = Path(args.path)
            if source.is_dir():
                model = PerformanceModelSet.load_dir(source)
            else:
                model = FrozenModel.load(source)
            entry = registry.push(args.name, model, version=args.set_version)
            print(f"pushed {entry.key} -> {entry.path}")
            return 0
        # get
        entry = registry.entry(args.key)
        registry.load_models(entry.key)  # checksum verification
        print(json.dumps(entry.manifest, indent=2, sort_keys=True))
        if args.dest:
            model = registry.load(entry.key)
            if isinstance(model, FrozenModel):
                dest = Path(args.dest)
                dest.mkdir(parents=True, exist_ok=True)
                model.save(dest / f"{model.metric or 'model'}.npz")
            else:
                model.save_dir(args.dest)
            print(f"exported {entry.key} -> {args.dest}")
        return 0
    except (RegistryError, FileNotFoundError, ValueError) as error:
        raise SystemExit(f"registry error: {error}") from error


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the C-BMF paper's tables and figures.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--scale", default=None, choices=sorted(SCALES),
            help="experiment size (default: REPRO_SCALE env or 'small')",
        )
        p.add_argument("--seed", type=int, default=2016)

    for name, help_text in (
        ("table1", "Table 1: LNA error and cost"),
        ("table2", "Table 2: mixer error and cost"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)

    for name, help_text in (
        ("fig2", "Figure 2(b)-(d): LNA error vs samples"),
        ("fig3", "Figure 3(b)-(d): mixer error vs samples"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument(
            "--metric", default=None,
            help="limit to one metric (default: all panels)",
        )

    p = sub.add_parser("all", help="every table and figure")
    common(p)

    p = sub.add_parser("info", help="version, scales, methods")
    common(p)

    p = sub.add_parser(
        "serve-bench",
        help="fit -> registry push -> serve: micro-batching benchmark",
    )
    p.add_argument("--requests", type=int, default=10_000,
                   help="how many mixed-state requests to serve")
    p.add_argument("--pool", type=int, default=2_000,
                   help="unique sample points (repeats exercise the cache)")
    p.add_argument("--states", type=int, default=4)
    p.add_argument("--train", type=int, default=12,
                   help="training samples per state")
    p.add_argument("--method", default="cbmf",
                   help="estimator to fit (default: cbmf)")
    p.add_argument("--batch-size", type=int, default=64,
                   help="engine max micro-batch size")
    p.add_argument("--cache-size", type=int, default=16_384,
                   help="LRU prediction-cache capacity (0 disables)")
    p.add_argument("--registry", default=None,
                   help="persist the registry here (default: temp dir)")
    p.add_argument("--trials", type=int, default=3,
                   help="timing trials per path (best-of-N)")
    p.add_argument("--seed", type=int, default=2016)

    p = sub.add_parser(
        "sweep-fit",
        help="simulate a frequency sweep, fit on the Kronecker path, "
             "verify the registry round-trip",
    )
    p.add_argument("--points", type=int, default=201,
                   help="sweep points K (default: 201, the VNA classic)")
    p.add_argument("--train", type=int, default=10,
                   help="shared process samples per sweep point")
    p.add_argument("--metric", default=None, choices=("s21_db", "nf_db"),
                   help="fit one metric only (default: both)")
    p.add_argument("--registry", default=None,
                   help="persist the registry here (default: temp dir)")
    p.add_argument("--name", default="lna_sweep",
                   help="registry model name (default: 'lna_sweep')")
    p.add_argument("--seed", type=int, default=2016)

    p = sub.add_parser(
        "yield-report",
        help="per-state yield with correlation-shared shrinkage + CIs",
    )
    p.add_argument("--spec", action="append", default=None,
                   help="pass/fail bound 'metric<=x' or 'metric>=x' "
                        "(repeatable; default: the lna_sweep bounds "
                        + " and ".join(repr(s) for s in
                                       DEFAULT_SWEEP_SPECS) + ")")
    p.add_argument("--points", type=int, default=201,
                   help="sweep points K when fitting (default: 201)")
    p.add_argument("--train", type=int, default=10,
                   help="shared process samples per sweep point")
    p.add_argument("--samples", type=int, default=400,
                   help="Monte-Carlo samples per state (default: 400)")
    p.add_argument("--confidence", type=float, default=0.95,
                   help="confidence level of the per-state intervals")
    p.add_argument("--registry", default=None,
                   help="load the model set from this registry root")
    p.add_argument("--key", default=None,
                   help="registry key to load (skips the sweep fit)")
    p.add_argument("--json", default=None,
                   help="also write the full report to this JSON file")
    p.add_argument("--max-rows", type=int, default=12,
                   help="worst states shown in the table (default: 12)")
    p.add_argument("--seed", type=int, default=2016)

    from repro.bench import add_bench_parser

    add_bench_parser(sub)

    p = sub.add_parser(
        "active-fit",
        help="actively fit a circuit metric (uncertainty-aware sampling)",
    )
    p.add_argument("--circuit", default="lna", choices=("lna", "mixer"))
    p.add_argument("--metric", default=None,
                   help="metric to fit (default: the circuit's first)")
    p.add_argument(
        "--strategy", default="variance",
        choices=("variance", "random", "cost_weighted", "correlation",
                 "yield_variance"),
        help="acquisition strategy (default: variance)",
    )
    p.add_argument("--spec", action="append", default=None,
                   help="yield bound 'metric<=x' / 'metric>=x' for "
                        "--strategy yield_variance (repeatable)")
    p.add_argument("--states", type=int, default=4,
                   help="number of knob states K")
    p.add_argument("--rounds", type=int, default=6,
                   help="maximum fit/acquire rounds")
    p.add_argument("--init", type=int, default=4,
                   help="random warm-up samples per state")
    p.add_argument("--batch", type=int, default=8,
                   help="simulations bought per round (across states)")
    p.add_argument("--candidates", type=int, default=64,
                   help="candidate pool size per state per round")
    p.add_argument("--holdout", type=int, default=25,
                   help="holdout samples per state for stopping/reporting")
    p.add_argument("--budget", type=int, default=None,
                   help="hard cap on total simulations")
    p.add_argument("--explore", type=float, default=0.25,
                   help="random fraction of each batch (variance family)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="oracle retries before a row is quarantined "
                        "(default: 2)")
    p.add_argument("--fault-plan", default=None,
                   help="deterministic fault injection spec, e.g. "
                        "'oracle:raise@1,3' or 'oracle:nan*2' "
                        "(chaos testing; see repro.faults.FaultPlan.parse)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint directory (resumable with --resume)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint instead of starting fresh")
    p.add_argument("--registry", default=None,
                   help="push the converged model to this registry root")
    p.add_argument("--name", default=None,
                   help="registry model name (default: circuit name)")
    p.add_argument("--seed", type=int, default=2016)

    p = sub.add_parser(
        "stream",
        help="online ingest: absorb batches, drift-refit, publish, swap",
    )
    p.add_argument("--circuit", default=None, choices=("lna", "mixer"),
                   help="stream a real circuit oracle (default: synthetic)")
    p.add_argument("--metric", default=None,
                   help="metric to stream (default: circuit's first, or "
                        "'value' for the synthetic oracle)")
    p.add_argument("--states", type=int, default=3,
                   help="number of knob states K")
    p.add_argument("--variables", type=int, default=8,
                   help="sample dimension of the synthetic oracle")
    p.add_argument("--train", type=int, default=20,
                   help="warm-up samples per state for the seed fit")
    p.add_argument("--batches", type=int, default=12,
                   help="stream length in batches")
    p.add_argument("--batch-size", type=int, default=6,
                   help="rows per batch")
    p.add_argument("--push-every", type=int, default=1,
                   help="publish after every Nth absorbed batch")
    p.add_argument("--drift-shift", type=float, default=None,
                   help="inject a step drift of this size mid-stream")
    p.add_argument("--drift-at", type=int, default=None,
                   help="observe() call the drift engages at "
                        "(default: halfway through the stream)")
    p.add_argument("--drift-threshold", type=float, default=3.0,
                   help="smoothed mean-z² refit trigger (default: 3.0)")
    p.add_argument("--refit-window", type=int, default=None,
                   help="refit on the last N absorbed batches only "
                        "(forgetting window; default: keep everything)")
    p.add_argument("--fault-plan", default=None,
                   help="deterministic fault injection, e.g. "
                        "'stream:nan@2' or 'stream:raise@*3' "
                        "(see repro.faults.FaultPlan.parse)")
    p.add_argument("--registry", default=None,
                   help="persist the registry here (default: temp dir)")
    p.add_argument("--record", default=None,
                   help="record the generated stream to this .npz")
    p.add_argument("--replay", default=None,
                   help="replay a recorded stream .npz instead of "
                        "drawing fresh batches")
    p.add_argument("--name", default="stream",
                   help="registry model name (default: 'stream')")
    p.add_argument("--seed", type=int, default=2016)

    p = sub.add_parser(
        "cluster",
        help="horizontal serving cluster: gateway + shard processes",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    p_cbench = cluster_sub.add_parser(
        "serve-bench",
        help="fit -> store export -> multi-shard serving benchmark",
    )
    p_cbench.add_argument("--shards", type=int, default=2,
                          help="shard worker processes (default: 2)")
    p_cbench.add_argument("--requests", type=int, default=40,
                          help="request batches per model name")
    p_cbench.add_argument("--rows", type=int, default=32,
                          help="rows per request batch")
    p_cbench.add_argument("--states", type=int, default=4)
    p_cbench.add_argument("--train", type=int, default=12,
                          help="training samples per state")
    p_cbench.add_argument("--method", default="somp",
                          help="estimator to fit (default: somp)")
    p_cbench.add_argument("--batch-size", type=int, default=64,
                          help="shard engine max micro-batch size")
    p_cbench.add_argument("--cache-size", type=int, default=16_384,
                          help="per-shard LRU capacity (0 disables)")
    p_cbench.add_argument("--queue-rows", type=int, default=4096,
                          help="admission bound: rows in flight per shard")
    p_cbench.add_argument("--deadline", type=float, default=30.0,
                          help="default per-request deadline in seconds")
    p_cbench.add_argument("--canary", default=None,
                          help="weighted version split, e.g. "
                               "'lna0@v1:lna0@v2:0.3'")
    p_cbench.add_argument("--fault-plan", default=None,
                          help="chaos spec applied mid-run, e.g. "
                               "'shard:kill@0' or 'shard:hang@1'")
    p_cbench.add_argument("--replication", type=int, default=1,
                          help="replicas per model key (default: 1; "
                               "2+ enables failover)")
    p_cbench.add_argument("--listen", default=None,
                          help="serve through a real listener at this "
                               "address (host:port or unix:/path) and "
                               "drive the traffic over it")
    p_cbench.add_argument("--connect", default=None,
                          help="client mode: skip fitting, drive an "
                               "already-listening cluster at this "
                               "address")
    p_cbench.add_argument("--registry", default=None,
                          help="persist the registry here "
                               "(default: temp dir)")
    p_cbench.add_argument("--seed", type=int, default=2016)

    p_cserve = cluster_sub.add_parser(
        "serve",
        help="fit a demo fleet and serve it over TCP/Unix sockets",
    )
    p_cserve.add_argument("--listen", default="127.0.0.1:0",
                          help="bind address: host:port or unix:/path "
                               "(default: 127.0.0.1 on an OS port)")
    p_cserve.add_argument("--duration", type=float, default=0.0,
                          help="serve for this many seconds then exit "
                               "(default: 0 = until interrupted)")
    p_cserve.add_argument("--shards", type=int, default=2,
                          help="shard worker processes (default: 2)")
    p_cserve.add_argument("--replication", type=int, default=1,
                          help="replicas per model key (default: 1)")
    p_cserve.add_argument("--states", type=int, default=4)
    p_cserve.add_argument("--train", type=int, default=12,
                          help="training samples per state")
    p_cserve.add_argument("--method", default="somp",
                          help="estimator to fit (default: somp)")
    p_cserve.add_argument("--batch-size", type=int, default=64,
                          help="shard engine max micro-batch size")
    p_cserve.add_argument("--cache-size", type=int, default=16_384,
                          help="per-shard LRU capacity (0 disables)")
    p_cserve.add_argument("--queue-rows", type=int, default=4096,
                          help="admission bound: rows in flight per shard")
    p_cserve.add_argument("--deadline", type=float, default=30.0,
                          help="default per-request deadline in seconds")
    p_cserve.add_argument("--registry", default=None,
                          help="persist the registry here "
                               "(default: temp dir)")
    p_cserve.add_argument("--seed", type=int, default=2016)

    p = sub.add_parser("registry", help="manage a model registry directory")
    reg_sub = p.add_subparsers(dest="registry_command", required=True)
    p_list = reg_sub.add_parser("list", help="list every name@version")
    p_push = reg_sub.add_parser(
        "push", help="push a model dir (save_dir) or frozen .npz"
    )
    p_push.add_argument("name", help="model name to push under")
    p_push.add_argument("path", help="model directory or .npz file")
    p_push.add_argument("--set-version", type=int, default=None,
                        help="explicit version (default: auto-increment)")
    p_get = reg_sub.add_parser(
        "get", help="verify + print a key's manifest, optionally export"
    )
    p_get.add_argument("key", help="name, name@latest or name@vN")
    p_get.add_argument("--dest", default=None,
                       help="export the artifact to this directory")
    for reg_parser in (p_list, p_push, p_get):
        reg_parser.add_argument(
            "--root", required=True, help="registry root directory"
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        _cmd_info(args)
        return 0
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "sweep-fit":
        return _cmd_sweep_fit(args)
    if args.command == "yield-report":
        return _cmd_yield_report(args)
    if args.command == "bench":
        from repro.bench import main_bench

        return main_bench(args)
    if args.command == "active-fit":
        return _cmd_active_fit(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "registry":
        return _cmd_registry(args)

    scale = resolve_scale(args.scale)
    started = time.perf_counter()
    if args.command == "table1":
        _print_table("lna", "Table 1", scale, args.seed)
    elif args.command == "table2":
        _print_table("mixer", "Table 2", scale, args.seed)
    elif args.command == "fig2":
        _print_figure(
            "lna", "Figure 2 — tunable LNA", scale, args.seed, args.metric
        )
    elif args.command == "fig3":
        _print_figure(
            "mixer", "Figure 3 — tunable mixer", scale, args.seed,
            args.metric,
        )
    elif args.command == "all":
        _print_figure(
            "lna", "Figure 2 — tunable LNA", scale, args.seed, None
        )
        _print_table("lna", "Table 1", scale, args.seed)
        print()
        _print_figure(
            "mixer", "Figure 3 — tunable mixer", scale, args.seed, None
        )
        _print_table("mixer", "Table 2", scale, args.seed)
    print(f"\n[{time.perf_counter() - started:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
